"""On-disk, content-keyed result cache for experiment runs.

Every simulation in this library is a pure function of its
:class:`~repro.core.ExperimentConfig` (runs are deterministic per
seed), so a run result can be cached forever under a stable hash of
the config.  The big win is quiet baselines: a scaling sweep
recomputes one quiet run per machine size, and those sizes repeat
across sweeps, CLI invocations, and the E1–E14 harness — with a cache
they are simulated once ever per library version.

Key scheme
----------
:func:`config_key` canonicalises the config into a nested structure of
primitives (dataclasses become ``(qualified name, sorted fields)``,
dicts are sorted by key, sets are sorted, floats go through ``repr``
so the key survives JSON round-trips) and hashes the JSON encoding
with SHA-256.  The current :data:`repro.__version__` is mixed into
every key and also names the cache subdirectory, so bumping the
library version invalidates the whole cache without deleting anything.

Storage is one pickle file per result under
``<root>/v<version>/<key>.pkl``.  Writes go through a temp file +
``os.replace`` so concurrent workers never observe a torn entry;
unreadable entries count as misses and are removed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import typing as _t
from pathlib import Path

from .. import __version__

__all__ = ["MISS", "CacheStats", "ResultCache", "config_key", "config_token"]


class _Miss:
    """Sentinel type for a cache miss (distinct from any cached value,
    including a legitimately cached ``None``)."""

    _instance: "_Miss | None" = None

    def __new__(cls) -> "_Miss":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<cache MISS>"


#: The miss sentinel: ``cache.get(cfg, MISS) is MISS`` is the reliable
#: miss test (``None`` is a perfectly cacheable value).
MISS = _Miss()


def config_token(obj: _t.Any) -> _t.Any:
    """Canonicalise ``obj`` into a JSON-encodable, order-stable token."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() is the shortest round-trippable form — stable across
        # processes and unaffected by JSON float formatting.
        return ("float", repr(obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: config_token(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return (type(obj).__qualname__, sorted(fields.items()))
    if isinstance(obj, dict):
        return ("dict", sorted((str(k), config_token(v))
                               for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return ("seq", [config_token(v) for v in obj])
    if isinstance(obj, (set, frozenset)):
        # Sort by the JSON encoding (type-aware: 1 -> "1", "1" -> '"1"')
        # and keep the tokens themselves — sorting/keying by str() would
        # collapse {1} and {"1"} onto one cache key.
        members = [config_token(v) for v in obj]
        members.sort(key=lambda t: json.dumps(t, separators=(",", ":"),
                                              sort_keys=True))
        return ("set", members)
    text = repr(obj)
    if " at 0x" in text:  # default object repr leaks the address
        state = getattr(obj, "__dict__", None)
        if state is not None:
            return (type(obj).__qualname__, config_token(state))
        raise TypeError(
            f"cannot build a stable cache key for {type(obj).__qualname__}: "
            "repr() is address-based and the object has no __dict__")
    return (type(obj).__qualname__, text)


def config_key(config: _t.Any, *, salt: str = "") -> str:
    """Stable SHA-256 hex key for an experiment config."""
    payload = json.dumps([salt, config_token(config)],
                         separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}


class ResultCache:
    """Pickle-per-entry result cache rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Entries live in a
        per-version subdirectory.
    version:
        Version salt; defaults to :data:`repro.__version__`.  Bumping
        it orphans (but does not delete) all prior entries.
    """

    def __init__(self, root: str | os.PathLike[str],
                 *, version: str = __version__) -> None:
        self.root = Path(root)
        self.version = version
        self.stats = CacheStats()

    @property
    def _dir(self) -> Path:
        return self.root / f"v{self.version}"

    def key(self, config: _t.Any) -> str:
        return config_key(config, salt=self.version)

    def _path(self, config: _t.Any) -> Path:
        return self._dir / f"{self.key(config)}.pkl"

    def get(self, config: _t.Any, default: _t.Any = None) -> _t.Any:
        """The cached result for ``config``, or ``default`` on a miss.

        Pass :data:`MISS` as the default to distinguish a miss from a
        cached ``None``/falsy value (the pattern :meth:`get_or_run`
        uses internally).
        """
        path = self._path(config)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            # Torn/corrupt/stale entry: treat as a miss and drop it.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def put(self, config: _t.Any, value: _t.Any) -> None:
        """Store ``value`` under ``config``'s key (atomic replace)."""
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._path(config)
        fd, tmp = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def get_or_run(self, config: _t.Any,
                   fn: _t.Callable[[], _t.Any]) -> _t.Any:
        """Cached value for ``config``, computing and storing on miss.

        A cached ``None`` (or any falsy value) is served, not
        recomputed — only a genuine miss runs ``fn``.
        """
        value = self.get(config, MISS)
        if value is MISS:
            value = fn()
            self.put(config, value)
        return value

    def __len__(self) -> int:
        if not self._dir.is_dir():
            return 0
        return sum(1 for p in self._dir.iterdir() if p.suffix == ".pkl")

    def clear(self) -> int:
        """Delete every entry for this version; returns the count."""
        removed = 0
        if self._dir.is_dir():
            for p in self._dir.iterdir():
                if p.suffix == ".pkl":
                    p.unlink(missing_ok=True)
                    removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResultCache {self._dir} entries={len(self)} "
                f"hits={self.stats.hits} misses={self.stats.misses}>")
