"""On-disk, content-keyed result cache for experiment runs.

Every simulation in this library is a pure function of its
:class:`~repro.core.ExperimentConfig` (runs are deterministic per
seed), so a run result can be cached forever under a stable hash of
the config.  The big win is quiet baselines: a scaling sweep
recomputes one quiet run per machine size, and those sizes repeat
across sweeps, CLI invocations, and the E1–E14 harness — with a cache
they are simulated once ever per library version.

Key scheme
----------
:func:`config_key` canonicalises the config into a nested structure of
primitives (dataclasses become ``(qualified name, sorted fields)``,
dicts are sorted by key, sets are sorted, floats go through ``repr``
so the key survives JSON round-trips) and hashes the JSON encoding
with SHA-256.  The current :data:`repro.__version__` is mixed into
every key and also names the cache subdirectory, so bumping the
library version invalidates the whole cache without deleting anything.

Storage is one pickle file per result under
``<root>/v<version>/<key>.pkl``.  Writes go through a temp file +
``os.replace`` so concurrent workers never observe a torn entry;
unreadable entries count as misses and are removed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
import typing as _t
from pathlib import Path

from .. import __version__

__all__ = ["MISS", "CacheStats", "ResultCache", "ShardedResultCache",
           "config_key", "config_token"]

#: Orphaned ``*.tmp`` files older than this are swept opportunistically
#: (a worker killed between ``mkstemp`` and ``os.replace`` leaves them
#: behind; anything this stale can never be replaced into place).
TMP_MAX_AGE_S = 3600.0


class _Miss:
    """Sentinel type for a cache miss (distinct from any cached value,
    including a legitimately cached ``None``)."""

    _instance: "_Miss | None" = None

    def __new__(cls) -> "_Miss":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<cache MISS>"


#: The miss sentinel: ``cache.get(cfg, MISS) is MISS`` is the reliable
#: miss test (``None`` is a perfectly cacheable value).
MISS = _Miss()


def config_token(obj: _t.Any) -> _t.Any:
    """Canonicalise ``obj`` into a JSON-encodable, order-stable token."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() is the shortest round-trippable form — stable across
        # processes and unaffected by JSON float formatting.
        return ("float", repr(obj))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: config_token(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return (type(obj).__qualname__, sorted(fields.items()))
    if isinstance(obj, dict):
        # Sort by the JSON encoding of the *typed* key token and keep
        # the token in the payload — keying by str(k) would collapse
        # {1: x} and {"1": x} onto one cache key (the set-token
        # collision PR 2 fixed, in dict form).
        items = [(config_token(k), config_token(v))
                 for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], separators=(",", ":"),
                                             sort_keys=True))
        return ("dict", items)
    if isinstance(obj, (list, tuple)):
        return ("seq", [config_token(v) for v in obj])
    if isinstance(obj, (set, frozenset)):
        # Sort by the JSON encoding (type-aware: 1 -> "1", "1" -> '"1"')
        # and keep the tokens themselves — sorting/keying by str() would
        # collapse {1} and {"1"} onto one cache key.
        members = [config_token(v) for v in obj]
        members.sort(key=lambda t: json.dumps(t, separators=(",", ":"),
                                              sort_keys=True))
        return ("set", members)
    text = repr(obj)
    if " at 0x" in text:  # default object repr leaks the address
        state = getattr(obj, "__dict__", None)
        if state is not None:
            return (type(obj).__qualname__, config_token(state))
        raise TypeError(
            f"cannot build a stable cache key for {type(obj).__qualname__}: "
            "repr() is address-based and the object has no __dict__")
    return (type(obj).__qualname__, text)


def config_key(config: _t.Any, *, salt: str = "") -> str:
    """Stable SHA-256 hex key for an experiment config."""
    payload = json.dumps([salt, config_token(config)],
                         separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}


class ResultCache:
    """Pickle-per-entry result cache rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Entries live in a
        per-version subdirectory.
    version:
        Version salt; defaults to :data:`repro.__version__`.  Bumping
        it orphans (but does not delete) all prior entries.
    """

    def __init__(self, root: str | os.PathLike[str],
                 *, version: str = __version__,
                 tmp_max_age_s: float = TMP_MAX_AGE_S) -> None:
        self.root = Path(root)
        self.version = version
        self.stats = CacheStats()
        self.tmp_max_age_s = tmp_max_age_s
        if self._dir.is_dir():
            self.sweep_stale_tmp()

    @property
    def _dir(self) -> Path:
        return self.root / f"v{self.version}"

    def sweep_stale_tmp(self, max_age_s: float | None = None) -> int:
        """Remove orphaned ``*.tmp`` litter older than ``max_age_s``.

        A worker killed between ``mkstemp`` and ``os.replace`` leaves a
        temp file that no code path ever revisits; long-lived shared
        caches would otherwise grow them without bound.  The sweep is
        age-gated so in-flight writes by concurrent processes are never
        touched.  Returns the number of files removed.
        """
        if max_age_s is None:
            max_age_s = self.tmp_max_age_s
        removed = 0
        if not self._dir.is_dir():
            return removed
        cutoff = time.time() - max_age_s
        for p in self._dir.rglob("*.tmp"):
            try:
                if p.stat().st_mtime < cutoff:
                    p.unlink()
                    removed += 1
            except OSError:
                continue  # raced with a concurrent writer/sweeper
        return removed

    def key(self, config: _t.Any) -> str:
        return config_key(config, salt=self.version)

    def _path(self, config: _t.Any) -> Path:
        return self._dir / f"{self.key(config)}.pkl"

    def get(self, config: _t.Any, default: _t.Any = None) -> _t.Any:
        """The cached result for ``config``, or ``default`` on a miss.

        Pass :data:`MISS` as the default to distinguish a miss from a
        cached ``None``/falsy value (the pattern :meth:`get_or_run`
        uses internally).
        """
        path = self._path(config)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            # Torn/corrupt/stale entry: treat as a miss and drop it.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def put(self, config: _t.Any, value: _t.Any) -> None:
        """Store ``value`` under ``config``'s key (atomic replace)."""
        path = self._path(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def get_or_run(self, config: _t.Any,
                   fn: _t.Callable[[], _t.Any]) -> _t.Any:
        """Cached value for ``config``, computing and storing on miss.

        A cached ``None`` (or any falsy value) is served, not
        recomputed — only a genuine miss runs ``fn``.
        """
        value = self.get(config, MISS)
        if value is MISS:
            value = fn()
            self.put(config, value)
        return value

    def __len__(self) -> int:
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.rglob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry for this version; returns the count.

        Also sweeps orphaned stale ``*.tmp`` files (age-gated) so a
        cleared cache directory really is empty of litter.
        """
        removed = 0
        if self._dir.is_dir():
            for p in list(self._dir.rglob("*.pkl")):
                p.unlink(missing_ok=True)
                removed += 1
            self.sweep_stale_tmp()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self._dir} entries={len(self)} "
                f"hits={self.stats.hits} misses={self.stats.misses}>")


class ShardedResultCache(ResultCache):
    """A :class:`ResultCache` with prefix-sharded entry directories.

    Entries live under ``<root>/v<version>/<key[:width]>/<key>.pkl``
    instead of one flat directory, so hot shared caches (the experiment
    server's above all) never scan or ``readdir`` a single directory
    with hundreds of thousands of files.  The write protocol is the
    same temp-file + ``os.replace`` dance, temp files are created
    inside the target shard, and keys are identical to the flat
    layout — a sharded and a flat cache rooted at the same directory
    serve the same entries, which makes the layouts safe to migrate
    between and the cache safe to share between server and CLI.

    Any flat-layout entries found at init are migrated into their
    shards with atomic renames (concurrent readers see either the old
    or the new path, both of which this class consults).
    """

    def __init__(self, root: str | os.PathLike[str],
                 *, version: str = __version__,
                 shard_width: int = 2,
                 tmp_max_age_s: float = TMP_MAX_AGE_S) -> None:
        if not 1 <= shard_width <= 8:
            from ..errors import ConfigError

            raise ConfigError(
                f"shard_width must be in 1..8, got {shard_width}")
        self.shard_width = shard_width
        super().__init__(root, version=version, tmp_max_age_s=tmp_max_age_s)
        if self._dir.is_dir():
            self.migrate_flat()

    def _path(self, config: _t.Any) -> Path:
        key = self.key(config)
        return self._dir / key[:self.shard_width] / f"{key}.pkl"

    def get(self, config: _t.Any, default: _t.Any = None) -> _t.Any:
        value = super().get(config, MISS)
        if value is not MISS:
            return value
        # Fall back to a not-yet-migrated flat entry (e.g. written by
        # an older CLI sharing this directory); promote it on sight.
        key = self.key(config)
        flat = self._dir / f"{key}.pkl"
        if flat.is_file():
            try:
                with open(flat, "rb") as f:
                    value = pickle.load(f)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                flat.unlink(missing_ok=True)
                return default
            self.stats.misses -= 1  # super().get counted a miss
            self.stats.hits += 1
            self._promote(flat)
            return value
        return default

    def _promote(self, flat: Path) -> None:
        """Move one flat-layout entry into its shard (atomic rename)."""
        shard = self._dir / flat.name[:self.shard_width]
        shard.mkdir(exist_ok=True)
        try:
            os.replace(flat, shard / flat.name)
        except OSError:
            pass  # raced with a concurrent migrator; entry still served

    def migrate_flat(self) -> int:
        """Shard every flat-layout ``*.pkl`` entry; returns the count.

        Renames are atomic and idempotent, so concurrent migrators (a
        server and a CLI starting together) are safe: each entry ends
        up in its shard exactly once.
        """
        migrated = 0
        for p in self._dir.iterdir():
            if p.is_file() and p.suffix == ".pkl":
                self._promote(p)
                migrated += 1
        return migrated
