"""Parallel sweep execution and on-disk result caching.

The engine behind fast reproduction runs: every figure in E1–E14 is a
sweep over independent, deterministic ``(nodes, pattern)`` simulation
points, so they shard cleanly across processes and cache cleanly on
disk.

* :class:`SweepExecutor` — fans sweep points over a process pool
  (``workers=`` knob, serial fallback at ``workers=1``), collects
  deterministically by point key, and reports per-point timings plus
  simulated-vs-cached counts via :class:`SweepStats`.
* :class:`ResultCache` — content-keyed pickle cache (stable SHA-256 of
  the config, salted with :data:`repro.__version__`) so quiet
  baselines are computed once ever and shared across sweeps, CLI
  invocations, and the experiment harness.

Quick taste::

    from repro.core import ExperimentConfig
    from repro.parallel import SweepExecutor

    ex = SweepExecutor(workers=4, cache="~/.cache/repro-ghost")
    results = ex.run_sweep(ExperimentConfig(app="pop", seed=1),
                           nodes=[16, 64], patterns=["2.5pct@10Hz"])
    print(ex.last_stats.as_dict())

or simply ``repro.core.sweep(..., workers=4, cache=...)``.
"""

from .cache import (
    CacheStats,
    ResultCache,
    ShardedResultCache,
    config_key,
    config_token,
)
from .executor import (
    PointTiming,
    SweepExecutor,
    SweepStats,
    normalized_quiet_twin,
)

__all__ = [
    "SweepExecutor", "SweepStats", "PointTiming", "normalized_quiet_twin",
    "ResultCache", "ShardedResultCache", "CacheStats",
    "config_key", "config_token",
]
