"""Process-parallel execution of experiment sweeps.

Sweep points are embarrassingly parallel: each ``(nodes, pattern)``
point is one deterministic simulation, fully described by a frozen
:class:`~repro.core.ExperimentConfig` (pickles cleanly) and producing
a frozen :class:`~repro.core.RunResult` (ditto).  The
:class:`SweepExecutor` fans the points of a sweep out over a
:class:`concurrent.futures.ProcessPoolExecutor`, collects results
keyed by point — never by completion order — and reassembles exactly
the mapping the serial runner produces, so parallel and serial sweeps
are bit-identical for a fixed seed.

With ``workers=1`` no pool is created at all (graceful serial
fallback); an optional :class:`~repro.parallel.ResultCache` serves
previously-simulated points — quiet baselines above all — from disk.
Per-point wall-clock timings and simulated-vs-cached counts land in
:attr:`SweepExecutor.last_stats`.
"""

from __future__ import annotations

import os
import time
import typing as _t
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from ..core.experiment import ExperimentConfig, run_experiment
from ..core.results import ComparisonResult, RunResult
from ..errors import ConfigError
from .cache import ResultCache

__all__ = ["PointTiming", "SweepStats", "SweepExecutor",
           "normalized_quiet_twin"]

#: Pattern spellings that mean "no injected noise".
_QUIET_ALIASES = ("quiet", "none", "off")

#: Internal point keys: ("quiet", nodes) or ("noisy", nodes, pattern).
_PointKey = tuple


def _is_quiet(pattern: str) -> bool:
    return pattern.strip().lower() in _QUIET_ALIASES


def _run_point(config: ExperimentConfig) -> tuple[RunResult, float]:
    """Worker entry point: one simulation, with its wall-clock cost.

    Top-level so it pickles into pool workers.
    """
    t0 = time.perf_counter()
    result = _t.cast(RunResult, run_experiment(config))
    return result, time.perf_counter() - t0


def normalized_quiet_twin(config: ExperimentConfig) -> ExperimentConfig:
    """``config``'s quiet twin with noise-only axes canonicalised.

    Alignment only parameterises the injected noise, so quiet twins
    that differ in nothing else are the same physical run; normalising
    lets them share one simulation and one cache entry.
    """
    return replace(config, noise_pattern="quiet", alignment="random")


@dataclass(frozen=True)
class PointTiming:
    """Wall-clock record for one executed (or cache-served) point."""

    label: str
    elapsed_s: float
    cached: bool


@dataclass
class SweepStats:
    """What one :meth:`SweepExecutor.run_sweep` call actually did."""

    workers: int
    wall_s: float = 0.0
    timings: list[PointTiming] = field(default_factory=list)
    quiet_simulated: int = 0
    quiet_cached: int = 0
    noisy_simulated: int = 0
    noisy_cached: int = 0

    @property
    def points(self) -> int:
        return len(self.timings)

    def tally(self, key_kind: str, timing: "PointTiming") -> None:
        """Record one point under the quiet/noisy x cached/simulated grid."""
        self.timings.append(timing)
        if timing.cached:
            if key_kind == "quiet":
                self.quiet_cached += 1
            else:
                self.noisy_cached += 1
        elif key_kind == "quiet":
            self.quiet_simulated += 1
        else:
            self.noisy_simulated += 1

    @property
    def simulated_s(self) -> float:
        """Summed per-point simulation time (serial-equivalent cost)."""
        return sum(t.elapsed_s for t in self.timings)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time."""
        return self.simulated_s / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict[str, _t.Any]:
        return {"workers": self.workers, "points": self.points,
                "wall_s": self.wall_s, "simulated_s": self.simulated_s,
                "quiet_simulated": self.quiet_simulated,
                "quiet_cached": self.quiet_cached,
                "noisy_simulated": self.noisy_simulated,
                "noisy_cached": self.noisy_cached}


class SweepExecutor:
    """Runs the independent points of a sweep, serially or in parallel.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) runs in-process with no
        pool; ``None`` or ``0`` means ``os.cpu_count()``.
    cache:
        ``None`` (no caching), a :class:`ResultCache`, or a directory
        path to root one at.
    """

    def __init__(self, workers: int | None = 1,
                 cache: ResultCache | str | os.PathLike[str] | None = None
                 ) -> None:
        if workers is None or workers == 0:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache: ResultCache | None
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        elif not os.fspath(cache):
            # An empty path would silently cache into ./v<version>/.
            self.cache = None
        else:
            self.cache = ResultCache(cache)
        #: Stats of the most recent :meth:`run_sweep` call.
        self.last_stats: SweepStats | None = None

    # -- generic fan-out ---------------------------------------------------
    def run_configs(self, configs: _t.Mapping[_t.Any, ExperimentConfig],
                    *, labels: _t.Mapping[_t.Any, str] | None = None,
                    progress: _t.Callable[[str], None] | None = None
                    ) -> tuple[dict[_t.Any, RunResult],
                               dict[_t.Any, PointTiming]]:
        """Execute independent configs; results keyed like ``configs``.

        Cache hits never reach the pool.  The returned dicts iterate in
        ``configs`` order regardless of completion order.
        """
        labels = labels or {}
        served: dict[_t.Any, RunResult] = {}
        timings: dict[_t.Any, PointTiming] = {}
        pending: dict[_t.Any, ExperimentConfig] = {}
        for key, cfg in configs.items():
            cached = self.cache.get(cfg) if self.cache is not None else None
            if cached is not None:
                served[key] = cached
                timings[key] = PointTiming(labels.get(key, str(key)), 0.0,
                                           cached=True)
                if progress:
                    progress(f"{labels.get(key, key)} (cached)")
            else:
                pending[key] = cfg

        if pending and self.workers == 1:
            for key, cfg in pending.items():
                result, elapsed = _run_point(cfg)
                served[key] = result
                timings[key] = PointTiming(labels.get(key, str(key)),
                                           elapsed, cached=False)
                if progress:
                    progress(f"{labels.get(key, key)} "
                             f"({elapsed:.2f}s)")
        elif pending:
            n_workers = min(self.workers, len(pending))
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {key: pool.submit(_run_point, cfg)
                           for key, cfg in pending.items()}
                for key, fut in futures.items():
                    result, elapsed = fut.result()
                    served[key] = result
                    timings[key] = PointTiming(labels.get(key, str(key)),
                                               elapsed, cached=False)
                    if progress:
                        progress(f"{labels.get(key, key)} "
                                 f"({elapsed:.2f}s)")

        if self.cache is not None:
            for key, cfg in pending.items():
                self.cache.put(cfg, served[key])

        ordered = {key: served[key] for key in configs}
        return ordered, {key: timings[key] for key in configs}

    # -- comparison fan-out ------------------------------------------------
    def run_comparisons(self, configs: _t.Mapping[_t.Any, ExperimentConfig],
                        *, progress: _t.Callable[[str], None] | None = None
                        ) -> dict[_t.Any, ComparisonResult]:
        """Run noisy configs against their quiet twins, all in one pool.

        The parallel, baseline-deduplicating form of calling
        :func:`repro.core.run_with_baseline` per config: physically
        identical quiet twins (see :func:`normalized_quiet_twin`) are
        simulated once and shared by every comparison that needs them.
        """
        from .cache import config_key

        t0 = time.perf_counter()
        plan: dict[_PointKey, ExperimentConfig] = {}
        labels: dict[_PointKey, str] = {}
        twin_of: dict[_t.Any, _PointKey] = {}
        for key, cfg in configs.items():
            if _is_quiet(cfg.noise_pattern):
                raise ConfigError(
                    f"run_comparisons needs noisy configurations; "
                    f"{key!r} is {cfg.noise_pattern!r}")
            twin = normalized_quiet_twin(cfg)
            twin_key = ("quiet", config_key(twin))
            if twin_key not in plan:
                plan[twin_key] = twin
                labels[twin_key] = f"quiet baseline P={twin.nodes}"
            twin_of[key] = twin_key
        for key, cfg in configs.items():
            plan[("noisy", key)] = cfg
            labels[("noisy", key)] = (f"P={cfg.nodes} "
                                      f"pattern={cfg.noise_pattern}")

        points, timings = self.run_configs(plan, labels=labels,
                                           progress=progress)

        stats = SweepStats(workers=self.workers)
        for pkey, timing in timings.items():
            stats.tally(pkey[0], timing)
        stats.wall_s = time.perf_counter() - t0
        self.last_stats = stats

        return {key: ComparisonResult(quiet=points[twin_of[key]],
                                      noisy=points[("noisy", key)])
                for key in configs}

    # -- sweep orchestration -----------------------------------------------
    def run_sweep(self, base: ExperimentConfig, *,
                  nodes: _t.Sequence[int], patterns: _t.Sequence[str],
                  progress: _t.Callable[[str], None] | None = None
                  ) -> dict[tuple[int, str], ComparisonResult | RunResult]:
        """Cross ``nodes`` x ``patterns`` with shared quiet baselines.

        Same contract as :func:`repro.core.sweep`: the returned mapping
        is keyed and ordered ``(n_nodes, pattern)`` nodes-major, quiet
        points are bare :class:`RunResult` objects, and every
        :class:`ComparisonResult` at a given machine size shares the
        *same* quiet baseline object.
        """
        if not nodes or not patterns:
            raise ConfigError("sweep needs at least one node count and pattern")

        t0 = time.perf_counter()
        configs: dict[_PointKey, ExperimentConfig] = {}
        labels: dict[_PointKey, str] = {}
        for p in nodes:
            configs[("quiet", p)] = normalized_quiet_twin(
                replace(base, nodes=p))
            labels[("quiet", p)] = f"quiet baseline P={p}"
        for p in nodes:
            for pattern in patterns:
                if _is_quiet(pattern):
                    continue
                key = ("noisy", p, pattern)
                configs[key] = replace(base, nodes=p, noise_pattern=pattern)
                labels[key] = f"P={p} pattern={pattern}"

        points, timings = self.run_configs(configs, labels=labels,
                                           progress=progress)

        stats = SweepStats(workers=self.workers)
        for key, timing in timings.items():
            stats.tally(key[0], timing)

        results: dict[tuple[int, str], ComparisonResult | RunResult] = {}
        for p in nodes:
            quiet = points[("quiet", p)]
            for pattern in patterns:
                if _is_quiet(pattern):
                    results[(p, pattern)] = quiet
                else:
                    results[(p, pattern)] = ComparisonResult(
                        quiet=quiet, noisy=points[("noisy", p, pattern)])

        stats.wall_s = time.perf_counter() - t0
        self.last_stats = stats
        return results
