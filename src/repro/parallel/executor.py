"""Process-parallel execution of experiment sweeps.

Sweep points are embarrassingly parallel: each ``(nodes, pattern)``
point is one deterministic simulation, fully described by a frozen
:class:`~repro.core.ExperimentConfig` (pickles cleanly) and producing
a frozen :class:`~repro.core.RunResult` (ditto).  The
:class:`SweepExecutor` fans the points of a sweep out over a
:class:`concurrent.futures.ProcessPoolExecutor`, collects results
keyed by point — never by completion order — and reassembles exactly
the mapping the serial runner produces, so parallel and serial sweeps
are bit-identical for a fixed seed.

With ``workers=1`` no pool is created at all (graceful serial
fallback); an optional :class:`~repro.parallel.ResultCache` serves
previously-simulated points — quiet baselines above all — from disk.
Per-point wall-clock timings and simulated-vs-cached counts land in
:attr:`SweepExecutor.last_stats`.
"""

from __future__ import annotations

import os
import time
import typing as _t
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from ..core.experiment import ExperimentConfig, run_experiment
from ..core.results import ComparisonResult, RunResult
from ..errors import ConfigError
from ..obs import oplog as _oplog
from ..obs import runtime as _obs
from ..obs.trace import SpanTracer
from .cache import MISS, ResultCache

__all__ = ["PointError", "PointTiming", "SweepStats", "SweepExecutor",
           "normalized_quiet_twin"]

#: Pattern spellings that mean "no injected noise".
_QUIET_ALIASES = ("quiet", "none", "off")

#: Internal point keys: ("quiet", nodes) or ("noisy", nodes, pattern).
_PointKey = tuple


def _is_quiet(pattern: str) -> bool:
    return pattern.strip().lower() in _QUIET_ALIASES


#: Categories captured for a traced point (sim-time only — the
#: per-event ``sim`` firehose and host spans stay out) and the per-point
#: ring cap.  Small enough that a traced request stays cheap; the
#: request stitcher surfaces ``dropped`` if a simulation outgrows it.
POINT_TRACE_CATEGORIES = ("net", "net.flow", "mpi", "faults")
POINT_TRACE_CAP = 50_000


def _run_point(config: ExperimentConfig, det_check: bool = False,
               trace: bool = False) -> tuple[RunResult, float, float]:
    """Worker entry point: one simulation, with true start/end stamps.

    Top-level so it pickles into pool workers.  ``det_check`` forwards
    the parent's ``obs.configure(det_check=True)`` switch explicitly:
    per-process obs state is inherited under fork but not spawn, and
    the serial/workers checksum comparison needs both paths to agree.

    ``trace`` captures this one simulation's sim-time spans with a
    point-scoped tracer (process-wide telemetry is restored on exit,
    so pooled workers carry no state between points) and ships them
    back as ``result.meta["trace"]`` stored tuples plus
    ``meta["worker_pid"]``; the server stitches them into the
    per-request Perfetto document and strips both keys before caching.

    Returns ``(result, start, end)`` where the timestamps are absolute
    ``time.perf_counter()`` readings.  ``perf_counter`` is
    CLOCK_MONOTONIC-backed and machine-wide on the platforms we run
    on, so worker-side stamps are directly comparable with the
    parent's and sweep trace spans show *true* worker occupancy —
    deriving a start as "collection time minus elapsed" misplaces
    spans of pooled futures that finished long before they were
    collected in plan order.
    """
    if det_check and not _obs.det_check_enabled():
        _obs.configure(det_check=True)
    t0 = time.perf_counter()
    if trace:
        point_tracer = SpanTracer(POINT_TRACE_CATEGORIES,
                                  cap=POINT_TRACE_CAP)
        with _obs.scoped_tracer(point_tracer):
            result = _t.cast(RunResult, run_experiment(config))
        result.meta["trace"] = point_tracer.raw_events()
        result.meta["trace_dropped"] = point_tracer.dropped
        result.meta["worker_pid"] = os.getpid()
    else:
        result = _t.cast(RunResult, run_experiment(config))
    return result, t0, time.perf_counter()


def normalized_quiet_twin(config: ExperimentConfig) -> ExperimentConfig:
    """``config``'s quiet twin with noise-only axes canonicalised.

    Alignment only parameterises the injected noise, so quiet twins
    that differ in nothing else are the same physical run; normalising
    lets them share one simulation and one cache entry.
    """
    return replace(config, noise_pattern="quiet", alignment="random")


@dataclass(frozen=True)
class PointTiming:
    """Wall-clock record for one executed (or cache-served) point."""

    label: str
    elapsed_s: float
    cached: bool


@dataclass(frozen=True)
class PointError:
    """One sweep point that failed (after its retry) and was isolated.

    Attributes
    ----------
    label:
        Human-readable point label (as used in progress lines).
    kind:
        Exception class name (``"FaultError"``, ``"DeadlockError"`` ...).
    message:
        Stringified exception.
    retried:
        True if the point was re-run (serially) before being declared
        failed.
    """

    label: str
    kind: str
    message: str
    retried: bool = False

    def as_dict(self) -> dict[str, _t.Any]:
        return {"label": self.label, "kind": self.kind,
                "message": self.message, "retried": self.retried}


@dataclass
class SweepStats:
    """What one :meth:`SweepExecutor.run_sweep` call actually did."""

    workers: int
    wall_s: float = 0.0
    timings: list[PointTiming] = field(default_factory=list)
    quiet_simulated: int = 0
    quiet_cached: int = 0
    noisy_simulated: int = 0
    noisy_cached: int = 0
    #: Points that failed after retry, in plan order (partial-failure
    #: isolation: completed points are still returned).
    errors: list[PointError] = field(default_factory=list)

    @property
    def points(self) -> int:
        return len(self.timings)

    def tally(self, key_kind: str, timing: "PointTiming") -> None:
        """Record one point under the quiet/noisy x cached/simulated grid."""
        self.timings.append(timing)
        if timing.cached:
            if key_kind == "quiet":
                self.quiet_cached += 1
            else:
                self.noisy_cached += 1
        elif key_kind == "quiet":
            self.quiet_simulated += 1
        else:
            self.noisy_simulated += 1

    @property
    def simulated_s(self) -> float:
        """Summed per-point simulation time (serial-equivalent cost)."""
        return sum(t.elapsed_s for t in self.timings)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time."""
        return self.simulated_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def failed(self) -> int:
        """Points that ended in a :class:`PointError`."""
        return len(self.errors)

    def as_dict(self) -> dict[str, _t.Any]:
        return {"workers": self.workers, "points": self.points,
                "wall_s": self.wall_s, "simulated_s": self.simulated_s,
                "quiet_simulated": self.quiet_simulated,
                "quiet_cached": self.quiet_cached,
                "noisy_simulated": self.noisy_simulated,
                "noisy_cached": self.noisy_cached,
                "failed": self.failed,
                "errors": [e.as_dict() for e in self.errors]}


class SweepExecutor:
    """Runs the independent points of a sweep, serially or in parallel.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) runs in-process with no
        pool; ``None`` or ``0`` means ``os.cpu_count()``.
    cache:
        ``None`` (no caching), a :class:`ResultCache`, or a directory
        path to root one at.
    """

    def __init__(self, workers: int | None = 1,
                 cache: ResultCache | str | os.PathLike[str] | None = None,
                 *, persistent: bool = False) -> None:
        if workers is None or workers == 0:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache: ResultCache | None
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        elif not os.fspath(cache):
            # An empty path would silently cache into ./v<version>/.
            self.cache = None
        else:
            from .cache import ShardedResultCache

            self.cache = ShardedResultCache(cache)
        #: Keep one process pool alive across fan-outs (the experiment
        #: server's mode): repeated small jobs stop paying pool
        #: creation, and :meth:`submit_config` becomes available.
        self.persistent = bool(persistent)
        self._pool: ProcessPoolExecutor | None = None
        #: Stats of the most recent :meth:`run_sweep` call.
        self.last_stats: SweepStats | None = None
        #: Per-point errors of the most recent fan-out, keyed like its
        #: ``configs`` mapping (empty when every point succeeded).
        self.last_errors: dict[_t.Any, PointError] = {}

    # -- persistent pool ---------------------------------------------------
    @property
    def pool_ready(self) -> bool:
        """True once the persistent pool exists (the server's readiness
        signal: liveness holds from bind time, readiness from
        :meth:`warm`)."""
        return self._pool is not None

    def ensure_pool(self) -> ProcessPoolExecutor:
        """The long-lived pool (created on first use; ``persistent``
        executors only)."""
        if not self.persistent:
            raise ConfigError(
                "ensure_pool()/submit_config() need SweepExecutor("
                "persistent=True)")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def warm(self) -> None:
        """Spawn the persistent pool's workers now (and verify they
        answer).  Servers call this before going async so worker
        processes are forked from a quiet main thread."""
        fut = self.ensure_pool().submit(int, 0)
        fut.result()

    def submit_config(self, config: ExperimentConfig, *,
                      trace: bool = False) -> "_t.Any":
        """Submit one simulation to the persistent pool.

        Returns the :class:`concurrent.futures.Future` resolving to
        ``(RunResult, start, end)`` — the async seam the experiment
        server bridges with :func:`asyncio.wrap_future`.  No cache
        interaction happens here; callers own lookup and store.
        ``trace=True`` captures the point's sim-time spans in the
        worker (see :func:`_run_point`).
        """
        return self.ensure_pool().submit(_run_point, config,
                                         _obs.det_check_enabled(), trace)

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc: _t.Any) -> None:
        self.close()

    def _collect(self, futures: _t.Mapping[_t.Any, _t.Any],
                 record: _t.Callable[[_t.Any, RunResult, float, float], None],
                 failed: dict[_t.Any, BaseException]) -> None:
        """Drain pooled futures into ``record``/``failed``."""
        broken = False
        for key, fut in futures.items():
            try:
                result, t0, t1 = fut.result()
            except (Exception, BrokenExecutor) as exc:
                # BrokenExecutor: the worker process died (OOM,
                # segfault); every sibling future fails too and
                # each gets its serial retry in the caller.
                broken = broken or isinstance(exc, BrokenExecutor)
                failed[key] = exc
                continue
            record(key, result, t0, t1)
        if broken and self._pool is not None:
            # A broken persistent pool never recovers; drop it so the
            # next fan-out (or submit_config) builds a fresh one.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- generic fan-out ---------------------------------------------------
    def run_configs(self, configs: _t.Mapping[_t.Any, ExperimentConfig],
                    *, labels: _t.Mapping[_t.Any, str] | None = None,
                    progress: _t.Callable[[str], None] | None = None
                    ) -> tuple[dict[_t.Any, RunResult],
                               dict[_t.Any, PointTiming]]:
        """Execute independent configs; results keyed like ``configs``.

        Cache hits never reach the pool.  The returned dicts iterate in
        ``configs`` order regardless of completion order.

        Failures are isolated, not fatal: a point that raises (in a
        worker — including a :class:`BrokenExecutor` pool collapse — or
        in-process) is retried once serially; if it fails again it is
        recorded in :attr:`last_errors` and omitted from the returned
        mappings, so one crashed simulation never discards its
        siblings' completed work.
        """
        labels = labels or {}
        served: dict[_t.Any, RunResult] = {}
        timings: dict[_t.Any, PointTiming] = {}
        pending: dict[_t.Any, ExperimentConfig] = {}
        for key, cfg in configs.items():
            cached = (self.cache.get(cfg, MISS)
                      if self.cache is not None else MISS)
            if cached is not MISS:
                served[key] = cached
                timings[key] = PointTiming(labels.get(key, str(key)), 0.0,
                                           cached=True)
                if progress:
                    progress(f"{labels.get(key, key)} (cached)")
            else:
                pending[key] = cfg

        failed: dict[_t.Any, BaseException] = {}
        det_check = _obs.det_check_enabled()
        tracer = _obs.tracer()
        if tracer is not None and not tracer.enabled("sweep"):
            tracer = None

        _oplog.log("exec.fanout", points=len(configs),
                   cached=len(served), pending=len(pending),
                   workers=self.workers)

        def record(key: _t.Any, result: RunResult,
                   start: float, end: float) -> None:
            elapsed = end - start
            served[key] = result
            timings[key] = PointTiming(labels.get(key, str(key)),
                                       elapsed, cached=False)
            meta = getattr(result, "meta", None) or {}
            _oplog.log("exec.point", level="debug",
                       point=labels.get(key, str(key)),
                       elapsed_s=round(elapsed, 6),
                       worker_pid=meta.get("worker_pid"))
            if tracer is not None:
                # True worker-side start/end stamps: pooled futures are
                # collected in plan order, so "collection time minus
                # cost" would shift/overlap spans and misrepresent
                # worker occupancy.
                tracer.host_span("sweep", labels.get(key, str(key)),
                                 start, elapsed)
            if progress:
                progress(f"{labels.get(key, key)} ({elapsed:.2f}s)")

        if pending and self.workers == 1 and not self.persistent:
            for key, cfg in pending.items():
                try:
                    result, t0, t1 = _run_point(cfg, det_check)
                except Exception as exc:
                    failed[key] = exc
                    continue
                record(key, result, t0, t1)
        elif pending and self.persistent:
            pool = self.ensure_pool()
            futures = {key: pool.submit(_run_point, cfg, det_check)
                       for key, cfg in pending.items()}
            self._collect(futures, record, failed)
        elif pending:
            n_workers = min(self.workers, len(pending))
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {key: pool.submit(_run_point, cfg, det_check)
                           for key, cfg in pending.items()}
                self._collect(futures, record, failed)

        errors: dict[_t.Any, PointError] = {}
        for key, first_exc in failed.items():
            label = labels.get(key, str(key))
            if progress:
                progress(f"{label} failed "
                         f"({type(first_exc).__name__}); retrying serially")
            _oplog.log("exec.point_retry", level="warning", point=label,
                       error=type(first_exc).__name__)
            try:
                result, t0, t1 = _run_point(pending[key], det_check)
            except Exception as exc:
                errors[key] = PointError(label, type(exc).__name__,
                                         str(exc), retried=True)
                _oplog.log("exec.point_error", level="error", point=label,
                           error=type(exc).__name__, message=str(exc))
                if progress:
                    progress(f"{label} failed permanently: {exc}")
                continue
            record(key, result, t0, t1)

        if self.cache is not None:
            for key, cfg in pending.items():
                if key in served:
                    self.cache.put(cfg, served[key])

        self.last_errors = {key: errors[key] for key in configs
                            if key in errors}
        _obs.harvest_points(timings.values(), len(self.last_errors))
        return ({key: served[key] for key in configs if key in served},
                {key: timings[key] for key in configs if key in timings})

    # -- comparison fan-out ------------------------------------------------
    def run_comparisons(self, configs: _t.Mapping[_t.Any, ExperimentConfig],
                        *, progress: _t.Callable[[str], None] | None = None
                        ) -> dict[_t.Any, ComparisonResult]:
        """Run noisy configs against their quiet twins, all in one pool.

        The parallel, baseline-deduplicating form of calling
        :func:`repro.core.run_with_baseline` per config: physically
        identical quiet twins (see :func:`normalized_quiet_twin`) are
        simulated once and shared by every comparison that needs them.
        """
        from .cache import config_key

        t0 = time.perf_counter()
        plan: dict[_PointKey, ExperimentConfig] = {}
        labels: dict[_PointKey, str] = {}
        twin_of: dict[_t.Any, _PointKey] = {}
        for key, cfg in configs.items():
            if _is_quiet(cfg.noise_pattern):
                raise ConfigError(
                    f"run_comparisons needs noisy configurations; "
                    f"{key!r} is {cfg.noise_pattern!r}")
            twin = normalized_quiet_twin(cfg)
            twin_key = ("quiet", config_key(twin))
            if twin_key not in plan:
                plan[twin_key] = twin
                labels[twin_key] = f"quiet baseline P={twin.nodes}"
            twin_of[key] = twin_key
        for key, cfg in configs.items():
            plan[("noisy", key)] = cfg
            labels[("noisy", key)] = (f"P={cfg.nodes} "
                                      f"pattern={cfg.noise_pattern}")

        points, timings = self.run_configs(plan, labels=labels,
                                           progress=progress)

        stats = SweepStats(workers=self.workers)
        for pkey, timing in timings.items():
            stats.tally(pkey[0], timing)
        stats.errors = [self.last_errors[k] for k in plan
                        if k in self.last_errors]

        results: dict[_t.Any, ComparisonResult] = {}
        for key in configs:
            twin_key, noisy_key = twin_of[key], ("noisy", key)
            if twin_key in points and noisy_key in points:
                results[key] = ComparisonResult(quiet=points[twin_key],
                                                noisy=points[noisy_key])
            elif noisy_key in points:
                # The noisy run survived but its baseline did not, so no
                # slowdown can be computed — surface that as an error on
                # this comparison rather than dropping it silently.
                stats.errors.append(PointError(
                    labels[noisy_key], "MissingBaseline",
                    "quiet baseline failed: "
                    f"{self.last_errors[twin_key].message}"))

        stats.wall_s = time.perf_counter() - t0
        self.last_stats = stats
        _obs.harvest_sweep_stats(stats)
        return results

    # -- sweep orchestration -----------------------------------------------
    def run_sweep(self, base: ExperimentConfig, *,
                  nodes: _t.Sequence[int], patterns: _t.Sequence[str],
                  progress: _t.Callable[[str], None] | None = None
                  ) -> dict[tuple[int, str], ComparisonResult | RunResult]:
        """Cross ``nodes`` x ``patterns`` with shared quiet baselines.

        Same contract as :func:`repro.core.sweep`: the returned mapping
        is keyed and ordered ``(n_nodes, pattern)`` nodes-major, quiet
        points are bare :class:`RunResult` objects, and every
        :class:`ComparisonResult` at a given machine size shares the
        *same* quiet baseline object.
        """
        if not nodes or not patterns:
            raise ConfigError("sweep needs at least one node count and pattern")

        t0 = time.perf_counter()
        configs: dict[_PointKey, ExperimentConfig] = {}
        labels: dict[_PointKey, str] = {}
        for p in nodes:
            configs[("quiet", p)] = normalized_quiet_twin(
                replace(base, nodes=p))
            labels[("quiet", p)] = f"quiet baseline P={p}"
        for p in nodes:
            for pattern in patterns:
                if _is_quiet(pattern):
                    continue
                key = ("noisy", p, pattern)
                configs[key] = replace(base, nodes=p, noise_pattern=pattern)
                labels[key] = f"P={p} pattern={pattern}"

        points, timings = self.run_configs(configs, labels=labels,
                                           progress=progress)

        stats = SweepStats(workers=self.workers)
        for key, timing in timings.items():
            stats.tally(key[0], timing)
        stats.errors = [self.last_errors[k] for k in configs
                        if k in self.last_errors]

        results: dict[tuple[int, str], ComparisonResult | RunResult] = {}
        for p in nodes:
            quiet = points.get(("quiet", p))
            for pattern in patterns:
                if _is_quiet(pattern):
                    if quiet is not None:
                        results[(p, pattern)] = quiet
                    continue
                noisy = points.get(("noisy", p, pattern))
                if noisy is None:
                    continue  # already in stats.errors
                if quiet is None:
                    # Noisy point survived but its size's quiet baseline
                    # failed; no slowdown can be formed for it.
                    stats.errors.append(PointError(
                        labels[("noisy", p, pattern)], "MissingBaseline",
                        "quiet baseline failed: "
                        f"{self.last_errors[('quiet', p)].message}"))
                    continue
                results[(p, pattern)] = ComparisonResult(quiet=quiet,
                                                         noisy=noisy)

        stats.wall_s = time.perf_counter() - t0
        self.last_stats = stats
        _obs.harvest_sweep_stats(stats)
        return results
