"""Application skeleton base class and instrumentation plumbing.

A :class:`ParallelApp` is a factory of rank programs with built-in
per-iteration timing: every app records iteration wall times per rank
(cheaply, always) and additionally emits observer intervals when a
:class:`~repro.ktau.KtauTracer` is bound.  The separation matters for
experiment E7: the app's own lightweight timing exists even when the
observer is off, so observer overhead can be measured against it.
"""

from __future__ import annotations

import typing as _t
from abc import ABC, abstractmethod
from contextlib import contextmanager

import numpy as np

from ..errors import ConfigError
from ..mpi import RankComm
from ..sim.rng import RandomTree

__all__ = ["ParallelApp", "grid_dims"]


def grid_dims(p: int) -> tuple[int, int]:
    """Near-square 2D process grid ``(px, py)`` with ``px*py == p``.

    Picks the factorization with the largest ``px <= sqrt(p)``; prime
    ``p`` degenerates to ``(1, p)``.
    """
    if p <= 0:
        raise ConfigError(f"p must be > 0, got {p}")
    px = int(np.sqrt(p))
    while px > 1 and p % px != 0:
        px -= 1
    return px, p // px


class ParallelApp(ABC):
    """Base class for the application skeletons.

    Parameters
    ----------
    iterations:
        Number of outer (timed) iterations.
    name:
        Workload label used in reports.
    """

    def __init__(self, iterations: int, name: str) -> None:
        if iterations <= 0:
            raise ConfigError(f"iterations must be > 0, got {iterations}")
        self.iterations = iterations
        self.name = name
        #: rank -> [(start, end), ...] for each completed iteration.
        self.iteration_times: dict[int, list[tuple[int, int]]] = {}
        #: Observer bound via :meth:`bind_tracer` (optional).
        self.tracer: _t.Any | None = None

    # -- configuration ------------------------------------------------------
    def bind_tracer(self, tracer: _t.Any) -> "ParallelApp":
        """Emit ktau app intervals for every iteration (chainable)."""
        self.tracer = tracer
        return self

    # -- the program --------------------------------------------------------------
    @abstractmethod
    def rank_program(self, ctx: RankComm) -> _t.Generator:
        """The generator rank ``ctx.rank`` executes."""

    def __call__(self, ctx: RankComm) -> _t.Generator:
        """Apps are usable directly as :class:`~repro.core.RankProgram`."""
        return self.rank_program(ctx)

    # -- instrumentation helpers -----------------------------------------------------
    @contextmanager
    def iteration(self, ctx: RankComm, index: int) -> _t.Iterator[None]:
        """Record one iteration (app-local timing + observer interval)."""
        start = ctx.env.now
        if self.tracer is not None:
            with self.tracer.app_interval(ctx.node_id, f"{self.name}:iteration",
                                          i=index):
                yield
        else:
            yield
        self.iteration_times.setdefault(ctx.rank, []).append((start, ctx.env.now))

    @contextmanager
    def phase(self, ctx: RankComm, name: str, **meta: _t.Any) -> _t.Iterator[None]:
        """Record a named sub-phase (observer interval only).

        Lets attribution distinguish e.g. a solver's communication
        storm from the physics phase of the same iteration.  No-op
        when no tracer is bound.
        """
        if self.tracer is not None:
            with self.tracer.app_interval(ctx.node_id,
                                          f"{self.name}:{name}", **meta):
                yield
        else:
            yield

    def _work_rng(self, ctx: RankComm, seed: int) -> np.random.Generator:
        """Per-rank RNG for load-imbalance draws (stable across runs)."""
        return RandomTree(seed).generator(f"app/{self.name}/rank{ctx.rank}")

    # -- results ---------------------------------------------------------------------
    def durations_ns(self, rank: int) -> list[int]:
        """Wall time of each completed iteration on ``rank``."""
        return [end - start for start, end in self.iteration_times.get(rank, [])]

    def all_durations_ns(self) -> np.ndarray:
        """Iteration durations across every rank, shape (ranks, iters)."""
        if not self.iteration_times:
            raise ConfigError(f"{self.name}: no iterations recorded yet")
        ranks = sorted(self.iteration_times)
        return np.array([self.durations_ns(r) for r in ranks], dtype=np.int64)

    def makespan_ns(self) -> int:
        """First iteration start to last iteration end, across ranks."""
        if not self.iteration_times:
            raise ConfigError(f"{self.name}: no iterations recorded yet")
        first = min(ts[0][0] for ts in self.iteration_times.values())
        last = max(ts[-1][1] for ts in self.iteration_times.values())
        return last - first

    def describe(self) -> dict[str, object]:
        """Workload parameters for reports (extended by subclasses)."""
        return {"app": self.name, "iterations": self.iterations}
