"""NPB-CG-like conjugate-gradient skeleton.

Per iteration: sparse matrix-vector compute, a butterfly (hypercube)
exchange pattern standing in for CG's row/column reductions, and two
small dot-product allreduces.  A mixed workload: medium messages with
log-depth pairwise structure plus latency-bound global sums.

For non-power-of-two machine sizes the butterfly degenerates to a ring
exchange (the partner structure no longer pairs up cleanly), which is
also what production codes fall back to.
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from ..mpi import RankComm
from .base import ParallelApp

__all__ = ["CGLikeApp"]


class CGLikeApp(ParallelApp):
    """SpMV + butterfly exchange + two dot-product allreduces.

    Parameters
    ----------
    spmv_ns:
        Compute grain of the sparse matrix-vector product.
    exchange_bytes:
        Per-partner message size in the butterfly/ring exchange.
    iterations:
        CG iterations.
    """

    def __init__(self, *, spmv_ns: int = 1_000_000,
                 exchange_bytes: int = 16_384,
                 iterations: int = 40) -> None:
        super().__init__(iterations, "cg")
        if spmv_ns < 0 or exchange_bytes < 0:
            raise ConfigError("spmv_ns and exchange_bytes must be >= 0")
        self.spmv_ns = spmv_ns
        self.exchange_bytes = exchange_bytes

    def rank_program(self, ctx: RankComm) -> _t.Generator:
        P = ctx.size
        pow2 = P > 1 and (P & (P - 1)) == 0
        for i in range(self.iterations):
            with self.iteration(ctx, i):
                yield from ctx.compute(self.spmv_ns)
                if P > 1:
                    if pow2:
                        stride = 1
                        while stride < P:
                            partner = ctx.rank ^ stride
                            yield from ctx.sendrecv(partner, partner,
                                                    self.exchange_bytes,
                                                    tag=11)
                            stride <<= 1
                    else:
                        right = (ctx.rank + 1) % P
                        left = (ctx.rank - 1) % P
                        yield from ctx.sendrecv(right, left,
                                                self.exchange_bytes, tag=11)
                    # Two dot products per CG iteration (rho and alpha).
                    yield from ctx.allreduce(size=8, payload=1.0)
                    yield from ctx.allreduce(size=8, payload=1.0)

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(spmv_ns=self.spmv_ns, exchange_bytes=self.exchange_bytes)
        return d
