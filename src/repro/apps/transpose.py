"""FFT-like transpose skeleton (alltoall-dominated).

Spectral/pseudo-spectral solvers transpose the global array every
timestep: an ``MPI_Alltoall`` whose per-pair message size shrinks as
1/P while the message *count* grows as P.  Under noise this stresses a
different axis than POP's latency-bound allreduces: every rank talks to
every rank, so a single struck node back-pressures all P−1 partners at
once.
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from ..mpi import RankComm
from .base import ParallelApp

__all__ = ["TransposeApp"]


class TransposeApp(ParallelApp):
    """Compute + global transpose (alltoall), twice per iteration.

    Parameters
    ----------
    work_ns:
        Per-iteration local FFT compute.
    total_bytes:
        Global array size; each of the P*P transfers carries
        ``total_bytes / P**2`` bytes (at least 1).
    iterations:
        Timesteps (each does forward + inverse transpose).
    algorithm:
        Alltoall algorithm (ablation knob).
    """

    def __init__(self, *, work_ns: int = 2_000_000,
                 total_bytes: int = 4 << 20, iterations: int = 20,
                 algorithm: str | None = None) -> None:
        super().__init__(iterations, "transpose")
        if work_ns < 0 or total_bytes <= 0:
            raise ConfigError("work_ns must be >= 0 and total_bytes > 0")
        self.work_ns = work_ns
        self.total_bytes = total_bytes
        self.algorithm = algorithm

    def block_bytes(self, p: int) -> int:
        """Per-pair message size at machine size ``p``."""
        return max(1, self.total_bytes // (p * p))

    def rank_program(self, ctx: RankComm) -> _t.Generator:
        block = self.block_bytes(ctx.size)
        kwargs: dict[str, _t.Any] = {}
        if self.algorithm:
            kwargs["algorithm"] = self.algorithm
        for i in range(self.iterations):
            with self.iteration(ctx, i):
                yield from ctx.compute(self.work_ns)
                if ctx.size > 1:
                    yield from ctx.alltoall(size=block, **kwargs)
                yield from ctx.compute(self.work_ns)
                if ctx.size > 1:
                    yield from ctx.alltoall(size=block, **kwargs)

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(work_ns=self.work_ns, total_bytes=self.total_bytes,
                 algorithm=self.algorithm or "default")
        return d
