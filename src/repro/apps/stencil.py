"""Halo-exchange stencil skeleton (SAGE/CTH-class hydrodynamics).

A 2D domain decomposition where each iteration computes over the local
block and exchanges ghost cells with up to four neighbours using
non-blocking sends/receives.  There is **no global synchronization**
except an optional periodic timestep reduction (the ``dt`` allreduce
real hydro codes issue every cycle or every few cycles), so noise can
only propagate through neighbour chains — the classic *loosely
coupled* workload that absorbs noise far better than POP.
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from ..mpi import RankComm, wait_all
from .base import ParallelApp, grid_dims

__all__ = ["StencilApp"]


class StencilApp(ParallelApp):
    """2D halo-exchange iteration: compute, exchange, optionally reduce.

    Parameters
    ----------
    work_ns:
        Per-iteration local compute.
    halo_bytes:
        Ghost-layer message size per neighbour.
    iterations:
        Number of timesteps.
    dt_interval:
        Issue an 8-byte allreduce every this many iterations
        (0 disables it — pure neighbour coupling).
    imbalance / seed:
        Uniform per-iteration load imbalance as in
        :class:`~repro.apps.BSPApp`.
    """

    def __init__(self, *, work_ns: int = 2_000_000, halo_bytes: int = 8192,
                 iterations: int = 50, dt_interval: int = 1,
                 imbalance: float = 0.0, seed: int = 0) -> None:
        super().__init__(iterations, "stencil")
        if work_ns < 0 or halo_bytes < 0:
            raise ConfigError("work_ns and halo_bytes must be >= 0")
        if dt_interval < 0:
            raise ConfigError("dt_interval must be >= 0")
        if not 0 <= imbalance < 1:
            raise ConfigError("imbalance must be in [0, 1)")
        self.work_ns = work_ns
        self.halo_bytes = halo_bytes
        self.dt_interval = dt_interval
        self.imbalance = imbalance
        self.seed = seed

    def neighbours(self, ctx: RankComm) -> list[int]:
        """Up to four grid neighbours of this rank (non-periodic)."""
        px, py = grid_dims(ctx.size)
        x, y = ctx.rank % px, ctx.rank // px
        out = []
        if x > 0:
            out.append(ctx.rank - 1)
        if x < px - 1:
            out.append(ctx.rank + 1)
        if y > 0:
            out.append(ctx.rank - px)
        if y < py - 1:
            out.append(ctx.rank + px)
        return out

    def rank_program(self, ctx: RankComm) -> _t.Generator:
        neighbours = self.neighbours(ctx)
        rng = self._work_rng(ctx, self.seed) if self.imbalance else None
        for i in range(self.iterations):
            with self.iteration(ctx, i):
                work = self.work_ns
                if rng is not None:
                    work = int(work * rng.uniform(1 - self.imbalance,
                                                  1 + self.imbalance))
                yield from ctx.compute(work)
                if neighbours:
                    recv_reqs = [ctx.irecv(nb, tag=7) for nb in neighbours]
                    for nb in neighbours:
                        yield from ctx.send(nb, self.halo_bytes, tag=7)
                    yield from wait_all(recv_reqs)
                if (self.dt_interval and ctx.size > 1
                        and (i + 1) % self.dt_interval == 0):
                    yield from ctx.allreduce(size=8, payload=1.0, op=min)

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(work_ns=self.work_ns, halo_bytes=self.halo_bytes,
                 dt_interval=self.dt_interval, imbalance=self.imbalance)
        return d
