"""Sweep3D-like pipelined wavefront skeleton.

Discrete-ordinates transport sweeps: the 2D process grid is swept from
each corner in turn; a rank may compute a block only after receiving
the upstream ghost data from its west and north (for the ++ sweep)
neighbours, then forwards east and south.  Dependencies are
*directional pipelines* rather than global barriers, so a noise event
on one node delays a moving diagonal front — amplification in between
the stencil (local) and allreduce (global) extremes.
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from ..mpi import RankComm
from .base import ParallelApp, grid_dims

__all__ = ["SweepApp"]

#: The four sweep directions: (dx, dy) step of the dependency flow.
_CORNERS = ((1, 1), (-1, 1), (1, -1), (-1, -1))


class SweepApp(ParallelApp):
    """Wavefront sweeps over a 2D process grid.

    Parameters
    ----------
    block_work_ns:
        Compute per block per sweep (the pipeline stage cost).
    blocks_per_rank:
        Pipeline depth: each rank processes this many angle/k-plane
        blocks per sweep, overlapping with neighbours.
    face_bytes:
        Ghost-face message size between pipeline stages.
    iterations:
        Outer timesteps (each = 4 corner sweeps).
    """

    def __init__(self, *, block_work_ns: int = 200_000,
                 blocks_per_rank: int = 8, face_bytes: int = 4096,
                 iterations: int = 10) -> None:
        super().__init__(iterations, "sweep")
        if block_work_ns < 0 or face_bytes < 0:
            raise ConfigError("block_work_ns and face_bytes must be >= 0")
        if blocks_per_rank <= 0:
            raise ConfigError("blocks_per_rank must be > 0")
        self.block_work_ns = block_work_ns
        self.blocks_per_rank = blocks_per_rank
        self.face_bytes = face_bytes

    # -- grid helpers ---------------------------------------------------------
    def _coords(self, ctx: RankComm) -> tuple[int, int, int, int]:
        px, py = grid_dims(ctx.size)
        return ctx.rank % px, ctx.rank // px, px, py

    def _upstream(self, ctx: RankComm, dx: int, dy: int) -> list[int]:
        x, y, px, py = self._coords(ctx)
        out = []
        if 0 <= x - dx < px and x - dx != x:
            out.append(ctx.rank - dx)
        if 0 <= y - dy < py and y - dy != y:
            out.append(ctx.rank - dy * px)
        return out

    def _downstream(self, ctx: RankComm, dx: int, dy: int) -> list[int]:
        x, y, px, py = self._coords(ctx)
        out = []
        if 0 <= x + dx < px and x + dx != x:
            out.append(ctx.rank + dx)
        if 0 <= y + dy < py and y + dy != y:
            out.append(ctx.rank + dy * px)
        return out

    # -- program -----------------------------------------------------------------
    def rank_program(self, ctx: RankComm) -> _t.Generator:
        for i in range(self.iterations):
            with self.iteration(ctx, i):
                for corner, (dx, dy) in enumerate(_CORNERS):
                    upstream = self._upstream(ctx, dx, dy)
                    downstream = self._downstream(ctx, dx, dy)
                    tag = 100 + corner
                    for _block in range(self.blocks_per_rank):
                        for nb in upstream:
                            yield from ctx.recv(nb, tag=tag)
                        yield from ctx.compute(self.block_work_ns)
                        for nb in downstream:
                            yield from ctx.send(nb, self.face_bytes, tag=tag)

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(block_work_ns=self.block_work_ns,
                 blocks_per_rank=self.blocks_per_rank,
                 face_bytes=self.face_bytes)
        return d
