"""Parallel application skeletons.

Each skeleton reproduces one communication/computation *shape* from the
paper's era of capability workloads — the numerics are elided because
noise sensitivity is a property of grain size and dependency structure,
not of the physics:

* :class:`BSPApp` — compute + global collective (the analytic bridge);
* :class:`POPLikeApp` — ocean model with an allreduce-storm solver
  (most noise-sensitive);
* :class:`StencilApp` — halo-exchange hydro (least sensitive);
* :class:`SweepApp` — pipelined wavefront transport (in between);
* :class:`CGLikeApp` — butterfly exchange + dot products (mixed);
* :class:`TransposeApp` — FFT-like global transpose (alltoall-bound).
"""

from .base import ParallelApp, grid_dims
from .cg import CGLikeApp
from .pop_like import POPLikeApp
from .stencil import StencilApp
from .sweep3d import SweepApp
from .synthetic_bsp import BSPApp
from .transpose import TransposeApp
from .workloads import WORKLOADS, build_workload, workload_names

__all__ = [
    "ParallelApp", "grid_dims",
    "BSPApp", "POPLikeApp", "StencilApp", "SweepApp", "CGLikeApp",
    "TransposeApp",
    "WORKLOADS", "build_workload", "workload_names",
]
