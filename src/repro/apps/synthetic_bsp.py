"""Synthetic bulk-synchronous benchmark.

The canonical noise-study microworkload: every rank computes a fixed
grain, then everyone synchronizes.  Because nothing else happens, the
measured iteration time *is* the noise-amplification curve — this is
the workload the analytic model (:class:`repro.analysis.BSPModel`)
describes exactly, making it the calibration bridge between simulation
and theory (E10).
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from ..mpi import RankComm
from .base import ParallelApp

__all__ = ["BSPApp"]


class BSPApp(ParallelApp):
    """Compute ``work_ns`` then synchronize, ``iterations`` times.

    Parameters
    ----------
    work_ns:
        Per-iteration compute grain per rank.
    iterations:
        Outer iterations.
    collective:
        ``"allreduce"`` (default — data-carrying global sum),
        ``"barrier"``, or ``"none"`` (embarrassingly parallel control).
    message_size:
        Bytes carried by the allreduce.
    imbalance:
        Fractional uniform load imbalance: each rank's grain each
        iteration is drawn from ``work*(1 ± imbalance)``.  Zero keeps
        ranks perfectly balanced so all delay comes from noise.
    algorithm:
        Collective algorithm name (ablation knob).
    seed:
        Seed for imbalance draws.
    """

    def __init__(self, work_ns: int, iterations: int = 50, *,
                 collective: str = "allreduce", message_size: int = 8,
                 imbalance: float = 0.0, algorithm: str | None = None,
                 seed: int = 0) -> None:
        super().__init__(iterations, "bsp")
        if work_ns < 0:
            raise ConfigError("work_ns must be >= 0")
        if collective not in ("allreduce", "barrier", "none"):
            raise ConfigError(f"unknown collective {collective!r}")
        if not 0 <= imbalance < 1:
            raise ConfigError("imbalance must be in [0, 1)")
        self.work_ns = work_ns
        self.collective = collective
        self.message_size = message_size
        self.imbalance = imbalance
        self.algorithm = algorithm
        self.seed = seed

    def rank_program(self, ctx: RankComm) -> _t.Generator:
        rng = self._work_rng(ctx, self.seed) if self.imbalance else None
        for i in range(self.iterations):
            with self.iteration(ctx, i):
                work = self.work_ns
                if rng is not None:
                    lo = 1.0 - self.imbalance
                    hi = 1.0 + self.imbalance
                    work = int(work * rng.uniform(lo, hi))
                yield from ctx.compute(work)
                if ctx.size > 1:
                    if self.collective == "allreduce":
                        kwargs = {}
                        if self.algorithm:
                            kwargs["algorithm"] = self.algorithm
                        yield from ctx.allreduce(size=self.message_size,
                                                 payload=1, **kwargs)
                    elif self.collective == "barrier":
                        kwargs = {}
                        if self.algorithm:
                            kwargs["algorithm"] = self.algorithm
                        yield from ctx.barrier(**kwargs)

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(work_ns=self.work_ns, collective=self.collective,
                 message_size=self.message_size, imbalance=self.imbalance,
                 algorithm=self.algorithm or "default")
        return d
