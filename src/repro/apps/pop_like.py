"""POP-like ocean-model skeleton.

The Parallel Ocean Program's noise-famous structure: each timestep does
a long *baroclinic* phase (3D physics, nearest-neighbour-friendly,
coarse-grained) and then a *barotropic* solver — a conjugate-gradient
iteration on the 2D free surface issuing **many tiny allreduces**
(dot products) with almost no compute between them.  The barotropic
phase is the most noise-sensitive communication pattern in production
use and the reason POP became the noise literature's canary.
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from ..mpi import RankComm
from .base import ParallelApp

__all__ = ["POPLikeApp"]


class POPLikeApp(ParallelApp):
    """Timesteps of baroclinic compute + allreduce-bound solver.

    Parameters
    ----------
    baroclinic_ns:
        Compute grain of the 3D physics phase per step.
    solver_iterations:
        CG iterations in the barotropic solve (each costing
        ``solver_compute_ns`` + one small allreduce; production POP
        runs dozens to hundreds per step).
    solver_compute_ns:
        Local work between solver allreduces (small: a few SpMV rows).
    iterations:
        Number of timesteps.
    reduction_bytes:
        Size of the solver's dot-product allreduce.
    """

    def __init__(self, *, baroclinic_ns: int = 5_000_000,
                 solver_iterations: int = 40,
                 solver_compute_ns: int = 50_000,
                 iterations: int = 20,
                 reduction_bytes: int = 16) -> None:
        super().__init__(iterations, "pop")
        if baroclinic_ns < 0 or solver_compute_ns < 0:
            raise ConfigError("compute grains must be >= 0")
        if solver_iterations <= 0:
            raise ConfigError("solver_iterations must be > 0")
        self.baroclinic_ns = baroclinic_ns
        self.solver_iterations = solver_iterations
        self.solver_compute_ns = solver_compute_ns
        self.reduction_bytes = reduction_bytes

    def rank_program(self, ctx: RankComm) -> _t.Generator:
        for step in range(self.iterations):
            with self.iteration(ctx, step):
                # Baroclinic 3D physics: coarse compute.
                with self.phase(ctx, "baroclinic", step=step):
                    yield from ctx.compute(self.baroclinic_ns)
                # Barotropic CG solve: tiny compute + global dot product,
                # many times — the noise amplifier.
                with self.phase(ctx, "barotropic", step=step):
                    for _ in range(self.solver_iterations):
                        yield from ctx.compute(self.solver_compute_ns)
                        if ctx.size > 1:
                            yield from ctx.allreduce(
                                size=self.reduction_bytes, payload=1.0)

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(baroclinic_ns=self.baroclinic_ns,
                 solver_iterations=self.solver_iterations,
                 solver_compute_ns=self.solver_compute_ns,
                 reduction_bytes=self.reduction_bytes)
        return d
