"""Workload registry: build application skeletons by name.

Experiment configs refer to workloads by string; the registry maps
names to factories with benchmark-sized defaults that can be overridden
via keyword arguments (every app parameter is reachable).
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from .base import ParallelApp
from .cg import CGLikeApp
from .pop_like import POPLikeApp
from .stencil import StencilApp
from .sweep3d import SweepApp
from .synthetic_bsp import BSPApp
from .transpose import TransposeApp

__all__ = ["WORKLOADS", "build_workload", "workload_names"]

WORKLOADS: dict[str, _t.Callable[..., ParallelApp]] = {
    "bsp": lambda **kw: BSPApp(**{"work_ns": 1_000_000, "iterations": 50, **kw}),
    "pop": POPLikeApp,
    "stencil": StencilApp,
    "sweep": SweepApp,
    "cg": CGLikeApp,
    "transpose": TransposeApp,
}


def workload_names() -> list[str]:
    """Registered workload names (reporting order)."""
    return list(WORKLOADS)


def build_workload(name: str, **overrides: _t.Any) -> ParallelApp:
    """Instantiate a workload by name with parameter overrides."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {workload_names()}") from None
    return factory(**overrides)
