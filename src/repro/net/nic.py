"""Per-node network interface model.

The NIC does two things:

* **serializes** injections and deliveries — at most one message every
  LogGP ``g`` ns in each direction, modelling DMA-engine occupancy;
* **charges the host kernel** for packet processing when the node's
  :class:`~repro.kernel.config.NICCostModel` says so: receive
  processing becomes a transient CPU steal (interrupt + softirq) on
  the destination node, which is precisely how communication turns
  into kernel noise on commodity stacks.  Offloaded NICs
  (``kernel.nic is None``) deliver for free.
"""

from __future__ import annotations

from ..kernel.node import Node
from ..sim import Environment

__all__ = ["NIC"]

#: Observer source names for NIC-induced kernel activity.
RX_SOURCE = "nic-rx"


class NIC:
    """One node's network interface state."""

    def __init__(self, env: Environment, node: Node, gap_ns: int) -> None:
        if gap_ns < 0:
            raise ValueError("gap_ns must be >= 0")
        self.env = env
        self.node = node
        self.gap_ns = gap_ns
        self._tx_free_at = 0
        self._rx_free_at = 0
        #: Traffic counters (reported by the observer).
        self.tx_messages = 0
        self.rx_messages = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    # -- send path ----------------------------------------------------------
    def tx_ready_time(self, size_bytes: int) -> int:
        """Earliest injection instant respecting the ``g`` gap; books it."""
        now = self.env.now
        start = max(now, self._tx_free_at)
        self._tx_free_at = start + self.gap_ns
        self.tx_messages += 1
        self.tx_bytes += size_bytes
        return start

    def tx_host_cost(self) -> int:
        """Host CPU ns to post the send descriptor (0 when offloaded)."""
        nic_model = self.node.config.nic
        return nic_model.tx_overhead_ns if nic_model is not None else 0

    # -- receive path -----------------------------------------------------------
    def deliver(self, size_bytes: int) -> int:
        """Process an arriving message; returns handoff timestamp.

        Applies rx-gap serialization, then charges the host kernel for
        interrupt + softirq processing as a transient CPU steal.  The
        returned instant is when the payload is available to the
        message-matching layer.
        """
        now = self.env.now
        start = max(now, self._rx_free_at)
        self._rx_free_at = start + self.gap_ns
        self.rx_messages += 1
        self.rx_bytes += size_bytes
        nic_model = self.node.config.nic
        if nic_model is None:
            return start
        cost = nic_model.rx_cost(size_bytes)
        if self.node.isolate_noise:
            # Core specialization: the spare core does the protocol
            # work concurrently — delivery still takes the processing
            # time, but no application CPU is stolen.
            return start + cost
        # The steal is charged at the serialized start instant; if the
        # queue pushed `start` past `now`, the steal still begins at the
        # CPU's current time from its perspective (same instant in this
        # model since deliver() is invoked at arrival).
        done = self.node.cpu.steal_transient(cost, RX_SOURCE)
        return max(start, done)
