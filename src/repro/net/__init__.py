"""Interconnect substrate: LogGP costs, topologies, NICs, transport.

The network charges host CPUs for messaging work (LogGP ``o`` and NIC
packet processing), so communication itself generates kernel noise on
commodity stacks — one of the central observations the reproduction
targets.  Offloaded fabrics (``KernelConfig.nic is None``) keep the
host out of the data path.
"""

from .loggp import LogGPParams
from .message import Message
from .network import Network
from .nic import NIC, RX_SOURCE
from .topology import (FatTreeTopology, GraphTopology, HierarchicalTopology,
                       MachineShape, SwitchTopology, Topology, TorusTopology)

__all__ = [
    "LogGPParams", "Message", "Network", "NIC", "RX_SOURCE",
    "Topology", "SwitchTopology", "TorusTopology", "GraphTopology",
    "FatTreeTopology", "HierarchicalTopology", "MachineShape",
]
