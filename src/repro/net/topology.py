"""Interconnect topologies.

A topology maps a node pair to *extra* wire latency beyond the LogGP
``L`` (which covers a single hop / the common switch).  Three concrete
shapes:

* :class:`SwitchTopology` — one big crossbar: every pair is one hop.
* :class:`TorusTopology` — k-ary n-dimensional torus (Red Storm was a
  3D mesh/torus); extra latency grows with Manhattan hop distance.
* :class:`GraphTopology` — any :mod:`networkx` graph, for irregular
  or measured fabrics; shortest-path hop counts are cached.
"""

from __future__ import annotations

import typing as _t
from abc import ABC, abstractmethod
from functools import lru_cache

import networkx as nx

from ..errors import ConfigError

__all__ = ["Topology", "SwitchTopology", "TorusTopology", "GraphTopology"]


class Topology(ABC):
    """Maps node pairs to hop counts and extra latency."""

    def __init__(self, n_nodes: int, hop_latency_ns: int = 0) -> None:
        if n_nodes <= 0:
            raise ConfigError(f"n_nodes must be > 0, got {n_nodes}")
        if hop_latency_ns < 0:
            raise ConfigError("hop_latency_ns must be >= 0")
        self.n_nodes = n_nodes
        self.hop_latency_ns = hop_latency_ns

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigError(f"node {node} out of range [0, {self.n_nodes})")

    @abstractmethod
    def hops(self, a: int, b: int) -> int:
        """Number of network hops between nodes ``a`` and ``b``.

        Zero for ``a == b``; at least 1 otherwise.
        """

    def extra_latency(self, a: int, b: int) -> int:
        """Extra wire ns beyond LogGP ``L``: ``hop_latency * (hops-1)``."""
        h = self.hops(a, b)
        return self.hop_latency_ns * max(0, h - 1)

    @property
    def diameter_hops(self) -> int:
        """Maximum hop count over all pairs (brute force by default)."""
        return max(self.hops(0, b) for b in range(self.n_nodes))


class SwitchTopology(Topology):
    """Single crossbar switch: all distinct pairs are one hop apart."""

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return 0 if a == b else 1


class TorusTopology(Topology):
    """k-ary n-dimensional torus with dimension-ordered routing.

    ``dims=(4, 4, 8)`` builds a 128-node 3D torus.  Node ids map to
    coordinates in row-major order.
    """

    def __init__(self, dims: _t.Sequence[int], hop_latency_ns: int = 50) -> None:
        dims = tuple(int(d) for d in dims)
        if not dims or any(d <= 0 for d in dims):
            raise ConfigError(f"torus dims must be positive, got {dims}")
        n = 1
        for d in dims:
            n *= d
        super().__init__(n, hop_latency_ns)
        self.dims = dims

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Row-major coordinates of ``node``."""
        self._check(node)
        coords = []
        for d in reversed(self.dims):
            coords.append(node % d)
            node //= d
        return tuple(reversed(coords))

    def hops(self, a: int, b: int) -> int:
        ca, cb = self.coordinates(a), self.coordinates(b)
        total = 0
        for x, y, d in zip(ca, cb, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)  # wraparound links
        return total

    @property
    def diameter_hops(self) -> int:
        return sum(d // 2 for d in self.dims)


class GraphTopology(Topology):
    """Arbitrary fabric described by a networkx graph.

    Nodes must be labelled ``0 .. n-1``.  Hop counts are unweighted
    shortest paths, cached per source.
    """

    def __init__(self, graph: nx.Graph, hop_latency_ns: int = 50) -> None:
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise ConfigError("graph nodes must be labelled 0..n-1")
        if n > 1 and not nx.is_connected(graph):
            raise ConfigError("topology graph must be connected")
        super().__init__(n, hop_latency_ns)
        self.graph = graph
        self._lengths_from = lru_cache(maxsize=None)(
            lambda src: nx.single_source_shortest_path_length(self.graph, src))

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        return self._lengths_from(a)[b]

    @classmethod
    def fat_tree_like(cls, n_nodes: int, radix: int = 8,
                      hop_latency_ns: int = 50) -> "GraphTopology":
        """A two-level switch tree approximating a folded-Clos fabric.

        Leaf switches of ``radix`` nodes each, all leaf switches joined
        through one core: intra-leaf pairs are 2 hops, inter-leaf 4.
        Switch vertices are modelled implicitly by a small helper graph.
        """
        if n_nodes <= 0 or radix <= 0:
            raise ConfigError("n_nodes and radix must be > 0")
        g = nx.Graph()
        g.add_nodes_from(range(n_nodes))
        n_leaves = (n_nodes + radix - 1) // radix
        # Helper switch vertices live at ids >= n_nodes and are removed
        # from hop counts implicitly by path length through them.
        core = n_nodes + n_leaves
        for leaf in range(n_leaves):
            sw = n_nodes + leaf
            g.add_edge(sw, core)
            for port in range(radix):
                node = leaf * radix + port
                if node < n_nodes:
                    g.add_edge(node, sw)
        topo = cls.__new__(cls)
        Topology.__init__(topo, n_nodes, hop_latency_ns)
        topo.graph = g
        topo._lengths_from = lru_cache(maxsize=None)(
            lambda src: nx.single_source_shortest_path_length(g, src))
        return topo
