"""Interconnect topologies.

A topology maps a node pair to *extra* wire latency beyond the LogGP
``L`` (which covers a single hop / the common switch).  Concrete
shapes:

* :class:`SwitchTopology` — one big crossbar: every pair is one hop.
* :class:`TorusTopology` — k-ary n-dimensional torus (Red Storm was a
  3D mesh/torus); extra latency grows with Manhattan hop distance.
* :class:`GraphTopology` — any :mod:`networkx` graph, for irregular
  or measured fabrics; shortest-path hop counts are cached.
* :class:`FatTreeTopology` — the two-level folded-Clos approximation
  (a :class:`GraphTopology` with closed-form hop counts).
* :class:`HierarchicalTopology` — a :class:`MachineShape`-driven
  hierarchy (cores / nodes / switches / groups) with per-level extra
  latency and optional per-level per-byte cost.  This is the shape
  the extreme-scale experiments use: pair costs are closed-form, so
  it scales to O(100k) ranks with no graph search.

Pair lookups are precomputed: every topology lazily builds a pairwise
extra-latency matrix (up to :data:`EXTRA_MATRIX_MAX_NODES` nodes) so
the network pays a single array index per message instead of a Python
call chain, and ``diameter_hops`` is computed once and cached.
"""

from __future__ import annotations

import typing as _t
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache

import networkx as nx
import numpy as np

from ..errors import ConfigError

__all__ = [
    "Topology", "SwitchTopology", "TorusTopology", "GraphTopology",
    "FatTreeTopology", "MachineShape", "HierarchicalTopology",
    "EXTRA_MATRIX_MAX_NODES",
]

#: Largest machine for which the dense pairwise extra-latency matrix is
#: precomputed (an (n, n) int32 array: 64 MiB at 4096 nodes).  Above
#: this, per-pair lookups fall back to the closed-form/graph path and
#: the bulk engine uses the vectorized ``extra_cost_vec`` instead.
EXTRA_MATRIX_MAX_NODES = 4096

#: Generic (pure-Python / BFS) matrix builders stop earlier: an O(n^2)
#: fallback at 4096 nodes would cost tens of seconds per machine build.
_GENERIC_MATRIX_MAX_NODES = 1024


class Topology(ABC):
    """Maps node pairs to hop counts and extra latency."""

    def __init__(self, n_nodes: int, hop_latency_ns: int = 0) -> None:
        if n_nodes <= 0:
            raise ConfigError(f"n_nodes must be > 0, got {n_nodes}")
        if hop_latency_ns < 0:
            raise ConfigError("hop_latency_ns must be >= 0")
        self.n_nodes = n_nodes
        self.hop_latency_ns = hop_latency_ns
        #: Lazily cached pair matrix / diameter (see accessors below).
        self._extra_matrix: np.ndarray | None = None
        self._extra_matrix_ready = False
        self._diameter: int | None = None

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigError(f"node {node} out of range [0, {self.n_nodes})")

    @abstractmethod
    def hops(self, a: int, b: int) -> int:
        """Number of network hops between nodes ``a`` and ``b``.

        Zero for ``a == b``; at least 1 otherwise.
        """

    def extra_latency(self, a: int, b: int) -> int:
        """Extra wire ns beyond LogGP ``L``: ``hop_latency * (hops-1)``."""
        h = self.hops(a, b)
        return self.hop_latency_ns * max(0, h - 1)

    def extra_cost(self, a: int, b: int, size_bytes: int = 0) -> int:
        """Total extra wire ns for one message (latency + any per-byte
        term).  The base model has no per-byte term; hierarchical
        shapes may add one per level."""
        del size_bytes
        return self.extra_latency(a, b)

    @property
    def size_independent_extra(self) -> bool:
        """True when ``extra_cost`` ignores message size (lets the
        network use the precomputed latency matrix for every message)."""
        return True

    @property
    def zero_extra(self) -> bool:
        """True when every pair's extra latency is exactly zero."""
        return self.hop_latency_ns == 0

    # -- precomputed pair lookups ------------------------------------------
    def extra_latency_matrix(self) -> np.ndarray | None:
        """The dense ``(n, n)`` extra-latency matrix, built lazily.

        ``None`` when the machine is too large for a dense matrix or
        the extra cost depends on message size; callers must then fall
        back to :meth:`extra_cost`.  Built at most once per instance.
        """
        if not self._extra_matrix_ready:
            self._extra_matrix_ready = True
            if (self.n_nodes <= self._matrix_limit()
                    and self.size_independent_extra and not self.zero_extra):
                self._extra_matrix = self._build_extra_matrix()
        return self._extra_matrix

    def _matrix_limit(self) -> int:
        """Node-count cap for this shape's matrix builder (generic
        builders are O(n^2) Python, so they stop earlier than the
        vectorized closed forms)."""
        return _GENERIC_MATRIX_MAX_NODES

    def _build_extra_matrix(self) -> np.ndarray:
        n = self.n_nodes
        mat = np.zeros((n, n), dtype=np.int32)
        for a in range(n):
            row = mat[a]
            for b in range(n):
                if a != b:
                    row[b] = self.extra_latency(a, b)
        return mat

    def extra_cost_vec(self, src: np.ndarray, dst: np.ndarray,
                       size_bytes: int = 0) -> np.ndarray:
        """Vectorized :meth:`extra_cost` over parallel src/dst arrays.

        The generic implementation is a Python loop (adequate for the
        small machines where it is reached); the shipped shapes
        override it with closed forms so the bulk fast path stays
        vectorized at 100k ranks.
        """
        n = len(src)
        return np.fromiter(
            (self.extra_cost(int(a), int(b), size_bytes)
             for a, b in zip(src, dst)),
            dtype=np.int64, count=n)

    @property
    def diameter_hops(self) -> int:
        """Maximum hop count over all pairs (computed once, cached)."""
        if self._diameter is None:
            self._diameter = self._compute_diameter()
        return self._diameter

    def _compute_diameter(self) -> int:
        # Brute force from node 0 (all shipped shapes are
        # vertex-transitive from node 0's perspective).
        return max(self.hops(0, b) for b in range(self.n_nodes))


class SwitchTopology(Topology):
    """Single crossbar switch: all distinct pairs are one hop apart."""

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return 0 if a == b else 1

    @property
    def zero_extra(self) -> bool:
        return True  # hops <= 1 means extra is 0 at any hop latency

    def extra_cost_vec(self, src: np.ndarray, dst: np.ndarray,
                       size_bytes: int = 0) -> np.ndarray:
        return np.zeros(len(src), dtype=np.int64)

    def _compute_diameter(self) -> int:
        return 0 if self.n_nodes == 1 else 1


class TorusTopology(Topology):
    """k-ary n-dimensional torus with dimension-ordered routing.

    ``dims=(4, 4, 8)`` builds a 128-node 3D torus.  Node ids map to
    coordinates in row-major order.
    """

    def __init__(self, dims: _t.Sequence[int], hop_latency_ns: int = 50) -> None:
        dims = tuple(int(d) for d in dims)
        if not dims or any(d <= 0 for d in dims):
            raise ConfigError(f"torus dims must be positive, got {dims}")
        n = 1
        for d in dims:
            n *= d
        super().__init__(n, hop_latency_ns)
        self.dims = dims

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Row-major coordinates of ``node``."""
        self._check(node)
        coords = []
        for d in reversed(self.dims):
            coords.append(node % d)
            node //= d
        return tuple(reversed(coords))

    def _coords_vec(self, nodes: np.ndarray) -> list[np.ndarray]:
        coords: list[np.ndarray] = []
        rest = nodes.astype(np.int64)
        for d in reversed(self.dims):
            coords.append(rest % d)
            rest = rest // d
        coords.reverse()
        return coords

    def hops(self, a: int, b: int) -> int:
        ca, cb = self.coordinates(a), self.coordinates(b)
        total = 0
        for x, y, d in zip(ca, cb, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)  # wraparound links
        return total

    def _hops_vec(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        total = np.zeros(len(src), dtype=np.int64)
        for cs, cd, d in zip(self._coords_vec(src), self._coords_vec(dst),
                             self.dims):
            delta = np.abs(cs - cd)
            total += np.minimum(delta, d - delta)
        return total

    def extra_cost_vec(self, src: np.ndarray, dst: np.ndarray,
                       size_bytes: int = 0) -> np.ndarray:
        h = self._hops_vec(np.asarray(src), np.asarray(dst))
        return self.hop_latency_ns * np.maximum(0, h - 1)

    def _matrix_limit(self) -> int:
        return EXTRA_MATRIX_MAX_NODES

    def _build_extra_matrix(self) -> np.ndarray:
        nodes = np.arange(self.n_nodes)
        hops = np.zeros((self.n_nodes, self.n_nodes), dtype=np.int32)
        for c, d in zip(self._coords_vec(nodes), self.dims):
            delta = np.abs(c[:, None] - c[None, :])
            hops += np.minimum(delta, d - delta).astype(np.int32)
        return (self.hop_latency_ns
                * np.maximum(0, hops - 1)).astype(np.int32)

    def _compute_diameter(self) -> int:
        return sum(d // 2 for d in self.dims)


class GraphTopology(Topology):
    """Arbitrary fabric described by a networkx graph.

    Nodes must be labelled ``0 .. n-1``.  Hop counts are unweighted
    shortest paths, cached per source.
    """

    def __init__(self, graph: nx.Graph, hop_latency_ns: int = 50) -> None:
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise ConfigError("graph nodes must be labelled 0..n-1")
        if n > 1 and not nx.is_connected(graph):
            raise ConfigError("topology graph must be connected")
        super().__init__(n, hop_latency_ns)
        self.graph = graph
        self._lengths_from = lru_cache(maxsize=None)(
            lambda src: nx.single_source_shortest_path_length(self.graph, src))

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        return self._lengths_from(a)[b]

    @classmethod
    def fat_tree_like(cls, n_nodes: int, radix: int = 8,
                      hop_latency_ns: int = 50) -> "FatTreeTopology":
        """A two-level switch tree approximating a folded-Clos fabric.

        Leaf switches of ``radix`` nodes each, all leaf switches joined
        through one core: intra-leaf pairs are 2 hops, inter-leaf 4.
        Switch vertices are modelled implicitly by a small helper graph.
        """
        return FatTreeTopology(n_nodes, radix=radix,
                               hop_latency_ns=hop_latency_ns)


class FatTreeTopology(GraphTopology):
    """The two-level folded-Clos fabric with closed-form pair costs.

    Identical connectivity to the graph :meth:`GraphTopology.
    fat_tree_like` builds (and it keeps the helper graph for
    inspection), but ``hops`` / ``extra_cost_vec`` are O(1) closed
    forms — intra-leaf pairs are 2 hops, inter-leaf 4 — so large
    machines never run a graph search.
    """

    def __init__(self, n_nodes: int, radix: int = 8,
                 hop_latency_ns: int = 50) -> None:
        if n_nodes <= 0 or radix <= 0:
            raise ConfigError("n_nodes and radix must be > 0")
        g = nx.Graph()
        g.add_nodes_from(range(n_nodes))
        n_leaves = (n_nodes + radix - 1) // radix
        # Helper switch vertices live at ids >= n_nodes and are removed
        # from hop counts implicitly by path length through them.
        core = n_nodes + n_leaves
        for leaf in range(n_leaves):
            sw = n_nodes + leaf
            g.add_edge(sw, core)
            for port in range(radix):
                node = leaf * radix + port
                if node < n_nodes:
                    g.add_edge(node, sw)
        # GraphTopology.__init__ would reject the helper vertices'
        # labels, so initialize the base Topology directly.
        Topology.__init__(self, n_nodes, hop_latency_ns)
        self.graph = g
        self._lengths_from = lru_cache(maxsize=None)(
            lambda src: nx.single_source_shortest_path_length(g, src))
        self.radix = int(radix)
        self.n_leaves = n_leaves

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        if self.n_leaves == 1 or a // self.radix == b // self.radix:
            return 2
        return 4

    def extra_cost_vec(self, src: np.ndarray, dst: np.ndarray,
                       size_bytes: int = 0) -> np.ndarray:
        src = np.asarray(src)
        dst = np.asarray(dst)
        same_leaf = (src // self.radix) == (dst // self.radix)
        extra = np.where(same_leaf, self.hop_latency_ns,
                         3 * self.hop_latency_ns).astype(np.int64)
        return np.where(src == dst, 0, extra)

    def _matrix_limit(self) -> int:
        return EXTRA_MATRIX_MAX_NODES

    def _build_extra_matrix(self) -> np.ndarray:
        leaf = np.arange(self.n_nodes) // self.radix
        same_leaf = leaf[:, None] == leaf[None, :]
        mat = np.where(same_leaf, self.hop_latency_ns,
                       3 * self.hop_latency_ns).astype(np.int32)
        np.fill_diagonal(mat, 0)
        return mat

    def _compute_diameter(self) -> int:
        if self.n_nodes == 1:
            return 0
        return 2 if self.n_leaves == 1 else 4


# -- machine shapes ----------------------------------------------------------

#: Hop counts reported per hierarchy level (same rank, same node, same
#: switch, same group, cross-group) — diagnostics only; latency comes
#: from the shape's per-level tables.
_LEVEL_HOPS = (0, 1, 2, 4, 6)


@dataclass(frozen=True)
class MachineShape:
    """The physical packaging hierarchy of a large machine.

    One simulated node hosts one rank; ``cores_per_node`` ranks share a
    physical node, ``nodes_per_switch`` nodes share a leaf switch, and
    ``switches_per_group`` switches form a group (a fat-tree pod or a
    dragonfly group).  Pair communication cost is classified by the
    *lowest common level* of the two ranks, with per-level extra
    latency beyond the base LogGP ``L`` and an optional per-level
    per-byte term beyond ``G``:

    ``level_latency_ns[k]`` applies to pairs whose lowest common level
    is ``k+1`` (same node, same switch, same group, cross-group).

    Spec-string form (CLI / config): ``"CxNxS[@kind]"``, e.g.
    ``"1x32x8@fat-tree"`` — cores per node x nodes per switch x
    switches per group.
    """

    cores_per_node: int = 1
    nodes_per_switch: int = 32
    switches_per_group: int = 8
    kind: str = "fat-tree"
    #: Extra ns beyond LogGP L per level: (node, switch, group, global).
    level_latency_ns: tuple[int, int, int, int] = (0, 2_000, 5_000, 10_000)
    #: Extra ns/byte beyond LogGP G per level, same order.
    level_G_ns_per_byte: tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)

    _KINDS: _t.ClassVar[tuple[str, ...]] = ("fat-tree", "dragonfly")

    def __post_init__(self) -> None:
        for fname in ("cores_per_node", "nodes_per_switch",
                      "switches_per_group"):
            if getattr(self, fname) <= 0:
                raise ConfigError(f"MachineShape.{fname} must be > 0")
        if self.kind not in self._KINDS:
            raise ConfigError(
                f"shape kind must be one of {self._KINDS}, got {self.kind!r}")
        if len(self.level_latency_ns) != 4 or len(self.level_G_ns_per_byte) != 4:
            raise ConfigError("shape level tables need exactly 4 entries")
        if any(v < 0 for v in self.level_latency_ns):
            raise ConfigError("level_latency_ns entries must be >= 0")
        if any(v < 0 for v in self.level_G_ns_per_byte):
            raise ConfigError("level_G_ns_per_byte entries must be >= 0")

    # -- constructors ------------------------------------------------------
    @classmethod
    def fat_tree(cls, cores_per_node: int = 1, nodes_per_switch: int = 32,
                 switches_per_group: int = 8) -> "MachineShape":
        """A folded-Clos machine: cost climbs steeply with tree level."""
        return cls(cores_per_node, nodes_per_switch, switches_per_group,
                   kind="fat-tree",
                   level_latency_ns=(0, 2_000, 5_000, 10_000))

    @classmethod
    def dragonfly(cls, cores_per_node: int = 1, nodes_per_switch: int = 32,
                  switches_per_group: int = 8) -> "MachineShape":
        """All-to-all group wiring: the global hop is one long link."""
        return cls(cores_per_node, nodes_per_switch, switches_per_group,
                   kind="dragonfly",
                   level_latency_ns=(0, 2_000, 3_000, 8_000))

    @classmethod
    def parse(cls, spec: "str | MachineShape") -> "MachineShape":
        """Parse a ``"CxNxS[@kind]"`` spec string (idempotent)."""
        if isinstance(spec, MachineShape):
            return spec
        text = spec.strip()
        kind = "fat-tree"
        if "@" in text:
            text, kind = text.split("@", 1)
            kind = kind.strip().lower()
        parts = text.split("x")
        if len(parts) != 3:
            raise ConfigError(
                f"shape spec must be 'CxNxS[@kind]', got {spec!r}")
        try:
            c, n, s = (int(p) for p in parts)
        except ValueError:
            raise ConfigError(f"non-integer field in shape spec {spec!r}") from None
        if kind == "fat-tree":
            return cls.fat_tree(c, n, s)
        if kind == "dragonfly":
            return cls.dragonfly(c, n, s)
        raise ConfigError(
            f"shape kind must be one of {cls._KINDS}, got {kind!r}")

    # -- derived sizes ------------------------------------------------------
    @property
    def ranks_per_node(self) -> int:
        return self.cores_per_node

    @property
    def ranks_per_switch(self) -> int:
        return self.cores_per_node * self.nodes_per_switch

    @property
    def ranks_per_group(self) -> int:
        return self.ranks_per_switch * self.switches_per_group

    def collective_group_size(self) -> int:
        """Rank-block size the two-level collective algorithms use.

        Multi-core nodes group by physical node (chainermn's intra-/
        inter-node communicator split); single-core nodes group by
        leaf switch so the hierarchy is still exploitable.
        """
        if self.cores_per_node > 1:
            return self.ranks_per_node
        return self.ranks_per_switch

    def level_of(self, a: int, b: int) -> int:
        """Lowest common packaging level of ranks ``a`` and ``b``:
        0 same rank, 1 same node, 2 same switch, 3 same group,
        4 cross-group."""
        if a == b:
            return 0
        if a // self.ranks_per_node == b // self.ranks_per_node:
            return 1
        if a // self.ranks_per_switch == b // self.ranks_per_switch:
            return 2
        if a // self.ranks_per_group == b // self.ranks_per_group:
            return 3
        return 4

    def level_of_vec(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        level = np.full(len(src), 4, dtype=np.int64)
        level[src // self.ranks_per_group == dst // self.ranks_per_group] = 3
        level[src // self.ranks_per_switch == dst // self.ranks_per_switch] = 2
        level[src // self.ranks_per_node == dst // self.ranks_per_node] = 1
        level[src == dst] = 0
        return level

    def describe(self) -> str:
        return (f"{self.cores_per_node}x{self.nodes_per_switch}"
                f"x{self.switches_per_group}@{self.kind}")


class HierarchicalTopology(Topology):
    """A :class:`MachineShape`-driven fabric with per-level pair costs.

    ``extra_latency`` comes straight from the shape's per-level table
    (not from hop counts), and the optional per-level per-byte term
    rides on :meth:`extra_cost`.  All lookups are closed-form, so this
    is the topology of choice for O(10k-100k)-rank machines.
    """

    def __init__(self, n_nodes: int, shape: MachineShape | str) -> None:
        super().__init__(n_nodes, hop_latency_ns=0)
        self.shape = MachineShape.parse(shape)
        self._lat = tuple(int(v) for v in self.shape.level_latency_ns)
        self._gpb = tuple(float(v) for v in self.shape.level_G_ns_per_byte)

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return _LEVEL_HOPS[self.shape.level_of(a, b)]

    def extra_latency(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        level = self.shape.level_of(a, b)
        return 0 if level == 0 else self._lat[level - 1]

    def extra_cost(self, a: int, b: int, size_bytes: int = 0) -> int:
        level = self.shape.level_of(a, b)
        if level == 0:
            return 0
        extra = self._lat[level - 1]
        gpb = self._gpb[level - 1]
        if gpb and size_bytes:
            extra += round(gpb * size_bytes)
        return extra

    @property
    def size_independent_extra(self) -> bool:
        return not any(self._gpb)

    @property
    def zero_extra(self) -> bool:
        return not any(self._lat) and not any(self._gpb)

    def extra_cost_vec(self, src: np.ndarray, dst: np.ndarray,
                       size_bytes: int = 0) -> np.ndarray:
        level = self.shape.level_of_vec(src, dst)
        lat = np.array((0,) + self._lat, dtype=np.int64)
        extra = lat[level]
        if size_bytes and any(self._gpb):
            per_byte = np.array(
                [0] + [round(g * size_bytes) for g in self._gpb],
                dtype=np.int64)
            extra = extra + per_byte[level]
        return extra

    def _matrix_limit(self) -> int:
        return EXTRA_MATRIX_MAX_NODES

    def _build_extra_matrix(self) -> np.ndarray:
        nodes = np.arange(self.n_nodes, dtype=np.int64)
        src = np.repeat(nodes, self.n_nodes)
        dst = np.tile(nodes, self.n_nodes)
        return self.extra_cost_vec(src, dst).reshape(
            self.n_nodes, self.n_nodes).astype(np.int32)

    def _compute_diameter(self) -> int:
        last = self.n_nodes - 1
        return _LEVEL_HOPS[self.shape.level_of(0, last)] if last else 0
