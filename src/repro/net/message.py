"""The wire message unit exchanged between nodes."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field
from itertools import count

__all__ = ["Message"]

_SEQ = count()


@dataclass(slots=True)
class Message:
    """One point-to-point message.

    Attributes
    ----------
    src, dst:
        Sender and receiver node ids.
    tag:
        MPI-style match tag.
    size:
        Payload size in bytes (drives wire and NIC processing time).
    comm_id:
        Id of the communicator the message belongs to (matching scope).
    src_rank:
        Sender's rank *within that communicator* (what receives match
        on; ``src`` is the physical node id the network routes by).
    payload:
        Opaque application data carried along (not copied or sized —
        ``size`` is authoritative for costs, mirroring how a simulator
        separates *modelled* bytes from *carried* Python objects).
    seq:
        Global monotonically increasing id — used to keep matching
        deterministic and for trace correlation.
    sent_at:
        Timestamp the sender injected the message (set by the network).
    delivered_at:
        Timestamp the receiver's kernel finished rx processing (set by
        the network).
    kind:
        Wire-message class: ``"data"`` (application traffic, the
        default) or ``"ack"`` (reliable-transport control traffic; only
        present when a fault plan enables the protocol).
    proto_id:
        Reliable-transport sequence number within the ``(src, dst)``
        channel (``-1`` when the protocol is off).
    attempt:
        Retransmission attempt this copy belongs to (0 = original).
    """

    src: int
    dst: int
    tag: int
    size: int
    comm_id: int = 0
    src_rank: int = -1
    payload: _t.Any = None
    seq: int = field(default_factory=lambda: next(_SEQ))
    sent_at: int = -1
    delivered_at: int = -1
    kind: str = "data"
    proto_id: int = -1
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"message size must be >= 0, got {self.size}")

    def match_key(self) -> tuple[int, int, int]:
        """Key the receive-matching engine uses: (comm, src_rank, tag)."""
        return (self.comm_id, self.src_rank, self.tag)
