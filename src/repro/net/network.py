"""The machine-wide network: message transport between nodes.

Message timeline (``Network.inject`` is called by the MPI layer from
the sender's process, *after* the sender has paid its LogGP ``o`` as
CPU work):

1. **injection** — sender NIC serializes (gap ``g``) and the message
   enters the wire;
2. **wire** — ``L + topology extra + G*size`` ns pass;
3. **arrival** — receiver NIC serializes, then receive processing
   steals receiver CPU per the kernel's NIC cost model (transient
   steal → observer record → any in-progress compute phase stretches);
4. **handoff** — the delivery callback (the MPI matching engine) gets
   the message.

The network is connectionless and enforces FIFO delivery per
(src, dst) pair — a later, smaller message never overtakes an earlier,
larger one, and two messages on one channel never even share an
arrival timestamp (real fabrics order packets within a virtual
channel, and MPI's non-overtaking guarantee depends on it).  It is
perfectly reliable by default; an optional
:class:`~repro.faults.FaultPlan` makes the wire lossy — messages can
be dropped or duplicated, links transiently degraded, and crashed
nodes unreachable — with recovery delegated to the reliable-transport
layer above (:mod:`repro.faults.protocol`).
"""

from __future__ import annotations

import typing as _t
from bisect import bisect_left

from ..errors import ConfigError
from ..kernel.node import Node
from ..sim import Environment
from ..sim.rng import derive_seed
from .loggp import LogGPParams
from .message import Message
from .nic import NIC
from .topology import SwitchTopology, Topology

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults import FaultPlan

__all__ = ["Network"]


class Network:
    """Transport fabric connecting a machine's nodes.

    Parameters
    ----------
    env:
        Simulation environment.
    nodes:
        The machine's nodes, indexed by node id.
    params:
        LogGP cost parameters.
    topology:
        Fabric shape (defaults to a single crossbar switch).
    """

    def __init__(self, env: Environment, nodes: _t.Sequence[Node],
                 params: LogGPParams | None = None,
                 topology: Topology | None = None,
                 seed: int = 0,
                 faults: "FaultPlan | None" = None,
                 *, metrics: bool = False, tracer: _t.Any = None) -> None:
        self.env = env
        self.nodes = list(nodes)
        if not self.nodes:
            raise ConfigError("network needs at least one node")
        self.params = params or LogGPParams()
        self.topology = topology or SwitchTopology(len(self.nodes))
        if self.topology.n_nodes != len(self.nodes):
            raise ConfigError(
                f"topology is sized for {self.topology.n_nodes} nodes but the "
                f"machine has {len(self.nodes)}")
        self.seed = seed
        #: Precomputed pair-cost lookup: ``inject`` runs once per
        #: message, so the per-pair extra latency is resolved here to a
        #: dense matrix index (or skipped entirely on zero-extra
        #: fabrics) instead of a Python call chain per message.
        self._zero_extra = self.topology.zero_extra
        self._extra_mat = (None if self._zero_extra
                           else self.topology.extra_latency_matrix())
        #: Wire-level fault policy (``None`` = perfectly reliable; the
        #: zero-fault fast path must stay bit-identical, so every fault
        #: check below is gated on this being set).
        self.faults = faults if faults is not None and faults.injects_faults \
            else None
        self.nics = [NIC(env, node, self.params.g) for node in self.nodes]
        for node, nic in zip(self.nodes, self.nics):
            node.nic = nic
        #: Delivery callback installed by the message-matching layer:
        #: ``f(message)`` invoked at handoff time.
        self._deliver_cb: _t.Callable[[Message], None] | None = None
        #: Totals for reports.
        self.messages_transferred = 0
        self.bytes_transferred = 0
        #: Fault counters (all zero on a reliable fabric).
        self.messages_dropped = 0
        self.duplicates_injected = 0
        #: Drops charged to the destination node (unreachable receiver
        #: diagnostics for the E15 report).
        self.drops_by_node: dict[int, int] = {}
        #: Per-network injection counter (jitter stream index; the
        #: global Message.seq would leak state across machines built in
        #: the same process and break run-for-run determinism).
        self._injections = 0
        #: FIFO channel state: (src, dst) -> latest booked arrival time.
        self._channel_clear_at: dict[tuple[int, int], int] = {}
        #: Telemetry (all gated on ``metrics`` / ``tracer`` so the
        #: default fabric pays nothing; see :mod:`repro.obs`).  Spans
        #: (``net``) and flow arrows (``net.flow``) gate independently.
        self._metrics = bool(metrics)
        self._tracer = tracer
        self._trace_spans = tracer is not None and tracer.enabled("net")
        self._trace_flows = (tracer is not None
                             and tracer.enabled("net.flow"))
        self._inflight = 0
        #: High-water mark of messages between injection and handoff.
        self.inflight_peak = 0
        #: Per-channel pending-arrival counts and their high-water mark.
        self._channel_pending: dict[tuple[int, int], int] = {}
        self.channel_backlog_peak = 0
        #: Inline delivery-latency bucket counters (bounds from
        #: :data:`repro.obs.metrics.DELIVERY_LATENCY_BOUNDS`, kept as a
        #: literal here so the network never imports the obs package).
        self._latency_bounds = (1_000, 10_000, 100_000, 1_000_000,
                                10_000_000, 100_000_000)
        self.latency_bucket_counts = [0] * (len(self._latency_bounds) + 1)
        self.latency_total_ns = 0

    # -- wiring ------------------------------------------------------------
    def on_deliver(self, callback: _t.Callable[[Message], None]) -> None:
        """Install the handoff callback (one consumer: the MPI layer)."""
        self._deliver_cb = callback

    # -- data path -----------------------------------------------------------
    def send_overhead_work(self, src: int) -> int:
        """Sender-side CPU work per send: LogGP ``o`` + NIC descriptor cost."""
        return self.params.o + self.nics[src].tx_host_cost()

    def recv_overhead_work(self) -> int:
        """Receiver-side CPU work per completed receive: LogGP ``o``."""
        return self.params.o

    def inject(self, msg: Message) -> None:
        """Put ``msg`` on the wire now (sender ``o`` already paid)."""
        if self._deliver_cb is None:
            raise ConfigError("network has no delivery callback installed")
        if not 0 <= msg.dst < len(self.nodes):
            raise ConfigError(f"message dst {msg.dst} out of range")
        if not 0 <= msg.src < len(self.nodes):
            raise ConfigError(f"message src {msg.src} out of range")
        msg.sent_at = self.env.now
        departure = self.nics[msg.src].tx_ready_time(msg.size)
        if self._zero_extra:
            extra = 0
        elif self._extra_mat is not None:
            extra = int(self._extra_mat[msg.src, msg.dst])
        else:
            extra = self.topology.extra_cost(msg.src, msg.dst, msg.size)
        wire = self.params.wire_time(msg.size, extra)
        self._injections += 1
        if self.params.jitter_ns:
            # Deterministic per-message jitter: same seed, same run.
            wire += derive_seed(self.seed, f"jitter:{self._injections}") % (
                self.params.jitter_ns + 1)

        faults = self.faults
        duplicate = False
        if faults is not None:
            now = self.env.now
            # A crashed endpoint silently eats the message: the sender
            # has already paid tx, recovery is the retry protocol's job.
            if (faults.node_crashed(msg.src, now)
                    or faults.node_crashed(msg.dst, now)):
                self._drop(msg)
                return
            # Stable per-transmission label: protocol id + attempt (a
            # retransmission gets a fresh coin flip, a rerun of the
            # same config gets the same flips; Message.seq would leak
            # the process-global counter into the decision).
            uid = f"{msg.kind}/{msg.proto_id}/{msg.attempt}"
            if faults.drop_message(msg.src, msg.dst, uid):
                self._drop(msg)
                return
            factor = faults.latency_factor(msg.src, msg.dst, now)
            if factor != 1.0:
                wire = round(wire * factor)
            duplicate = faults.duplicate_message(msg.src, msg.dst, uid)

        self._schedule_arrival(msg, departure + wire)
        if duplicate:
            # The ghost copy trails the original by one serialization
            # slot (a retransmit race in a real fabric); the strict
            # per-channel ordering in _schedule_arrival sequences it.
            self.duplicates_injected += 1
            self._schedule_arrival(msg, departure + wire + self.params.g)

    def _schedule_arrival(self, msg: Message, arrival: int) -> None:
        """Book ``msg`` onto its channel and schedule the arrival event.

        FIFO per channel, strictly: a message never arrives before —
        or at the same instant as — an earlier message on the same
        (src, dst) pair.  Equal-timestamp arrivals would otherwise be
        ordered only by the event-heap tiebreak, which nothing in the
        delivery path is entitled to rely on.
        """
        key = (msg.src, msg.dst)
        prev = self._channel_clear_at.get(key)
        if prev is not None and arrival <= prev:
            arrival = prev + 1
        self._channel_clear_at[key] = arrival
        if self._metrics:
            self._inflight += 1
            if self._inflight > self.inflight_peak:
                self.inflight_peak = self._inflight
            backlog = self._channel_pending.get(key, 0) + 1
            self._channel_pending[key] = backlog
            if backlog > self.channel_backlog_peak:
                self.channel_backlog_peak = backlog
        ev = self.env.timeout(arrival - self.env.now, msg)
        ev.callbacks.append(self._on_arrival)

    def _drop(self, msg: Message) -> None:
        self.messages_dropped += 1
        self.drops_by_node[msg.dst] = self.drops_by_node.get(msg.dst, 0) + 1

    def _on_arrival(self, event) -> None:
        msg: Message = event.value
        if self._metrics:
            key = (msg.src, msg.dst)
            self._channel_pending[key] -= 1
        handoff_at = self.nics[msg.dst].deliver(msg.size)
        if handoff_at <= self.env.now:
            self._handoff(msg)
        else:
            ev = self.env.timeout(handoff_at - self.env.now, msg)
            ev.callbacks.append(lambda e: self._handoff(e.value))

    def _handoff(self, msg: Message) -> None:
        msg.delivered_at = self.env.now
        self.messages_transferred += 1
        self.bytes_transferred += msg.size
        if self._metrics:
            self._inflight -= 1
            latency = msg.delivered_at - msg.sent_at
            self.latency_total_ns += latency
            # bisect_left(bounds, x) is the first i with x <= bounds[i]
            # (== len(bounds) -> the +Inf overflow slot), in C.
            self.latency_bucket_counts[
                bisect_left(self._latency_bounds, latency)] += 1
        if self._trace_spans:
            # Static span name: Perfetto aggregates all deliveries into
            # one row per dst node; src/size live in args.  This runs
            # once per message, so it allocates the bare minimum: a
            # single flat args tuple, no f-string, no dict.
            self._tracer.complete(
                "net", "msg", msg.sent_at,
                msg.delivered_at - msg.sent_at, tid=msg.dst,
                args=("src", msg.src, "size", msg.size, "kind", msg.kind))
        if self._trace_flows:
            # One arrow per handoff, sender track -> receiver track —
            # deliberately *not* keyed on Message.seq: a duplicated
            # wire copy hands the same Message off twice, and each
            # handoff needs a unique arrow.  The finish binds to the
            # end of the enclosing delivery span (bp:"e"), so in
            # Perfetto the arrow lands on the "msg" slice emitted just
            # above.
            fid = self._tracer.next_flow_id()
            self._tracer.flow_start("net.flow", "msg", msg.sent_at, fid,
                                    tid=msg.src)
            self._tracer.flow_finish("net.flow", "msg", msg.delivered_at,
                                     fid, tid=msg.dst)
        self._deliver_cb(msg)  # type: ignore[misc]
