"""LogGP network cost parameters.

The LogGP model (Alexandrov et al.) describes a message-passing network
with five parameters; we use four (P is the machine size):

* ``L``  — end-to-end wire latency for the first byte, ns.
* ``o``  — per-message CPU overhead at sender and receiver, ns.  This
  is *host CPU work*, so in this simulator it is executed on the node
  CPU and therefore inflated by kernel noise — the coupling between
  messaging and kernel activity the paper's observer exists to expose.
* ``g``  — minimum gap between consecutive message injections at one
  NIC (serialization), ns.
* ``G``  — gap per byte (inverse bandwidth), ns/byte; may be
  fractional.
* ``jitter_ns`` — maximum per-message wire-latency jitter (uniform in
  ``[0, jitter_ns]``, drawn deterministically per message).  Models
  adaptive routing and switch-arbitration variance; zero by default so
  quiet machines stay perfectly deterministic.

Presets approximate the interconnect classes of 2007-era capability
and commodity machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.timebase import MICROSECOND

__all__ = ["LogGPParams"]


@dataclass(frozen=True, slots=True)
class LogGPParams:
    """The four LogGP cost parameters (see module docstring)."""

    L: int = 5 * MICROSECOND
    o: int = 1 * MICROSECOND
    g: int = 300
    G: float = 0.5
    jitter_ns: int = 0

    def __post_init__(self) -> None:
        if (self.L < 0 or self.o < 0 or self.g < 0 or self.G < 0
                or self.jitter_ns < 0):
            raise ConfigError("LogGP parameters must all be >= 0")

    # -- derived costs ------------------------------------------------------
    def wire_time(self, size_bytes: int, extra_latency: int = 0) -> int:
        """Wire ns from injection to arrival: ``L + extra + G*size``."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        if extra_latency < 0:
            raise ValueError("extra_latency must be >= 0")
        return self.L + extra_latency + round(self.G * size_bytes)

    def ping_pong_estimate(self, size_bytes: int) -> int:
        """Half round-trip estimate (sender o + wire + receiver o)."""
        return 2 * self.o + self.wire_time(size_bytes)

    # -- presets ----------------------------------------------------------------
    @classmethod
    def seastar(cls) -> "LogGPParams":
        """Red Storm SeaStar-class mesh NIC: low latency, high bandwidth."""
        return cls(L=2 * MICROSECOND, o=500, g=100, G=0.5)

    @classmethod
    def infiniband(cls) -> "LogGPParams":
        """SDR InfiniBand-class commodity fabric."""
        return cls(L=5 * MICROSECOND, o=1 * MICROSECOND, g=300, G=1.0)

    @classmethod
    def gige(cls) -> "LogGPParams":
        """Gigabit Ethernet cluster: high latency, host-driven."""
        return cls(L=30 * MICROSECOND, o=5 * MICROSECOND, g=1 * MICROSECOND, G=8.0)

    @classmethod
    def preset(cls, name: str) -> "LogGPParams":
        """Look a preset up by name."""
        presets = {"seastar": cls.seastar, "infiniband": cls.infiniband,
                   "gige": cls.gige}
        if name not in presets:
            raise ConfigError(
                f"unknown network preset {name!r}; choose from {sorted(presets)}")
        return presets[name]()
