"""Result containers for experiment runs."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from ..analysis.slowdown import SlowdownResult
from ..analysis.stats import SeriesStats, summarize_series

__all__ = ["RunResult", "ComparisonResult"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one application run on one machine configuration."""

    app: str
    n_nodes: int
    pattern: str
    seed: int
    makespan_ns: int
    #: (ranks, iterations) wall time per iteration.
    iteration_durations_ns: np.ndarray
    injected_utilization: float
    events_processed: int
    #: Free-form extras (workload params, observer summaries).
    meta: dict[str, _t.Any] = field(default_factory=dict)

    @property
    def mean_iteration_ns(self) -> float:
        return float(self.iteration_durations_ns.mean())

    @property
    def max_iteration_ns(self) -> int:
        return int(self.iteration_durations_ns.max())

    def iteration_stats(self) -> SeriesStats:
        """Stats over per-iteration *completion spans* (max across ranks)."""
        spans = self.iteration_durations_ns.max(axis=0)
        return summarize_series(spans)

    def as_dict(self) -> dict[str, _t.Any]:
        return {"app": self.app, "nodes": self.n_nodes,
                "pattern": self.pattern, "seed": self.seed,
                "makespan_ns": self.makespan_ns,
                "mean_iteration_ns": self.mean_iteration_ns,
                "injected_pct": 100 * self.injected_utilization,
                "events": self.events_processed}


@dataclass(frozen=True)
class ComparisonResult:
    """A noisy run scored against its quiet baseline."""

    quiet: RunResult
    noisy: RunResult

    @property
    def slowdown(self) -> SlowdownResult:
        return SlowdownResult(self.quiet.makespan_ns, self.noisy.makespan_ns,
                              self.noisy.injected_utilization)

    def as_dict(self) -> dict[str, _t.Any]:
        d = self.noisy.as_dict()
        d.update(quiet_makespan_ns=self.quiet.makespan_ns,
                 slowdown_pct=self.slowdown.slowdown_percent,
                 amplification=self.slowdown.amplification,
                 verdict=self.slowdown.verdict)
        return d
