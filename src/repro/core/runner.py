"""Parameter-sweep runner: the engine behind the scaling figures.

A sweep crosses machine sizes with noise patterns (and optionally other
config axes), reusing one quiet baseline per machine size, and yields
flat record dicts ready for :func:`repro.analysis.format_table`.

Execution is delegated to :class:`repro.parallel.SweepExecutor`: pass
``workers=N`` to fan the independent points over N processes (results
are bit-identical to serial for a fixed seed), and ``cache=`` a
directory or :class:`~repro.parallel.ResultCache` to serve
previously-simulated points — quiet baselines above all — from disk.
"""

from __future__ import annotations

import os
import typing as _t

from .experiment import ExperimentConfig
from .results import ComparisonResult, RunResult

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel import ResultCache

__all__ = ["sweep", "sweep_records"]


def sweep(base: ExperimentConfig, *, nodes: _t.Sequence[int],
          patterns: _t.Sequence[str],
          progress: _t.Callable[[str], None] | None = None,
          workers: int | None = 1,
          cache: "ResultCache | str | os.PathLike[str] | None" = None
          ) -> dict[tuple[int, str], ComparisonResult | RunResult]:
    """Cross ``nodes`` x ``patterns``; quiet baselines are shared.

    Returns a mapping from ``(n_nodes, pattern)`` to a
    :class:`ComparisonResult` (noisy patterns) or bare
    :class:`RunResult` (the quiet point itself).

    Parameters
    ----------
    workers:
        Processes to fan points over (1 = serial in-process, the
        default; ``None``/0 = one per CPU).
    cache:
        Optional on-disk result cache (directory path or
        :class:`~repro.parallel.ResultCache`).
    """
    from ..parallel import SweepExecutor

    executor = SweepExecutor(workers=workers, cache=cache)
    return executor.run_sweep(base, nodes=nodes, patterns=patterns,
                              progress=progress)


def sweep_records(base: ExperimentConfig, *, nodes: _t.Sequence[int],
                  patterns: _t.Sequence[str],
                  progress: _t.Callable[[str], None] | None = None,
                  workers: int | None = 1,
                  cache: "ResultCache | str | os.PathLike[str] | None" = None
                  ) -> list[dict[str, _t.Any]]:
    """Flat dict-per-point records (for tables/CSV).

    Records are sorted by ``(nodes, pattern)`` — not by execution or
    completion order — so the output is stable for any ``workers``
    setting.
    """
    out = []
    results = sweep(base, nodes=nodes, patterns=patterns,
                    progress=progress, workers=workers, cache=cache)
    for (p, pattern), res in sorted(results.items()):
        record = res.as_dict()
        record.setdefault("nodes", p)
        record.setdefault("pattern", pattern)
        out.append(record)
    return out
