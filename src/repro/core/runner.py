"""Parameter-sweep runner: the engine behind the scaling figures.

A sweep crosses machine sizes with noise patterns (and optionally other
config axes), reusing one quiet baseline per machine size, and yields
flat record dicts ready for :func:`repro.analysis.format_table`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import replace

from ..errors import ConfigError
from .experiment import ExperimentConfig, run_experiment
from .results import ComparisonResult, RunResult

__all__ = ["sweep", "sweep_records"]


def sweep(base: ExperimentConfig, *, nodes: _t.Sequence[int],
          patterns: _t.Sequence[str],
          progress: _t.Callable[[str], None] | None = None
          ) -> dict[tuple[int, str], ComparisonResult | RunResult]:
    """Cross ``nodes`` x ``patterns``; quiet baselines are shared.

    Returns a mapping from ``(n_nodes, pattern)`` to a
    :class:`ComparisonResult` (noisy patterns) or bare
    :class:`RunResult` (the quiet point itself).
    """
    if not nodes or not patterns:
        raise ConfigError("sweep needs at least one node count and pattern")
    results: dict[tuple[int, str], ComparisonResult | RunResult] = {}
    for p in nodes:
        quiet_cfg = replace(base, nodes=p, noise_pattern="quiet")
        if progress:
            progress(f"quiet baseline P={p}")
        quiet = _t.cast(RunResult, run_experiment(quiet_cfg))
        for pattern in patterns:
            if pattern.strip().lower() in ("quiet", "none", "off"):
                results[(p, pattern)] = quiet
                continue
            if progress:
                progress(f"P={p} pattern={pattern}")
            noisy_cfg = replace(base, nodes=p, noise_pattern=pattern)
            noisy = _t.cast(RunResult, run_experiment(noisy_cfg))
            results[(p, pattern)] = ComparisonResult(quiet=quiet, noisy=noisy)
    return results


def sweep_records(base: ExperimentConfig, *, nodes: _t.Sequence[int],
                  patterns: _t.Sequence[str],
                  progress: _t.Callable[[str], None] | None = None
                  ) -> list[dict[str, _t.Any]]:
    """Flat dict-per-point records (for tables/CSV)."""
    out = []
    for (p, pattern), res in sweep(base, nodes=nodes, patterns=patterns,
                                   progress=progress).items():
        record = res.as_dict()
        record.setdefault("nodes", p)
        record.setdefault("pattern", pattern)
        out.append(record)
    return out
