"""Machine assembly: nodes + kernels + noise + network + MPI in one call.

:class:`MachineConfig` is the single declarative description of the
simulated system; :class:`Machine` materializes it and launches rank
programs.  This is the main entry point applications and experiments
build on::

    machine = Machine(MachineConfig(n_nodes=64, kernel="commodity-linux",
                                    injection=InjectionPlan("2.5pct@10Hz"),
                                    seed=7))
    procs = machine.launch(my_rank_program)
    machine.run()
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import ConfigError
from ..faults import FaultPlan
from ..kernel import KernelConfig, Node
from ..mpi import Communicator, MPIWorld, RankComm
from ..net import (
    GraphTopology,
    HierarchicalTopology,
    LogGPParams,
    MachineShape,
    Network,
    SwitchTopology,
    Topology,
    TorusTopology,
)
from ..noise import InjectionPlan, NoiseSource, OneOffNoise
from ..sim import Environment, Process

__all__ = ["MachineConfig", "Machine", "RankProgram"]

#: A rank program: called with the rank's messaging context, returns the
#: generator the simulator drives.
RankProgram = _t.Callable[[RankComm], _t.Generator]


@dataclass(frozen=True)
class MachineConfig:
    """Declarative description of the simulated machine.

    Attributes
    ----------
    n_nodes:
        Machine size (one rank per node).
    kernel:
        :class:`KernelConfig` or preset name
        (``lightweight`` / ``commodity-linux`` / ``tuned-linux``).
    network:
        :class:`LogGPParams` or preset name
        (``seastar`` / ``infiniband`` / ``gige``).
    topology:
        ``"switch"``, ``"torus:AxBxC"``, ``"fat-tree"``,
        ``"hier:CxNxS[@kind]"`` (a :class:`MachineShape`-driven
        hierarchy), or a :class:`Topology` instance.
    shape:
        Optional :class:`MachineShape` (or its ``"CxNxS[@kind]"`` spec
        string) describing the packaging hierarchy.  Setting it with
        the default ``"switch"`` topology switches the fabric to a
        :class:`HierarchicalTopology` of that shape, and it is what
        the two-level collective algorithms group ranks by.
    collectives:
        Optional per-operation collective algorithm overrides, e.g.
        ``{"allreduce": "two-level", "bcast": "binomial"}``.  Unlisted
        operations keep their defaults.
    injection:
        Synthetic noise to inject on top of the kernel's own activity
        (``None`` = only the kernel's intrinsic noise).
    seed:
        Root seed for every stochastic stream in the machine.
    reduce_cost_per_byte:
        CPU ns per byte for reduction arithmetic.
    isolate_noise:
        Core specialization on every node: kernel background activity
        and NIC rx processing run on a spare core instead of preempting
        the application (injected patterns still strike the app core).
    slow_nodes:
        Optional mapping ``node id -> relative clock rate`` marking
        degraded nodes (e.g. ``{17: 0.9}`` = node 17 runs at 90%).
    faults:
        Optional :class:`~repro.faults.FaultPlan` making the machine
        unreliable: lossy/degradable links, duplicated messages,
        slowed or crashed nodes, with ack/retry recovery at the MPI
        point-to-point layer.  ``None`` (the default) is the perfectly
        reliable machine, bit-identical to pre-fault builds.
    critical_path:
        Record cross-node dependency edges (receive waits, transient
        steals, retransmissions, rank start/finish) so
        :meth:`Machine.critical_path` can reconstruct and attribute
        the makespan's critical path.  Off by default; recording is
        passive and never changes simulation results.  The process-
        wide ``obs.configure(critical_path=True)`` switch enables it
        for every machine regardless of this field.
    """

    n_nodes: int = 4
    kernel: KernelConfig | str = "lightweight"
    network: LogGPParams | str = "seastar"
    topology: Topology | str = "switch"
    shape: MachineShape | str | None = None
    collectives: _t.Mapping[str, str] | None = None
    injection: InjectionPlan | None = None
    seed: int = 0
    reduce_cost_per_byte: float = 0.25
    isolate_noise: bool = False
    #: node id -> relative clock rate for degraded ("sick") nodes.
    slow_nodes: _t.Mapping[int, float] | None = None
    faults: FaultPlan | None = None
    critical_path: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigError(f"n_nodes must be > 0, got {self.n_nodes}")
        if self.shape is not None:
            MachineShape.parse(self.shape)  # fail fast on bad specs
        for nid, speed in (self.slow_nodes or {}).items():
            if not 0 <= nid < self.n_nodes:
                raise ConfigError(f"slow_nodes id {nid} out of range")
            if speed <= 0:
                raise ConfigError(f"slow_nodes speed must be > 0, got {speed}")

    # -- resolution helpers -------------------------------------------------
    def kernel_config(self) -> KernelConfig:
        if isinstance(self.kernel, KernelConfig):
            return self.kernel
        return KernelConfig.preset(self.kernel)

    def network_params(self) -> LogGPParams:
        if isinstance(self.network, LogGPParams):
            return self.network
        return LogGPParams.preset(self.network)

    def resolved_shape(self) -> MachineShape | None:
        """The machine's packaging hierarchy, if one is configured.

        Comes from the ``shape`` field, a ``"hier:..."`` topology spec,
        or an explicit :class:`HierarchicalTopology` instance.
        """
        if self.shape is not None:
            return MachineShape.parse(self.shape)
        if isinstance(self.topology, HierarchicalTopology):
            return self.topology.shape
        if isinstance(self.topology, str) and self.topology.startswith("hier:"):
            return MachineShape.parse(self.topology[len("hier:"):])
        return None

    def build_topology(self) -> Topology:
        if isinstance(self.topology, Topology):
            if self.topology.n_nodes != self.n_nodes:
                raise ConfigError("topology size does not match n_nodes")
            return self.topology
        if self.topology.startswith("hier:"):
            return HierarchicalTopology(
                self.n_nodes, MachineShape.parse(self.topology[len("hier:"):]))
        if self.topology == "switch":
            if self.shape is not None:
                # A shape on the default fabric means "model the
                # hierarchy": pair costs follow the shape's levels.
                return HierarchicalTopology(self.n_nodes,
                                            MachineShape.parse(self.shape))
            return SwitchTopology(self.n_nodes)
        if self.topology == "fat-tree":
            return GraphTopology.fat_tree_like(self.n_nodes)
        if self.topology.startswith("torus:"):
            dims = tuple(int(d) for d in self.topology[len("torus:"):].split("x"))
            topo = TorusTopology(dims)
            if topo.n_nodes != self.n_nodes:
                raise ConfigError(
                    f"torus {dims} has {topo.n_nodes} nodes, config says "
                    f"{self.n_nodes}")
            return topo
        raise ConfigError(f"unknown topology spec {self.topology!r}")


class Machine:
    """A fully wired simulated machine ready to run rank programs."""

    def __init__(self, config: MachineConfig) -> None:
        from ..obs import runtime as _obs

        self.config = config
        #: Process-wide telemetry switches, captured at build time (the
        #: machine itself stays pure: nothing here feeds back into
        #: simulation decisions, so results are identical with
        #: telemetry on or off).
        self._obs_metrics = _obs.metrics_enabled()
        tracer = _obs.tracer()
        self.tracer = tracer
        self.env = Environment(
            metrics=self._obs_metrics,
            tracer=(tracer if tracer is not None
                    and tracer.enabled("sim") else None),
            det_check=_obs.det_check_enabled())
        kernel_cfg = config.kernel_config()
        plan = config.injection
        faults = config.faults
        fault_slow = (faults.slow_nodes_for(config.n_nodes)
                      if faults is not None else {})
        fault_one_off = (faults.one_off_delays_for(config.n_nodes)
                         if faults is not None else {})
        self.nodes: list[Node] = []
        for i in range(config.n_nodes):
            sources: list[NoiseSource] = []
            if plan is not None:
                sources.append(plan.source_for(i, config.n_nodes))
            # Planted one-off delays ride the injected-noise channel:
            # they strike the application core even under isolate_noise
            # (the experimenter imposed them) and are attributed by
            # name in the critical-path / wavefront layers.
            for start, duration in fault_one_off.get(i, ()):
                sources.append(OneOffNoise(start, duration))
            injected = sources or None
            speed = (config.slow_nodes or {}).get(i, 1.0)
            speed *= fault_slow.get(i, 1.0)
            self.nodes.append(Node(self.env, i, kernel_cfg,
                                   injected=injected, seed=config.seed,
                                   isolate_noise=config.isolate_noise,
                                   cpu_speed=speed))
        self.network = Network(self.env, self.nodes,
                               params=config.network_params(),
                               topology=config.build_topology(),
                               seed=config.seed, faults=faults,
                               metrics=self._obs_metrics,
                               tracer=(tracer if tracer is not None
                                       and (tracer.enabled("net")
                                            or tracer.enabled("net.flow"))
                                       else None))
        #: Cross-node dependency recorder for critical-path
        #: attribution; built only when asked for (config field or the
        #: process-wide obs switch) so the default machine stays free.
        self.critpath = None
        if config.critical_path or _obs.critpath_enabled():
            from ..obs.critpath import DependencyRecorder
            self.critpath = DependencyRecorder(self.env, self.nodes)
        self.mpi = MPIWorld(self.env, self.network,
                            reduce_cost_per_byte=config.reduce_cost_per_byte,
                            faults=faults, metrics=self._obs_metrics,
                            tracer=tracer, critpath=self.critpath,
                            shape=config.resolved_shape(),
                            collectives=config.collectives)

    # -- convenience accessors ------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def context(self, rank: int, comm: Communicator | None = None) -> RankComm:
        """Messaging context for one rank (mostly for tests/probes)."""
        return self.mpi.rank_context(rank, comm)

    def fault_stats(self) -> dict[str, _t.Any] | None:
        """Fault/recovery counters, or ``None`` on a reliable machine.

        Combines the wire-level drop counters (network) with the
        transport's retry/duplicate-suppression/ack counters; see
        :class:`~repro.faults.FaultStats`.
        """
        if self.config.faults is None or not self.config.faults.injects_faults:
            return None
        stats: dict[str, _t.Any] = {
            "plan": self.config.faults.describe(),
            "messages_dropped": self.network.messages_dropped,
            "duplicates_injected": self.network.duplicates_injected,
            "drops_by_node": dict(sorted(self.network.drops_by_node.items())),
        }
        if self.mpi.transport is not None:
            stats.update(self.mpi.transport.stats.as_dict())
        return stats

    # -- execution ----------------------------------------------------------------
    def launch(self, program: RankProgram,
               comm: Communicator | None = None,
               ranks: _t.Iterable[int] | None = None) -> list[Process]:
        """Spawn ``program`` on every rank (or the given subset)."""
        comm = comm or self.mpi.world
        which = range(comm.size) if ranks is None else ranks
        recorder = self.critpath
        procs = []
        for rank in which:
            ctx = self.mpi.rank_context(rank, comm)
            proc = self.env.process(program(ctx), name=f"rank{rank}")
            if recorder is not None:
                node_id = comm.node(rank)
                recorder.note_start(node_id)
                proc.callbacks.append(
                    lambda _e, n=node_id: recorder.note_completion(n))
            procs.append(proc)
        return procs

    def run(self, until: int | Process | None = None) -> object:
        """Drive the simulation (see :meth:`repro.sim.Environment.run`)."""
        return self.env.run(until=until)

    def critical_path(self):
        """Reconstruct the completed run's critical path.

        Returns a :class:`repro.obs.CriticalPathResult`; requires the
        machine to have been built with ``critical_path=True`` (or the
        process-wide obs switch) and run to completion.
        """
        if self.critpath is None:
            raise ConfigError(
                "critical-path recording is off; build the machine with "
                "MachineConfig(critical_path=True) or call "
                "obs.configure(critical_path=True) first")
        from ..obs.critpath import compute_critical_path
        return compute_critical_path(self.critpath)

    def run_to_completion(self, procs: _t.Sequence[Process]) -> int:
        """Run until every given process finishes; returns finish time."""
        done = self.env.all_of(list(procs))
        self.env.run(until=done)
        return self.env.now

    def finalize_telemetry(self) -> None:
        """Fold this machine's counters into the global obs registry.

        Idempotent and a no-op unless telemetry is enabled; called by
        the end-of-run paths (:func:`repro.core.run_experiment`, the
        collective microbenchmark) once the simulation is done.
        """
        if not self._obs_metrics or getattr(self, "_obs_harvested", False):
            return
        from ..obs import runtime as _obs

        self._obs_harvested = True
        _obs.harvest_machine(self)
