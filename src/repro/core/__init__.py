"""Experiment orchestration: machine assembly, runs, sweeps, results.

Top-level entry points::

    from repro.core import ExperimentConfig, run_experiment, run_with_baseline

    cmp = run_with_baseline(ExperimentConfig(
        app="pop", nodes=64, noise_pattern="2.5pct@10Hz", seed=1))
    print(cmp.slowdown.slowdown_percent, cmp.slowdown.verdict)
"""

from .experiment import ExperimentConfig, run_experiment, run_with_baseline
from .machine import Machine, MachineConfig, RankProgram
from .results import ComparisonResult, RunResult
from .runner import sweep, sweep_records

__all__ = [
    "Machine", "MachineConfig", "RankProgram",
    "ExperimentConfig", "run_experiment", "run_with_baseline",
    "RunResult", "ComparisonResult",
    "sweep", "sweep_records",
]
