"""Single-experiment runner: config in, result out.

:class:`ExperimentConfig` names everything a run needs — workload,
machine size, kernel, network, injected-noise pattern and alignment,
seed, optional observer — and :func:`run_experiment` executes it.
:func:`run_with_baseline` pairs a noisy run with its quiet twin and
returns the slowdown comparison the evaluation tables are built from.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field, replace

from ..apps import build_workload
from ..errors import ConfigError
from ..faults import FaultPlan, parse_faults
from ..kernel import KernelConfig
from ..ktau import KtauTracer, OverheadModel
from ..net import LogGPParams
from ..noise import InjectionPlan, parse_pattern
from .machine import Machine, MachineConfig
from .results import ComparisonResult, RunResult

__all__ = ["ExperimentConfig", "run_experiment", "run_with_baseline"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one run.

    Attributes
    ----------
    app:
        Workload name from :mod:`repro.apps.workloads`.
    nodes:
        Machine size.
    noise_pattern:
        Injection spec (``"quiet"``, ``"2.5pct@100Hz"``, ...).
    alignment:
        Cross-node noise alignment (see
        :class:`~repro.noise.InjectionPlan`).
    kernel / network / topology:
        Machine substrate (presets or instances, as in
        :class:`~repro.core.MachineConfig`).
    shape:
        Optional :class:`~repro.net.MachineShape` (or its compact
        ``"CxNxS[@kind]"`` spec) describing the node/switch hierarchy;
        enables topology-aware collective algorithms.
    collectives:
        Machine-wide collective algorithm overrides, mapping operation
        name to algorithm (e.g. ``{"allreduce": "two-level"}``).
    app_params:
        Keyword overrides for the workload factory.
    observer:
        ``None`` (off), ``"profile"``, or ``"trace"``.
    observer_overhead:
        Overhead preset/model (defaults to matching the observer level).
    seed:
        Root seed for every stochastic stream.
    isolate_noise:
        Core specialization (see :class:`~repro.core.MachineConfig`).
    faults:
        Fault-injection policy: a :class:`~repro.faults.FaultPlan`, a
        compact spec string (``"drop=0.01,timeout=1ms"``, see
        :func:`~repro.faults.parse_faults`), or ``None`` for the
        perfectly reliable machine (the default).
    critical_path:
        Record cross-node dependency edges and attach the critical-path
        attribution (:meth:`repro.obs.CriticalPathResult.as_dict`) to
        ``RunResult.meta["critical_path"]``.  Off by default (the
        recorder is never built); recording is passive, so makespans
        and iteration timings are byte-identical either way.
    record_edges:
        Attach the raw dependency-edge log
        (:meth:`repro.obs.DependencyRecorder.edge_log`) to
        ``RunResult.meta["edge_log"]``.  Implies critical-path
        recording; this is the input the idle-wave extractor
        (:mod:`repro.obs.wavefront`) consumes.  Like
        ``critical_path``, recording is passive.
    """

    app: str = "bsp"
    nodes: int = 16
    noise_pattern: str = "quiet"
    alignment: str = "random"
    kernel: KernelConfig | str = "lightweight"
    network: LogGPParams | str = "seastar"
    topology: _t.Any = "switch"
    shape: _t.Any = None
    collectives: _t.Mapping[str, str] | None = None
    app_params: dict[str, _t.Any] = field(default_factory=dict)
    observer: str | None = None
    observer_overhead: OverheadModel | str | None = None
    seed: int = 0
    isolate_noise: bool = False
    faults: FaultPlan | str | None = None
    critical_path: bool = False
    record_edges: bool = False

    def injected_utilization(self) -> float:
        """Nominal utilization of the injected pattern (0 for quiet)."""
        return parse_pattern(self.noise_pattern, seed=self.seed).utilization

    def fault_plan(self) -> FaultPlan | None:
        """The resolved fault plan (spec strings parsed, seed applied)."""
        if self.faults is None or isinstance(self.faults, FaultPlan):
            return self.faults
        return parse_faults(self.faults, seed=self.seed)

    def machine_config(self) -> MachineConfig:
        probe = parse_pattern(self.noise_pattern, seed=self.seed)
        injection = (None if probe.utilization == 0
                     else InjectionPlan(self.noise_pattern,
                                        alignment=self.alignment,
                                        seed=self.seed))
        return MachineConfig(n_nodes=self.nodes, kernel=self.kernel,
                             network=self.network, topology=self.topology,
                             shape=self.shape, collectives=self.collectives,
                             injection=injection, seed=self.seed,
                             isolate_noise=self.isolate_noise,
                             faults=self.fault_plan(),
                             critical_path=(self.critical_path
                                            or self.record_edges))

    def quiet_twin(self) -> "ExperimentConfig":
        """The same experiment with no injected noise."""
        return replace(self, noise_pattern="quiet")

    def reliable_twin(self) -> "ExperimentConfig":
        """The same experiment with no injected faults."""
        return replace(self, faults=None)


def run_experiment(config: ExperimentConfig,
                   *, return_tracer: bool = False
                   ) -> RunResult | tuple[RunResult, KtauTracer]:
    """Execute one experiment; optionally return the observer too."""
    machine = Machine(config.machine_config())
    tracer: KtauTracer | None = None
    if config.observer is not None:
        overhead = config.observer_overhead
        if overhead is None:
            overhead = config.observer  # matching preset name
        tracer = KtauTracer(machine, level=config.observer,
                            overhead=overhead)
    app = build_workload(config.app, **config.app_params)
    if tracer is not None:
        app.bind_tracer(tracer)
    procs = machine.launch(app)
    machine.run_to_completion(procs)
    machine.finalize_telemetry()
    meta: dict[str, _t.Any] = {"workload": app.describe(),
                               "kernel": machine.config.kernel_config().name}
    fault_stats = machine.fault_stats()
    if fault_stats is not None:
        meta["faults"] = fault_stats
    if machine.critpath is not None:
        if config.critical_path:
            meta["critical_path"] = machine.critical_path().as_dict()
        if config.record_edges:
            meta["edge_log"] = machine.critpath.edge_log()
    if machine.env.det_checksum:
        # obs.configure(det_check=True): order-sensitive checksum of
        # every scheduled (time, priority, seq) tuple — equal across
        # serial/worker runs iff scheduling order was identical.
        meta["det_check"] = machine.env.det_checksum
    result = RunResult(
        app=config.app, n_nodes=config.nodes, pattern=config.noise_pattern,
        seed=config.seed, makespan_ns=app.makespan_ns(),
        iteration_durations_ns=app.all_durations_ns(),
        injected_utilization=config.injected_utilization(),
        events_processed=machine.env.events_processed,
        meta=meta)
    if return_tracer:
        if tracer is None:
            raise ConfigError("return_tracer requires observer to be enabled")
        return result, tracer
    return result


def run_with_baseline(config: ExperimentConfig) -> ComparisonResult:
    """Run ``config`` and its quiet twin; return the comparison."""
    if config.noise_pattern.strip().lower() in ("quiet", "none", "off"):
        raise ConfigError("run_with_baseline needs a noisy configuration")
    quiet = _t.cast(RunResult, run_experiment(config.quiet_twin()))
    noisy = _t.cast(RunResult, run_experiment(config))
    return ComparisonResult(quiet=quiet, noisy=noisy)
