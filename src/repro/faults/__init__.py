"""Fault injection and recovery for the simulated cluster.

The paper's thesis is that kernel activity perturbs applications
through the communication path; this package injects *failures* into
that same path — message loss, duplication, link degradation, node
slowdown and crash — and supplies the ack/timeout/retry protocol that
recovers from them.  A retry is a one-off delay, and one-off delays
propagate and decay through collectives exactly like kernel noise
(Afzal et al.), so the fault layer extends the absorption story from
"the kernel stole a slice" to "the fabric ate a message".

Everything is deterministic and seed-derived (see
:class:`FaultPlan`); with faults disabled the simulator's behavior is
bit-identical to a build without this package.  See
docs/ROBUSTNESS.md for the model.
"""

from .plan import FaultPlan, LinkDegradation, parse_faults
from .protocol import ACK_KIND, DATA_KIND, FaultStats, ReliableTransport

__all__ = [
    "FaultPlan",
    "LinkDegradation",
    "parse_faults",
    "FaultStats",
    "ReliableTransport",
    "ACK_KIND",
    "DATA_KIND",
]
