"""Deterministic fault plans for the simulated cluster.

A :class:`FaultPlan` is to failures what
:class:`~repro.noise.InjectionPlan` is to noise: a frozen, declarative
description of *what goes wrong*, with every individual decision (drop
this message? duplicate that one?) derived from ``(seed, label)`` via
:func:`repro.sim.rng.derive_fraction` — never from draw order.  Two
runs with the same plan make identical decisions; a run fanned over
worker processes makes the same decisions as a serial run.

The fault classes modelled:

* **message drops** — each wire message (data or ack) is lost with
  probability ``drop_rate``.  Because decisions come from a per-message
  label, raising the rate only *adds* drops: the set of dropped
  messages at rate r is a subset of the set at rate r' > r, which is
  what makes drop-rate sweeps monotone.
* **message duplication** — with probability ``duplicate_rate`` a
  message arrives twice (retransmit races in real fabrics); the
  reliable transport suppresses the copy and counts it.
* **transient link degradation** — :class:`LinkDegradation` windows
  multiply wire latency on a channel (or the whole fabric) for a time
  interval, modelling a flapping cable or congested uplink.
* **node slowdown** — each node is degraded to ``slow_factor`` of
  nominal clock with probability ``slow_node_rate`` (thermal
  throttling, a sick DIMM).  Materialized once per machine via
  :meth:`FaultPlan.slow_nodes_for`.
* **one-off delay** — ``one_off`` lists ``(rank, start_ns,
  duration_ns)`` triples, each planting exactly one CPU steal on one
  rank (a cron job firing once, a page-cache writeback burst — the
  idle-wave probe of Afzal/Hager/Wellein, arXiv:1905.10603).
  Materialized per machine via :meth:`FaultPlan.one_off_delays_for`;
  the E20 wavefront study tracks the planted delay through the
  dependency graph.
* **node crash** — ``crashes`` lists ``(node_id, time_ns)`` pairs;
  from that instant the node is unreachable and every message to or
  from it is dropped, which the retry protocol eventually escalates to
  a :class:`~repro.errors.FaultError`.

A plan with every knob at its default injects nothing and requires no
protocol, and the machinery is bypassed entirely — zero-fault runs are
byte-identical to runs with no plan at all (see
``tests/test_faults.py``).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.rng import derive_fraction, node_seed
from ..sim.timebase import MICROSECOND, MILLISECOND

__all__ = ["FaultPlan", "LinkDegradation", "parse_faults"]


@dataclass(frozen=True)
class LinkDegradation:
    """One transient degradation window on a link (or the whole fabric).

    Attributes
    ----------
    start_ns, end_ns:
        Half-open window ``[start, end)`` during which the degradation
        is active (judged at injection time).
    factor:
        Wire-latency multiplier (> 1 = slower).
    src, dst:
        The affected channel; ``None`` for either means "any", so
        ``LinkDegradation(a, b, 4.0)`` degrades every link when both
        are ``None``.
    """

    start_ns: int
    end_ns: int
    factor: float
    src: int | None = None
    dst: int | None = None

    def __post_init__(self) -> None:
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigError(
                f"degradation window [{self.start_ns}, {self.end_ns}) is empty")
        if self.factor < 1.0:
            raise ConfigError(
                f"degradation factor must be >= 1, got {self.factor}")

    def applies(self, src: int, dst: int, time_ns: int) -> bool:
        if not self.start_ns <= time_ns < self.end_ns:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seed-deterministic fault-injection policy.

    Rates are per-message probabilities in ``[0, 1]``; the protocol
    knobs (``ack_timeout_ns``, ``max_retries``, ``backoff``) govern the
    reliable transport that recovery rides on (see
    :mod:`repro.faults.protocol` and docs/ROBUSTNESS.md).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    degradations: tuple[LinkDegradation, ...] = ()
    slow_node_rate: float = 0.0
    slow_factor: float = 1.0
    #: ``(node_id, crash_time_ns)`` pairs; the node is unreachable from
    #: that instant on.
    crashes: tuple[tuple[int, int], ...] = ()
    #: ``(rank, start_ns, duration_ns)`` one-shot injected delays: each
    #: steals the rank's CPU exactly once, for exactly that window —
    #: the idle-wave probe E20 propagates through the machine.
    one_off: tuple[tuple[int, int, int], ...] = ()
    seed: int = 0
    #: Base ack timeout before the first retransmission.
    ack_timeout_ns: int = 500 * MICROSECOND
    #: Retransmissions before the channel is declared dead.
    max_retries: int = 8
    #: Timeout multiplier per successive retry (exponential backoff).
    backoff: float = 2.0
    #: Wire size of one ack (control messages are small but not free).
    ack_bytes: int = 16

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "slow_node_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_rate >= 1.0 and self.drop_rate != 0.0:
            raise ConfigError("drop_rate must be < 1 (nothing would survive)")
        if self.slow_factor <= 0 or self.slow_factor > 1.0:
            raise ConfigError(
                f"slow_factor must be in (0, 1], got {self.slow_factor}")
        if self.ack_timeout_ns <= 0:
            raise ConfigError("ack_timeout_ns must be > 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.ack_bytes < 0:
            raise ConfigError("ack_bytes must be >= 0")
        for entry in self.crashes:
            nid, when = entry
            if nid < 0 or when < 0:
                raise ConfigError(f"invalid crash entry {entry!r}")
        for delay in self.one_off:
            rank, start, duration = delay
            if rank < 0 or start < 0 or duration <= 0:
                raise ConfigError(
                    f"invalid one_off entry {delay!r}: need rank >= 0, "
                    "start >= 0, duration > 0")

    # -- activation --------------------------------------------------------
    @property
    def injects_faults(self) -> bool:
        """True if this plan can perturb the run at all."""
        return bool(self.drop_rate > 0 or self.duplicate_rate > 0
                    or self.degradations or self.crashes or self.one_off
                    or (self.slow_node_rate > 0 and self.slow_factor < 1.0))

    @property
    def needs_protocol(self) -> bool:
        """True if point-to-point traffic needs the ack/retry transport.

        Drops and crashes lose messages (something must retransmit);
        duplication needs receiver-side suppression.  Pure slowdown or
        link degradation never loses a message, so those plans run the
        plain connectionless path and stay cheap.
        """
        return bool(self.drop_rate > 0 or self.duplicate_rate > 0
                    or self.crashes)

    # -- per-message decisions ---------------------------------------------
    def drop_message(self, src: int, dst: int, uid: str) -> bool:
        """Deterministic drop decision for one wire message.

        ``uid`` must be stable per physical transmission (protocol id +
        attempt for data, the acked id for acks) so retransmissions of
        a dropped message get *fresh* coin flips.
        """
        if self.drop_rate <= 0:
            return False
        return derive_fraction(
            self.seed, f"fault/drop/{src}/{dst}/{uid}") < self.drop_rate

    def duplicate_message(self, src: int, dst: int, uid: str) -> bool:
        """Deterministic duplication decision for one wire message."""
        if self.duplicate_rate <= 0:
            return False
        return derive_fraction(
            self.seed, f"fault/dup/{src}/{dst}/{uid}") < self.duplicate_rate

    def latency_factor(self, src: int, dst: int, time_ns: int) -> float:
        """Combined wire-latency multiplier for a message injected now."""
        factor = 1.0
        for window in self.degradations:
            if window.applies(src, dst, time_ns):
                factor *= window.factor
        return factor

    def node_crashed(self, node_id: int, time_ns: int) -> bool:
        """True once ``node_id`` has crashed at or before ``time_ns``."""
        for nid, when in self.crashes:
            if nid == node_id and time_ns >= when:
                return True
        return False

    # -- machine materialization -------------------------------------------
    def slow_nodes_for(self, n_nodes: int) -> dict[int, float]:
        """The degraded-node map for an ``n_nodes`` machine.

        Each node is independently slowed with probability
        ``slow_node_rate`` — decided from the shared per-node seed
        formula, so the same nodes are sick at every machine size that
        contains them.
        """
        if self.slow_node_rate <= 0 or self.slow_factor >= 1.0:
            return {}
        return {i: self.slow_factor for i in range(n_nodes)
                if derive_fraction(node_seed(self.seed, i), "fault/slow")
                < self.slow_node_rate}

    def one_off_delays_for(self, n_nodes: int
                           ) -> dict[int, tuple[tuple[int, int], ...]]:
        """The one-off delay schedule for an ``n_nodes`` machine.

        Returns ``rank -> ((start_ns, duration_ns), ...)`` in spec
        order.  The schedule is explicit (no randomness), so it is
        trivially identical across calls and worker processes — the
        property the wavefront study's serial-vs-workers byte-identity
        rests on.  Ranks outside the machine fail fast.
        """
        out: dict[int, list[tuple[int, int]]] = {}
        for rank, start, duration in self.one_off:
            if rank >= n_nodes:
                raise ConfigError(
                    f"one_off rank {rank} out of range for a "
                    f"{n_nodes}-node machine")
            out.setdefault(rank, []).append((start, duration))
        return {rank: tuple(delays) for rank, delays in out.items()}

    def retry_timeout_ns(self, attempt: int) -> int:
        """Ack timeout before retransmission ``attempt`` (0-based)."""
        return round(self.ack_timeout_ns * self.backoff ** attempt)

    def describe(self) -> dict[str, object]:
        """Reporting summary (mirrors ``InjectionPlan.describe``)."""
        return {"drop_rate": self.drop_rate,
                "duplicate_rate": self.duplicate_rate,
                "degradations": len(self.degradations),
                "slow_node_rate": self.slow_node_rate,
                "slow_factor": self.slow_factor,
                "crashes": list(self.crashes),
                "one_off": list(self.one_off),
                "ack_timeout_ns": self.ack_timeout_ns,
                "max_retries": self.max_retries,
                "backoff": self.backoff,
                "seed": self.seed}


_TIME_SUFFIXES = (("ms", MILLISECOND), ("us", MICROSECOND), ("ns", 1))


def _parse_time_ns(text: str) -> int:
    for suffix, unit in _TIME_SUFFIXES:
        if text.endswith(suffix):
            return round(float(text[:-len(suffix)]) * unit)
    return round(float(text))


def parse_faults(spec: str, *, seed: int = 0) -> FaultPlan | None:
    """Parse a compact CLI fault spec into a :class:`FaultPlan`.

    Grammar: comma-separated ``key=value`` pairs, e.g. ::

        drop=0.01,dup=0.002,timeout=1ms,retries=6,backoff=2
        drop=0.05,slow=0.1x0.8          (10% of nodes at 80% clock)
        crash=3@50ms                     (node 3 dies at t=50ms)
        one_off=3:5ms:1ms                (rank 3 loses 1ms of CPU at t=5ms)

    ``"none"``/``"off"``/``""`` disable fault injection (returns
    ``None``).  Times accept ``ns``/``us``/``ms`` suffixes; repeat
    ``one_off=`` to plant several delays.
    """
    text = spec.strip().lower()
    if text in ("", "none", "off", "quiet"):
        return None
    kwargs: dict[str, _t.Any] = {"seed": seed}
    crashes: list[tuple[int, int]] = []
    one_off: list[tuple[int, int, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"fault spec {part!r} is not key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "drop":
                kwargs["drop_rate"] = float(value)
            elif key == "dup":
                kwargs["duplicate_rate"] = float(value)
            elif key == "timeout":
                kwargs["ack_timeout_ns"] = _parse_time_ns(value)
            elif key == "retries":
                kwargs["max_retries"] = int(value)
            elif key == "backoff":
                kwargs["backoff"] = float(value)
            elif key == "slow":
                rate, _, factor = value.partition("x")
                kwargs["slow_node_rate"] = float(rate)
                kwargs["slow_factor"] = float(factor) if factor else 0.8
            elif key == "crash":
                node, _, when = value.partition("@")
                crashes.append((int(node),
                                _parse_time_ns(when) if when else 0))
            elif key == "one_off":
                parts = value.split(":")
                if len(parts) != 3:
                    raise ConfigError(
                        f"one_off spec {value!r} is not rank:start:duration")
                one_off.append((int(parts[0]), _parse_time_ns(parts[1]),
                                _parse_time_ns(parts[2])))
            else:
                raise ConfigError(f"unknown fault spec key {key!r}")
        except ValueError as exc:
            raise ConfigError(f"bad fault spec value {part!r}: {exc}") from None
    if crashes:
        kwargs["crashes"] = tuple(crashes)
    if one_off:
        kwargs["one_off"] = tuple(one_off)
    return FaultPlan(**kwargs)
