"""Ack/timeout/retry transport: reliability over a lossy fabric.

When a :class:`~repro.faults.FaultPlan` can lose messages
(``needs_protocol``), the machine interposes a
:class:`ReliableTransport` between the MPI layer and the network:

* every outgoing point-to-point message gets a per-channel **protocol
  id** and is tracked until acknowledged;
* the receiver acks every data arrival (acks are real wire messages —
  they occupy the NIC, steal rx CPU, and can themselves be dropped)
  and suppresses duplicate deliveries by protocol id;
* an unacked message is retransmitted after
  ``ack_timeout_ns * backoff**attempt`` (exponential backoff); after
  ``max_retries`` retransmissions the channel is declared dead and a
  :class:`~repro.errors.FaultError` aborts the run — which the sweep
  executor catches and records as a per-point failure.

Everything runs on event callbacks (no rank-process involvement), so
the protocol composes with the existing eager-send MPI semantics: a
send still completes at injection; reliability is the transport's
problem, exactly as on a real NIC with link-level retry.

Determinism: retransmissions are scheduled from plan-derived timeouts
and all drop/duplicate decisions are label-derived
(:meth:`FaultPlan.drop_message`), so a faulty run is exactly
reproducible — the property the whole library is built around.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from ..errors import FaultError
from ..net.message import Message
from .plan import FaultPlan

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..net.network import Network
    from ..sim import Environment

__all__ = ["FaultStats", "ReliableTransport", "ACK_KIND", "DATA_KIND"]

#: Wire-message kinds the transport distinguishes.
DATA_KIND = "data"
ACK_KIND = "ack"


@dataclass
class FaultStats:
    """Per-machine fault/recovery counters (reported by E15).

    ``retries``/``duplicates_suppressed``/``acks_sent`` are indexed by
    node id (the sender for retries, the receiver for the other two);
    drop counters live on the :class:`~repro.net.Network` since drops
    happen on the wire.
    """

    retries: dict[int, int] = field(default_factory=dict)
    duplicates_suppressed: dict[int, int] = field(default_factory=dict)
    acks_sent: dict[int, int] = field(default_factory=dict)
    failures: int = 0

    def count(self, counter: dict[int, int], node: int) -> None:
        counter[node] = counter.get(node, 0) + 1

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def total_duplicates_suppressed(self) -> int:
        return sum(self.duplicates_suppressed.values())

    def as_dict(self) -> dict[str, _t.Any]:
        return {"retries": dict(sorted(self.retries.items())),
                "duplicates_suppressed":
                    dict(sorted(self.duplicates_suppressed.items())),
                "acks_sent": dict(sorted(self.acks_sent.items())),
                "total_retries": self.total_retries,
                "total_duplicates_suppressed":
                    self.total_duplicates_suppressed,
                "failures": self.failures}


class _Pending:
    """Sender-side state for one unacknowledged message."""

    __slots__ = ("msg", "attempt", "timer")

    def __init__(self, msg: Message) -> None:
        self.msg = msg
        self.attempt = 0
        self.timer: _t.Any = None


class ReliableTransport:
    """The ack/retry layer between :class:`MPIWorld` and the network.

    Install with :meth:`attach`: the transport takes over the network's
    delivery callback and forwards verified-fresh data messages to the
    downstream consumer (the MPI matching router).
    """

    def __init__(self, env: "Environment", network: "Network",
                 plan: FaultPlan, *, tracer: _t.Any = None,
                 recorder: _t.Any = None) -> None:
        self.env = env
        self.network = network
        self.plan = plan
        self.stats = FaultStats()
        #: ``faults``-category span tracer (retry/suppression instants).
        self.tracer = (tracer if tracer is not None
                       and tracer.enabled("faults") else None)
        #: Cross-node dependency recorder: first-transmission times and
        #: retransmissions, so the critical-path walk can charge retry
        #: stalls to the fault layer (``None`` = recording off).
        self.recorder = recorder
        #: Downstream consumer of fresh data messages.
        self._forward: _t.Callable[[Message], None] | None = None
        #: (src, dst) -> next protocol id for that channel.
        self._next_pid: dict[tuple[int, int], int] = {}
        #: (src, dst, pid) -> sender-side retry state.
        self._pending: dict[tuple[int, int, int], _Pending] = {}
        #: (src, dst) -> set of already-delivered pids (receiver side).
        self._seen: dict[tuple[int, int], set[int]] = {}

    # -- wiring ------------------------------------------------------------
    def attach(self, forward: _t.Callable[[Message], None]) -> None:
        """Interpose on the network; fresh data goes to ``forward``."""
        self._forward = forward
        self.network.on_deliver(self._on_network_deliver)

    # -- send path ---------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Send ``msg`` reliably (called by the MPI layer at injection)."""
        channel = (msg.src, msg.dst)
        pid = self._next_pid.get(channel, 0)
        self._next_pid[channel] = pid + 1
        msg.kind = DATA_KIND
        msg.proto_id = pid
        msg.attempt = 0
        pending = _Pending(msg)
        self._pending[(msg.src, msg.dst, pid)] = pending
        if self.recorder is not None:
            self.recorder.record_send(msg)
        self.network.inject(msg)
        self._arm_timer(pending)

    def _arm_timer(self, pending: _Pending) -> None:
        delay = self.plan.retry_timeout_ns(pending.attempt)
        timer = self.env.timeout(delay, pending)
        timer.callbacks.append(self._on_timeout)
        pending.timer = timer

    def _on_timeout(self, event: _t.Any) -> None:
        pending: _Pending = event.value
        msg = pending.msg
        key = (msg.src, msg.dst, msg.proto_id)
        if key not in self._pending:  # acked while the timer was in flight
            return
        if pending.attempt >= self.plan.max_retries:
            self.stats.failures += 1
            raise FaultError(
                f"message {msg.src}->{msg.dst} proto_id={msg.proto_id} "
                f"undeliverable after {pending.attempt} retries "
                f"(tag={msg.tag}, size={msg.size})",
                src=msg.src, dst=msg.dst)
        pending.attempt += 1
        self.stats.count(self.stats.retries, msg.src)
        if self.tracer is not None:
            self.tracer.instant(
                "faults", f"retry {msg.src}->{msg.dst}", self.env.now,
                tid=msg.src, args={"proto_id": msg.proto_id,
                                   "attempt": pending.attempt})
        retry = Message(src=msg.src, dst=msg.dst, tag=msg.tag,
                        size=msg.size, comm_id=msg.comm_id,
                        src_rank=msg.src_rank, payload=msg.payload,
                        kind=DATA_KIND, proto_id=msg.proto_id,
                        attempt=pending.attempt)
        pending.msg = retry
        if self.recorder is not None:
            self.recorder.record_retry(retry)
        self.network.inject(retry)
        self._arm_timer(pending)

    # -- receive path ------------------------------------------------------
    def _on_network_deliver(self, msg: Message) -> None:
        if msg.kind == ACK_KIND:
            self._on_ack(msg)
            return
        # Always ack — the original ack may have been the casualty.
        self._send_ack(msg)
        seen = self._seen.setdefault((msg.src, msg.dst), set())
        if msg.proto_id in seen:
            self.stats.count(self.stats.duplicates_suppressed, msg.dst)
            if self.tracer is not None:
                self.tracer.instant(
                    "faults", f"dup suppressed {msg.src}->{msg.dst}",
                    self.env.now, tid=msg.dst,
                    args={"proto_id": msg.proto_id})
            return
        seen.add(msg.proto_id)
        assert self._forward is not None
        self._forward(msg)

    def _send_ack(self, data: Message) -> None:
        self.stats.count(self.stats.acks_sent, data.dst)
        ack = Message(src=data.dst, dst=data.src, tag=0,
                      size=self.plan.ack_bytes, comm_id=-1,
                      kind=ACK_KIND, proto_id=data.proto_id,
                      attempt=data.attempt,
                      payload=(data.src, data.dst, data.proto_id))
        self.network.inject(ack)

    def _on_ack(self, ack: Message) -> None:
        src, dst, pid = ack.payload
        pending = self._pending.pop((src, dst, pid), None)
        if pending is None:  # duplicate ack (retransmit already acked)
            return
        timer = pending.timer
        if timer is not None and not timer.processed:
            timer.cancel()

    # -- introspection -----------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages currently awaiting acknowledgement."""
        return len(self._pending)
