"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show available experiments, workloads, kernel/network presets, and
    noise patterns.
``run E4 [--scale small|full] [--csv out.csv]``
    Run one harness experiment and print its report (optionally dump
    the table as CSV).
``all [--scale ...] [--markdown EXPERIMENTS.md]``
    Run the whole evaluation; print the pass/fail summary (optionally
    write the full markdown report).
``compare --app pop --nodes 32 --pattern 2.5pct@10Hz [--seed N] ...``
    One noisy-vs-quiet comparison, printed as a one-row table.
``characterize --kernel commodity-linux [--nodes N] [--seconds S]``
    Measure a kernel's noise signature with the indirect tool suite
    (FTQ spectrum, selfish detours, PSNAP fleet census).
``sweep --app pop --nodes 4,16,64 --patterns 2.5pct@10Hz,2.5pct@1000Hz``
    Scaling sweep with shared quiet baselines; prints the slowdown
    table (optionally ``--csv out.csv``).
``lint [PATHS] [--json] [--baseline FILE]``
    Run detlint, the project's AST-based determinism / sim-protocol
    static analyzer, over a source tree (defaults to ``src/repro``).
    Same engine as ``python -m repro.lint``; see
    docs/STATIC_ANALYSIS.md for the rule catalog.
``serve [--port 8750] [--workers N] [--cache DIR]``
    Run the asyncio experiment server: compare/sweep jobs over HTTP
    with streamed results, in-flight dedup, and a sharded shared
    result cache (see docs/SERVICE.md).
``submit [--compare] --app pop --nodes 4,16 --patterns ...``
    Submit a job to a running server and print the same table
    ``sweep`` prints (results are byte-identical for equal configs).
    ``--trace out.json`` requests an end-to-end request trace: the
    server stitches its pipeline phases with the workers' simulation
    spans into one Perfetto document (see docs/SERVICE.md).
``top [--port 8750] [--interval 2] [--once]``
    Live terminal dashboard for a running server: polls
    ``/metrics?window=N`` and ``/v1/logs`` and redraws throughput,
    latency quantiles, hit rate, worker utilization, and recent
    errors (with request ids) every interval.

``compare`` and ``sweep`` accept ``--faults SPEC`` to run on an
unreliable machine (``drop=0.01,dup=0.002,timeout=1ms,...`` — see
:func:`repro.faults.parse_faults` and docs/ROBUSTNESS.md); the E15
harness experiment sweeps this axis systematically.  The same spec
plants one-off idle-wave probes (``one_off=rank:start:duration``,
e.g. ``one_off=3:5ms:1ms``) — the E20 experiment and
docs/OBSERVABILITY.md cover the wavefront analysis built on them.

``compare`` and ``sweep`` also accept the topology flags:
``--topology switch|torus:AxBxC|fat-tree|dragonfly|hier:CxNxS[@kind]``
selects the fabric, ``--shape CxNxS[@kind]`` declares the machine's
packaging (cores per node x nodes per switch x switches) so
node-aware collectives know the hierarchy, and
``--collectives allreduce=two-level,barrier=two-level`` overrides the
per-operation algorithm table (see docs/USAGE.md and the E17 recipe).

``run``, ``all``, and ``sweep`` accept ``--workers N`` to fan
independent simulation points over N processes (``--workers 0`` = one
per CPU; results are bit-identical to serial) and ``--cache DIR`` to
reuse previously-simulated points — quiet baselines above all — from
an on-disk result cache (see docs/PERFORMANCE.md).

``run``, ``all``, ``compare``, and ``sweep`` also accept the
:mod:`repro.obs` telemetry flags: ``--metrics`` collects run counters
and appends a metrics block to the output, ``--metrics-json PATH``
dumps the registry as machine-readable JSON, ``--trace out.json``
additionally records a Chrome trace-event file (open in
https://ui.perfetto.dev; the ``net.flow`` category draws send→recv
flow arrows), and ``--trace-categories sim,net,mpi`` restricts which
spans are recorded.  ``stats`` is the quick entry point: one
comparison with telemetry forced on, printing the full registry
(``--json`` for the machine-readable form; see docs/OBSERVABILITY.md).

``compare --critical-path`` additionally records cross-node dependency
edges, reconstructs both runs' critical paths, and prints the
per-node/per-source attribution table plus the quiet-vs-noisy diff —
"who stole the makespan" (E16 validates the attribution against
planted ground truth).
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from .analysis import format_table
from .apps import workload_names
from .core import ExperimentConfig, run_with_baseline
from .errors import ReproError
from .harness import experiment_ids, render_markdown, render_summary
from .harness import run_all as harness_run_all
from .harness import run_experiment as harness_run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ghost in the Machine: kernel-noise observation "
                    "framework (SC'07 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_execution_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="processes for independent sweep points "
                            "(default 1 = serial; 0 = one per CPU)")
        p.add_argument("--cache", metavar="DIR", default=None,
                       help="on-disk result cache directory (reuses "
                            "quiet baselines across invocations)")

    def add_obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--metrics", action="store_true",
                       help="collect run telemetry and append a metrics "
                            "block to the output")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a Chrome trace-event JSON to PATH "
                            "(view in ui.perfetto.dev; implies --metrics)")
        p.add_argument("--trace-categories", metavar="CATS", default=None,
                       help="comma-separated trace categories to record "
                            "(sim,net,net.flow,mpi,faults,sweep,harness; "
                            "default: all but the per-event 'sim' "
                            "firehose; 'all' enables everything)")
        p.add_argument("--metrics-json", metavar="PATH", default=None,
                       help="write the metrics registry as JSON to PATH "
                            "(implies --metrics)")
        p.add_argument("--log-json", metavar="PATH", default=None,
                       help="append structured JSON operation logs "
                            "(one NDJSON doc per event) to PATH")

    def add_topology_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--topology", default="switch", metavar="SPEC",
                       help="fabric: switch | torus:AxBxC | fat-tree | "
                            "dragonfly | hier:CxNxS[@kind] (default "
                            "switch; hier: uses per-level latencies from "
                            "the machine shape)")
        p.add_argument("--shape", default=None, metavar="CxNxS[@kind]",
                       help="machine packaging shape, e.g. "
                            "32x8x4@fat-tree (cores-per-node x "
                            "nodes-per-switch x switches); required for "
                            "two-level collectives")
        p.add_argument("--collectives", default=None, metavar="OP=ALG,...",
                       help="per-operation collective algorithms, e.g. "
                            "allreduce=two-level,barrier=two-level "
                            "(see 'repro list' for the registry)")

    sub.add_parser("list", help="show experiments, workloads, presets")

    p_run = sub.add_parser("run", help="run one harness experiment")
    p_run.add_argument("experiment", help="experiment id, e.g. E4")
    p_run.add_argument("--scale", default="small", choices=["small", "full"])
    p_run.add_argument("--csv", metavar="PATH",
                       help="also write the table as CSV")
    add_execution_flags(p_run)
    add_obs_flags(p_run)

    p_all = sub.add_parser("all", help="run the whole evaluation")
    p_all.add_argument("--scale", default="small", choices=["small", "full"])
    p_all.add_argument("--markdown", metavar="PATH",
                       help="write the full report (EXPERIMENTS.md style)")
    add_execution_flags(p_all)
    add_obs_flags(p_all)

    p_cmp = sub.add_parser("compare", help="one noisy-vs-quiet comparison")
    p_cmp.add_argument("--app", default="bsp", choices=workload_names())
    p_cmp.add_argument("--nodes", type=int, default=16)
    p_cmp.add_argument("--pattern", default="2.5pct@10Hz")
    p_cmp.add_argument("--alignment", default="random",
                       choices=["random", "synchronized", "staggered"])
    p_cmp.add_argument("--kernel", default="lightweight")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--isolate-noise", action="store_true")
    p_cmp.add_argument("--faults", metavar="SPEC", default=None,
                       help="fault-injection spec, e.g. "
                            "'drop=0.01,timeout=1ms' or a planted "
                            "one-off delay 'one_off=3:5ms:1ms' "
                            "(rank:start:duration; 'none' = reliable)")
    p_cmp.add_argument("--critical-path", action="store_true",
                       help="record dependency edges and print the "
                            "critical-path attribution + quiet-vs-noisy "
                            "diff (who stole the makespan)")
    add_topology_flags(p_cmp)
    add_obs_flags(p_cmp)

    p_sts = sub.add_parser(
        "stats", help="one comparison with telemetry on; print the "
                      "metrics registry")
    p_sts.add_argument("--app", default="bsp", choices=workload_names())
    p_sts.add_argument("--nodes", type=int, default=16)
    p_sts.add_argument("--pattern", default="2.5pct@10Hz")
    p_sts.add_argument("--kernel", default="lightweight")
    p_sts.add_argument("--seed", type=int, default=0)
    p_sts.add_argument("--faults", metavar="SPEC", default=None)
    p_sts.add_argument("--sim-only", action="store_true",
                       help="print only the deterministic sim-scoped "
                            "metrics (no wall-clock values)")
    p_sts.add_argument("--json", action="store_true",
                       help="emit the stats as machine-readable JSON "
                            "(config, slowdown, metrics snapshot)")
    p_sts.add_argument("--trace", metavar="PATH", default=None,
                       help="also write a Chrome trace-event JSON")
    p_sts.add_argument("--trace-categories", metavar="CATS", default=None)
    p_sts.set_defaults(metrics=True)

    p_chr = sub.add_parser("characterize",
                           help="measure a kernel's noise signature")
    p_chr.add_argument("--kernel", default="commodity-linux")
    p_chr.add_argument("--pattern", default="quiet",
                       help="extra injected noise (default none)")
    p_chr.add_argument("--nodes", type=int, default=8)
    p_chr.add_argument("--seconds", type=float, default=2.0)
    p_chr.add_argument("--seed", type=int, default=0)

    p_lnt = sub.add_parser(
        "lint", help="run detlint, the determinism/sim-protocol "
                     "static analyzer, over a source tree")
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p_lnt)

    p_srv = sub.add_parser(
        "serve", help="run the experiment server (sweep-as-a-service)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8750,
                       help="listen port (0 = ephemeral)")
    p_srv.add_argument("--workers", type=int, default=0, metavar="N",
                       help="worker processes (default 0 = one per CPU)")
    p_srv.add_argument("--cache", metavar="DIR", default=None,
                       help="shared sharded result cache directory "
                            "(safe to share with CLI sweeps)")
    p_srv.add_argument("--metrics-json", metavar="PATH", default=None,
                       help="write the /metrics document here on shutdown")
    p_srv.add_argument("--log-json", metavar="PATH", default=None,
                       help="append structured JSON operation logs "
                            "(request/job/point events with correlation "
                            "ids) to PATH")

    p_sub = sub.add_parser(
        "submit", help="submit a compare/sweep job to a running server")
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, default=8750)
    p_sub.add_argument("--compare", action="store_true",
                       help="submit a single comparison instead of a sweep "
                            "(uses the first --nodes / --patterns entry)")
    p_sub.add_argument("--app", default="bsp", choices=workload_names())
    p_sub.add_argument("--nodes", default="4,16,64",
                       help="comma-separated node counts")
    p_sub.add_argument("--patterns", default="2.5pct@10Hz,2.5pct@1000Hz",
                       help="comma-separated noise patterns")
    p_sub.add_argument("--kernel", default="lightweight")
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument("--faults", metavar="SPEC", default=None)
    p_sub.add_argument("--csv", metavar="PATH")
    p_sub.add_argument("--trace", metavar="PATH", default=None,
                       help="request an end-to-end request trace and "
                            "write the stitched Perfetto document "
                            "(server phases + worker sim spans) to PATH")

    p_top = sub.add_parser(
        "top", help="live dashboard for a running experiment server")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=8750)
    p_top.add_argument("--window", type=float, default=30.0, metavar="S",
                       help="rolling-rate window in seconds (default 30)")
    p_top.add_argument("--interval", type=float, default=2.0, metavar="S",
                       help="refresh interval in seconds (default 2)")
    p_top.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="stop after N frames (default 0 = forever)")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame and exit "
                            "(same as --iterations 1)")

    p_swp = sub.add_parser("sweep", help="scaling sweep with baselines")
    p_swp.add_argument("--app", default="bsp", choices=workload_names())
    p_swp.add_argument("--nodes", default="4,16,64",
                       help="comma-separated node counts")
    p_swp.add_argument("--patterns", default="2.5pct@10Hz,2.5pct@1000Hz",
                       help="comma-separated noise patterns")
    p_swp.add_argument("--kernel", default="lightweight")
    p_swp.add_argument("--seed", type=int, default=0)
    p_swp.add_argument("--faults", metavar="SPEC", default=None,
                       help="fault-injection spec applied to every point")
    p_swp.add_argument("--csv", metavar="PATH")
    add_topology_flags(p_swp)
    add_execution_flags(p_swp)
    add_obs_flags(p_swp)
    return parser


def _apply_execution_flags(args: argparse.Namespace) -> None:
    """Point the harness execution policy at the CLI's --workers/--cache."""
    from .harness import set_execution_policy

    set_execution_policy(workers=args.workers, cache=args.cache)


def _apply_obs_flags(args: argparse.Namespace) -> None:
    """Configure process-wide telemetry from --metrics/--trace flags."""
    from .errors import ConfigError
    from .obs import runtime as _obs

    trace = getattr(args, "trace", None)
    categories = getattr(args, "trace_categories", None)
    if categories and not trace:
        raise ConfigError("--trace-categories requires --trace PATH")
    metrics_json = getattr(args, "metrics_json", None)
    if getattr(args, "metrics", False) or trace or metrics_json:
        _obs.configure(metrics=True, trace=trace or None,
                       trace_categories=categories)
    log_json = getattr(args, "log_json", None)
    if log_json:
        from .obs import oplog as _oplog

        _oplog.configure(path=log_json)


def _finish_obs(args: argparse.Namespace, out: _t.TextIO) -> None:
    """Flush trace / metrics-JSON files (if requested) with receipts."""
    if getattr(args, "trace", None):
        from .obs import runtime as _obs

        path, n = _obs.write_trace()
        out.write(f"trace: {n} events written to {path}\n")
    metrics_json = getattr(args, "metrics_json", None)
    if metrics_json:
        import json

        from .obs import runtime as _obs

        snap = _obs.registry().snapshot()
        with open(metrics_json, "w") as f:
            json.dump(snap, f, indent=2, sort_keys=True)
            f.write("\n")
        out.write(f"metrics: {len(snap)} series written to "
                  f"{metrics_json}\n")


def _cmd_list(out: _t.TextIO) -> int:
    from .noise import pattern_names

    out.write("experiments: " + " ".join(experiment_ids()) + "\n")
    out.write("workloads:   " + " ".join(workload_names()) + "\n")
    out.write("kernels:     lightweight commodity-linux tuned-linux\n")
    out.write("networks:    seastar infiniband gige\n")
    out.write("patterns:    " + " ".join(pattern_names())
              + "  (grammar: <pct>pct@<freq>Hz[poisson])\n")
    return 0


def _cmd_run(args: argparse.Namespace, out: _t.TextIO) -> int:
    _apply_execution_flags(args)
    _apply_obs_flags(args)
    report = harness_run_experiment(args.experiment.upper(), args.scale)
    out.write(report.render(include_metrics=args.metrics))
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(report.csv())
        out.write(f"csv written to {args.csv}\n")
    _finish_obs(args, out)
    return 0 if report.passed else 1


def _cmd_all(args: argparse.Namespace, out: _t.TextIO) -> int:
    _apply_execution_flags(args)
    _apply_obs_flags(args)
    reports = harness_run_all(args.scale,
                              progress=lambda s: out.write(s + "\n"))
    out.write("\n" + render_summary(reports))
    if args.markdown:
        with open(args.markdown, "w") as f:
            f.write(render_markdown(reports, scale=args.scale))
        out.write(f"report written to {args.markdown}\n")
    if args.metrics:
        from .obs import runtime as _obs

        out.write("\nmetrics:\n" + _obs.registry().render())
    _finish_obs(args, out)
    return 0 if all(r.passed for r in reports.values()) else 1


def _parse_collectives(spec: str | None) -> dict[str, str] | None:
    """Parse ``--collectives allreduce=two-level,barrier=two-level``."""
    if spec is None:
        return None
    from .errors import ConfigError

    table: dict[str, str] = {}
    for item in spec.split(","):
        op, eq, alg = item.strip().partition("=")
        if not eq or not op or not alg:
            raise ConfigError(
                f"bad --collectives entry {item!r}: expected op=algorithm, "
                "e.g. allreduce=two-level")
        table[op] = alg
    return table


def _cmd_compare(args: argparse.Namespace, out: _t.TextIO) -> int:
    _apply_obs_flags(args)
    cmp = run_with_baseline(ExperimentConfig(
        app=args.app, nodes=args.nodes, noise_pattern=args.pattern,
        alignment=args.alignment, kernel=args.kernel, seed=args.seed,
        isolate_noise=args.isolate_noise, faults=args.faults,
        critical_path=args.critical_path, topology=args.topology,
        shape=args.shape, collectives=_parse_collectives(args.collectives)))
    sd = cmp.slowdown
    out.write(format_table(
        ["app", "nodes", "pattern", "quiet ms", "noisy ms", "slowdown %",
         "amplification", "verdict"],
        [[args.app, args.nodes, args.pattern,
          round(cmp.quiet.makespan_ns / 1e6, 3),
          round(cmp.noisy.makespan_ns / 1e6, 3),
          round(sd.slowdown_percent, 2), round(sd.amplification, 2),
          sd.verdict]]))
    faults = cmp.noisy.meta.get("faults")
    if faults:
        out.write(f"faults ({faults['plan']}): "
                  f"{faults['messages_dropped']} dropped, "
                  f"{faults.get('total_retries', 0)} retries, "
                  f"{faults['duplicates_injected']} duplicated, "
                  f"{faults.get('total_duplicates_suppressed', 0)} "
                  "suppressed\n")
    if args.critical_path:
        from .obs.critpath import (
            diff_critical_paths,
            format_critical_path,
            format_diff,
        )

        noisy_cp = cmp.noisy.meta["critical_path"]
        diff = diff_critical_paths(cmp.quiet.meta["critical_path"],
                                   noisy_cp)
        out.write("\n" + format_critical_path(noisy_cp) + "\n")
        out.write("\n" + format_diff(diff) + "\n")
    if args.metrics:
        from .obs import runtime as _obs

        out.write("\nmetrics:\n" + _obs.registry().render())
    _finish_obs(args, out)
    return 0


def _cmd_stats(args: argparse.Namespace, out: _t.TextIO) -> int:
    from .obs import runtime as _obs

    _apply_obs_flags(args)  # metrics defaults to True for `stats`
    cmp = run_with_baseline(ExperimentConfig(
        app=args.app, nodes=args.nodes, noise_pattern=args.pattern,
        kernel=args.kernel, seed=args.seed, faults=args.faults))
    if args.json:
        import json

        doc = {
            "config": {"app": args.app, "nodes": args.nodes,
                       "pattern": args.pattern, "kernel": args.kernel,
                       "seed": args.seed, "faults": args.faults},
            "quiet_makespan_ns": cmp.quiet.makespan_ns,
            "noisy_makespan_ns": cmp.noisy.makespan_ns,
            "slowdown_percent": cmp.slowdown.slowdown_percent,
            "amplification": cmp.slowdown.amplification,
            "metrics": _obs.registry().snapshot(sim_only=args.sim_only),
        }
        out.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    else:
        out.write(f"{args.app} x{args.nodes} pattern={args.pattern} "
                  f"kernel={args.kernel} seed={args.seed}: "
                  f"slowdown {cmp.slowdown.slowdown_percent:.2f}%\n\n")
        out.write(_obs.registry().render(sim_only=args.sim_only))
    _finish_obs(args, out)
    return 0


def _cmd_characterize(args: argparse.Namespace, out: _t.TextIO) -> int:
    import numpy as np

    from .analysis import find_peaks
    from .core import Machine, MachineConfig
    from .microbench import FTQBenchmark, PSNAPBenchmark, SelfishBenchmark
    from .noise import InjectionPlan
    from .sim import MS, ns_from_s

    injection = (None if args.pattern.strip().lower() in ("quiet", "none")
                 else InjectionPlan(args.pattern, seed=args.seed))
    machine = Machine(MachineConfig(n_nodes=args.nodes, kernel=args.kernel,
                                    injection=injection, seed=args.seed))
    window = ns_from_s(args.seconds)
    node = machine.nodes[0]

    ftq = FTQBenchmark(n_quanta=max(64, window // MS)).run(node, start_time=0)
    peaks = find_peaks(ftq.spectrum(), top=4)
    selfish = SelfishBenchmark(window_ns=window).run(node, start_time=0)
    psnap = PSNAPBenchmark(n_samples=512).run(machine)

    out.write(f"kernel {args.kernel!r}, {args.nodes} nodes, "
              f"{args.seconds:.1f} s window, pattern={args.pattern}\n\n")
    out.write(f"FTQ (node 0): {100 * ftq.noise_fraction:.3f}% CPU lost, "
              f"count CoV {ftq.stats().cov:.5f}\n")
    from .analysis import sparkline
    counts = ftq.counts
    if counts.size > 72:
        edges = np.linspace(0, counts.size, 73).astype(int)
        counts = np.array([counts[a:b].min()
                           for a, b in zip(edges, edges[1:]) if b > a])
    out.write("  counts (dips = noise): " + sparkline(counts) + "\n")
    if peaks:
        out.write("  spectral peaks: "
                  + ", ".join(f"{p.frequency_hz:.1f} Hz" for p in peaks)
                  + "\n")
    else:
        out.write("  spectral peaks: none (flat)\n")
    durs = selfish.durations_ns()
    out.write(f"selfish (node 0): {selfish.count} detours >= 1 us; ")
    if selfish.count:
        out.write(f"median {float(np.median(durs)) / 1e3:.1f} us, "
                  f"max {int(durs.max()) / 1e3:.1f} us\n")
    else:
        out.write("none detected\n")
    stats = psnap.machine_stats()
    out.write(f"PSNAP fleet: per-node noise {100 * stats.minimum:.3f}% .. "
              f"{100 * stats.maximum:.3f}% "
              f"(imbalance {psnap.imbalance_ratio():.2f}x)\n")
    worst = psnap.noisiest_nodes(3)
    out.write("  noisiest nodes: "
              + ", ".join(f"{n} ({100 * f:.3f}%)" for n, f in worst) + "\n")
    return 0



def _cmd_serve(args: argparse.Namespace, out: _t.TextIO) -> int:
    import asyncio
    import json
    import signal

    from .obs import runtime as _obs
    from .serve import ExperimentServer

    server = ExperimentServer(workers=args.workers, cache=args.cache)
    server.warm()  # fork workers before the event loop starts
    _obs.configure(metrics=True)
    if args.log_json:
        from .obs import oplog as _oplog

        _oplog.configure(path=args.log_json)
        out.write(f"logging JSON events to {args.log_json}\n")

    def _terminate(signum: int, frame: _t.Any) -> None:
        # Graceful shutdown on SIGTERM too: non-interactive shells
        # start background jobs with SIGINT ignored (POSIX), so a CI
        # step's plain `kill` must also take the metrics-dump path.
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)

    async def _main() -> None:
        srv = await server.start(args.host, args.port)
        addr = srv.sockets[0].getsockname()
        out.write(f"serving on http://{addr[0]}:{addr[1]} "
                  f"(workers={server.executor.workers}, "
                  f"cache={args.cache or 'off'})\n")
        async with srv:
            await srv.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        out.write("shutting down\n")
    finally:
        server.close()
        if args.metrics_json:
            with open(args.metrics_json, "w") as f:
                json.dump(server.metrics_doc(), f, indent=2, sort_keys=True)
                f.write("\n")
            out.write(f"metrics written to {args.metrics_json}\n")
    return 0


def _sweep_table(records: list[dict[str, _t.Any]], app: str,
                 out: _t.TextIO, csv: str | None) -> None:
    """The sweep result table (shared by ``sweep`` and ``submit``)."""
    from .analysis import format_csv

    headers = ["app", "nodes", "pattern", "makespan ms", "slowdown %",
               "amplification"]
    rows = []
    for r in records:
        rows.append([r["app"], r["nodes"], r["pattern"],
                     round(r["makespan_ns"] / 1e6, 3),
                     round(r.get("slowdown_pct", 0.0), 2),
                     round(r["amplification"], 2)
                     if "amplification" in r else None])
    out.write(format_table(headers, rows, title=f"sweep: {app}"))
    if csv:
        keys = sorted({k for r in records for k in r})
        with open(csv, "w") as f:
            f.write(format_csv(keys, [[r.get(k) for k in keys]
                                      for r in records]))
        out.write(f"csv written to {csv}\n")


def _cmd_submit(args: argparse.Namespace, out: _t.TextIO) -> int:
    from .serve import ServeClient, job_records

    nodes = [int(x) for x in args.nodes.split(",") if x]
    patterns = [x.strip() for x in args.patterns.split(",") if x.strip()]
    job: dict[str, _t.Any] = {"app": args.app, "kernel": args.kernel,
                              "seed": args.seed}
    if args.faults:
        job["faults"] = args.faults
    if args.compare:
        job.update(kind="compare", nodes=nodes[0], pattern=patterns[0])
    else:
        job.update(kind="sweep", nodes=nodes, patterns=patterns)
    if args.trace:
        job["trace"] = True

    client = ServeClient(args.host, args.port)
    records = []
    stats = {}

    def _events() -> _t.Iterator[dict[str, _t.Any]]:
        for event in client.submit(job):
            if event.get("event") == "point":
                out.write(f"{event['label']} ({event['outcome']}, "
                          f"{event['elapsed_s']:.2f}s)\n")
            elif event.get("event") == "error":
                out.write(f"{event['label']} failed ({event['kind']}): "
                          f"{event['message']}\n")
            elif event.get("event") == "trace" and args.trace:
                import json

                with open(args.trace, "w") as f:
                    json.dump(event["trace"], f, sort_keys=True)
                    f.write("\n")
                out.write(f"trace: {event['points']} points "
                          f"(request {event.get('request_id', '?')}) "
                          f"written to {args.trace}\n")
            yield event

    records, stats = job_records(_events())
    _sweep_table(records, args.app, out, args.csv)
    out.write(f"server: {stats.get('simulated', 0)} simulated, "
              f"{stats.get('cached', 0)} cached, "
              f"{stats.get('deduped', 0)} deduped, "
              f"{stats.get('errors', 0)} errors "
              f"in {stats.get('wall_s', 0.0):.2f}s\n")
    return 1 if stats.get("errors") else 0


def _cmd_top(args: argparse.Namespace, out: _t.TextIO) -> int:
    from .serve import ServeClient
    from .serve.top import run_top

    iterations: int | None = 1 if args.once else (args.iterations or None)
    clear = hasattr(out, "isatty") and out.isatty()
    return run_top(ServeClient(args.host, args.port, timeout=10.0), out,
                   window=args.window, interval=args.interval,
                   iterations=iterations, clear=clear)


def _cmd_sweep(args: argparse.Namespace, out: _t.TextIO) -> int:
    from .core import sweep_records

    _apply_obs_flags(args)

    nodes = [int(x) for x in args.nodes.split(",") if x]
    patterns = [x.strip() for x in args.patterns.split(",") if x.strip()]
    base = ExperimentConfig(app=args.app, kernel=args.kernel, seed=args.seed,
                            faults=args.faults, topology=args.topology,
                            shape=args.shape,
                            collectives=_parse_collectives(args.collectives))
    records = sweep_records(base, nodes=nodes, patterns=patterns,
                            progress=lambda s: out.write(s + "\n"),
                            workers=args.workers, cache=args.cache)
    _sweep_table(records, args.app, out, args.csv)
    if args.metrics:
        from .obs import runtime as _obs

        out.write("\nmetrics:\n" + _obs.registry().render())
    _finish_obs(args, out)
    return 0


def main(argv: _t.Sequence[str] | None = None,
         out: _t.TextIO | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "all":
            return _cmd_all(args, out)
        if args.command == "compare":
            return _cmd_compare(args, out)
        if args.command == "stats":
            return _cmd_stats(args, out)
        if args.command == "characterize":
            return _cmd_characterize(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "submit":
            try:
                return _cmd_submit(args, out)
            except ConnectionError as exc:
                out.write(f"error: cannot reach server at "
                          f"{args.host}:{args.port}: {exc}\n")
                return 2
        if args.command == "top":
            try:
                return _cmd_top(args, out)
            except KeyboardInterrupt:
                return 0
        if args.command == "lint":
            from .lint.cli import run_lint

            # Diagnostics go to stderr only when the report goes to
            # the real stdout, so `repro lint --json | jq` sees one
            # clean document; a captured `out` (tests) keeps both.
            err = sys.stderr if out is sys.stdout else out
            return run_lint(args, out, err)
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 2
    raise AssertionError("unreachable")  # pragma: no cover
