"""The asyncio experiment server: sweep-as-a-service.

:class:`ExperimentServer` turns the library's deterministic simulation
points into a shared service: it accepts compare/sweep jobs as JSON
(``POST /v1/jobs``), expands them through the
:mod:`~repro.serve.planner`, fans points out over a persistent
process-pool worker tier (the async seam around
:class:`~repro.parallel.SweepExecutor`), and streams results back as
chunked NDJSON while points finish.  Identical in-flight points across
concurrent requests collapse onto one simulation
(:class:`~repro.serve.inflight.InflightRegistry`); completed points
are served from the sharded on-disk
:class:`~repro.parallel.ShardedResultCache`, which the CLI can share.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"ok": true, "version": ..., "workers": N}``.  With
    ``?ready=1`` it is a *readiness* probe instead: 503 until the
    persistent worker pool is warm.
``GET /metrics``
    Operational metrics.  JSON by default (backward compatible);
    Prometheus text exposition with ``?format=prom`` or
    ``Accept: text/plain``.  ``?window=30`` adds a ``window`` section
    of rolling rates (req/s, points/s, hit rate, latency quantiles)
    computed from an in-process snapshot ring — no external scrape
    state needed.
``GET /v1/logs``
    The structured operational log ring (:mod:`repro.obs.oplog`),
    filterable by ``level`` (floor), ``event`` (dotted prefix),
    ``since`` (sequence number), ``limit``.
``POST /v1/jobs``
    One compare/sweep job; the response streams ``point`` /
    ``record`` / ``error`` events and a terminal ``stats`` line (see
    :mod:`~repro.serve.protocol`).  With ``"trace": true`` in the job,
    a ``trace`` event carrying the stitched per-request Perfetto
    document (:mod:`repro.obs.reqtrace`) precedes ``stats``.

Correlation: every request is assigned ``request_id`` (``r-000001``,
per-server), jobs get ``job_id``, points ``point_key`` — pushed as
:mod:`repro.obs.oplog` context so every log line emitted while serving
a request carries its ids, and all error responses echo
``request_id``.

The server always owns a host-scope :class:`MetricsRegistry` — its
``/metrics`` documents are never empty regardless of the process-wide
:mod:`repro.obs` switchboard (which the CLI may leave off).

Determinism: every point runs through the exact
:func:`~repro.parallel.executor._run_point` worker entry the CLI
uses, so served records are byte-identical (as sorted JSON) to
``repro sweep`` output for the same job — the property
``tests/test_serve.py`` pins down.  The stitched request trace is
likewise deterministic: byte-identical between ``workers=1`` and
``workers=2`` servers.
"""

from __future__ import annotations

import asyncio
import threading
import time
import typing as _t
from collections import deque

from .. import __version__
from ..errors import ReproError
from ..obs import oplog as _oplog
from ..obs import runtime as _obs
from ..obs.metrics import HOST, MetricsRegistry
from ..obs.prom import render as _prom_render
from ..obs.reqtrace import RequestTrace
from ..parallel import SweepExecutor
from ..parallel.cache import MISS, ResultCache, config_key
from .inflight import InflightRegistry
from .planner import Job, PointPlan, parse_job
from .protocol import (
    ChunkedWriter,
    ProtocolError,
    Request,
    read_request,
    split_query,
    write_json_response,
    write_text_response,
)

__all__ = ["ExperimentServer", "BackgroundServer"]

#: Request wall-time histogram bounds (seconds).
REQUEST_WALL_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0)

#: Snapshot-ring length x ~1 s sampling cadence = the largest usable
#: ``?window=N`` (seconds of history held in memory).
SNAPSHOT_RING_CAP = 120
SNAPSHOT_INTERVAL_S = 1.0

_ROUTES = {"/healthz": "healthz", "/metrics": "metrics",
           "/v1/logs": "logs", "/v1/jobs": "jobs",
           "/v1/compare": "jobs", "/v1/sweep": "jobs"}


def _bucket_quantile(dbuckets: _t.Sequence[float],
                     bounds: _t.Sequence[float],
                     count: float, q: float) -> float:
    """Interpolated quantile from delta histogram buckets."""
    target = q * count
    cum = 0.0
    for i, c in enumerate(dbuckets):
        if c > 0 and cum + c >= target:
            lo = 0.0 if i == 0 else bounds[i - 1]
            hi = bounds[i] if i < len(bounds) else bounds[-1]
            return round(lo + (hi - lo) * ((target - cum) / c), 6)
        cum += c
    return round(bounds[-1], 6)


class _SnapshotRing:
    """Rolling counter snapshots so ``/metrics?window=N`` can answer
    rate questions (req/s, points/s, hit rate over the last N seconds)
    from process memory alone — cumulative counters need two readings
    to become a rate, and this ring is the second reading."""

    def __init__(self, cap: int = SNAPSHOT_RING_CAP) -> None:
        self._ring: deque[dict[str, _t.Any]] = deque(maxlen=cap)

    def sample(self, server: "ExperimentServer") -> None:
        stats = server.stats
        buckets = [0] * (len(REQUEST_WALL_BOUNDS) + 1)
        lat_count = 0
        for name, _labels, metric in server.registry.items():
            if name == "serve.http_request_seconds":
                for i, c in enumerate(metric.bucket_counts):
                    buckets[i] += c
                lat_count += metric.count
        # Host wall clock for rate denominators; operational only.
        self._ring.append({
            "ts": time.monotonic(),  # detlint: disable=DET001 -- host-scoped rate sampling
            "requests": stats["requests_total"],
            "failed": stats["requests_failed"],
            "points": stats["points_total"],
            "hits": stats["points_cached"] + stats["points_deduped"],
            "point_errors": stats["point_errors"],
            "lat_buckets": buckets,
            "lat_count": lat_count,
        })

    def rates(self, window_s: float,
              server: "ExperimentServer") -> dict[str, _t.Any]:
        """Delta rates over (up to) the trailing ``window_s`` seconds."""
        self.sample(server)  # the "now" reading
        now = self._ring[-1]
        base = self._ring[0]
        for doc in reversed(self._ring):
            if doc is now:
                continue
            if now["ts"] - doc["ts"] >= window_s:
                base = doc
                break
        dt = now["ts"] - base["ts"]
        out: dict[str, _t.Any] = {
            "window_s": round(dt, 3),
            "samples": len(self._ring),
            "requests": now["requests"] - base["requests"],
            "points": now["points"] - base["points"],
        }
        if dt <= 0:
            return out
        points = out["points"]
        out["req_per_s"] = round(out["requests"] / dt, 3)
        out["points_per_s"] = round(points / dt, 3)
        out["hit_rate"] = (round((now["hits"] - base["hits"]) / points, 4)
                           if points else None)
        out["error_rate"] = round(
            (now["failed"] - base["failed"]
             + now["point_errors"] - base["point_errors"])
            / max(out["requests"], 1), 4)
        dbuckets = [a - b for a, b in zip(now["lat_buckets"],
                                          base["lat_buckets"])]
        dcount = now["lat_count"] - base["lat_count"]
        if dcount > 0:
            out["request_p50_s"] = _bucket_quantile(
                dbuckets, REQUEST_WALL_BOUNDS, dcount, 0.5)
            out["request_p99_s"] = _bucket_quantile(
                dbuckets, REQUEST_WALL_BOUNDS, dcount, 0.99)
        return out


class ExperimentServer:
    """Shared, deduplicating experiment service over a process pool.

    Parameters
    ----------
    workers:
        Worker processes (``None``/0 = one per CPU).
    cache:
        Shared result cache: a directory path (roots a
        :class:`~repro.parallel.ShardedResultCache`), a ready cache
        instance, or ``None`` to serve without disk reuse.
    """

    def __init__(self, *, workers: int | None = None,
                 cache: ResultCache | str | None = None) -> None:
        self.executor = SweepExecutor(workers=workers or 0, cache=cache,
                                      persistent=True)
        self.inflight = InflightRegistry()
        self.stats: dict[str, int] = {
            "requests_total": 0, "requests_failed": 0, "jobs_compare": 0,
            "jobs_sweep": 0, "points_total": 0, "points_simulated": 0,
            "points_cached": 0, "points_deduped": 0, "point_errors": 0,
        }
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.active_requests = 0
        #: Server-owned host-scope registry, fed unconditionally — the
        #: process-wide :mod:`repro.obs` switch being off must never
        #: blind the service's own ``/metrics``.
        self.registry = MetricsRegistry()
        self._snapshots = _SnapshotRing()
        self._sampler_task: asyncio.Task | None = None
        self._req_seq = 0

    # -- keys --------------------------------------------------------------
    def point_key(self, plan_or_cfg: _t.Any) -> str:
        """Content key for a point: identical to the cache's key, so
        in-flight dedup and disk reuse agree on point identity."""
        cfg = getattr(plan_or_cfg, "config", plan_or_cfg)
        cache = self.executor.cache
        if cache is not None:
            return cache.key(cfg)
        return config_key(cfg, salt=__version__)

    # -- lifecycle ---------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Readiness (vs liveness): the worker pool exists and has
        answered (:meth:`warm`), or a first job forced its creation."""
        return self.executor.pool_ready

    def warm(self) -> None:
        """Fork the pool workers now, from a quiet (single-threaded)
        context, before the event loop starts."""
        self.executor.warm()

    def close(self) -> None:
        self.executor.close()

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.Server:
        """Bind and return the listening :class:`asyncio.Server`."""
        srv = await asyncio.start_server(self._handle_connection,
                                         host, port)
        if self._sampler_task is None:
            self._sampler_task = asyncio.get_running_loop().create_task(
                self._sample_loop())
        _oplog.log("server.start", workers=self.executor.workers,
                   cached=self.executor.cache is not None)
        return srv

    async def _sample_loop(self) -> None:
        """Feed the snapshot ring ~1/s (cancelled with the loop)."""
        try:
            while True:
                self._snapshots.sample(self)
                await asyncio.sleep(SNAPSHOT_INTERVAL_S)
        except asyncio.CancelledError:  # pragma: no cover - teardown
            pass

    # -- point execution ---------------------------------------------------
    async def _simulate(self, cfg: _t.Any, *, trace: bool = False
                        ) -> tuple[_t.Any, str, float, dict[str, _t.Any]]:
        """Cache-or-pool execution of one point (the in-flight task body).

        Returns ``(result, outcome, elapsed_s, info)`` with outcome
        ``"cached"`` or ``"simulated"``; ``info`` carries the traced
        point's shipped spans (``trace`` / ``trace_dropped`` /
        ``worker_pid``), stripped from ``result.meta`` so cached blobs
        and downstream records stay clean.
        """
        cache = self.executor.cache
        if cache is not None:
            cached = await asyncio.to_thread(cache.get, cfg, MISS)
            if cached is not MISS:
                return cached, "cached", 0.0, {}
        self.queue_depth += 1
        self.queue_depth_peak = max(self.queue_depth_peak, self.queue_depth)
        try:
            fut = self.executor.submit_config(cfg, trace=trace)
            result, t0, t1 = await asyncio.wrap_future(fut)
        finally:
            self.queue_depth -= 1
        info: dict[str, _t.Any] = {}
        raw = result.meta.pop("trace", None)
        if raw is not None:
            info = {"trace": raw,
                    "trace_dropped": result.meta.pop("trace_dropped", 0),
                    "worker_pid": result.meta.pop("worker_pid", None)}
        else:
            result.meta.pop("worker_pid", None)
        if cache is not None:
            await asyncio.to_thread(cache.put, cfg, result)
        self.registry.histogram(
            "serve.point_simulate_seconds", scope=HOST,
            bounds=_obs.POINT_WALL_BOUNDS).observe(round(t1 - t0, 6))
        return result, "simulated", t1 - t0, info

    async def run_point(self, plan: PointPlan, *, trace: bool = False
                        ) -> tuple[_t.Any, str, float, dict[str, _t.Any]]:
        """One point with in-flight dedup: join or register, then await.

        The underlying task is registry-owned and shielded, so this
        request being cancelled never cancels a computation other
        subscribers are waiting on.
        """
        key = self.point_key(plan)
        with _oplog.context(point_key=key):
            task = self.inflight.join(key)
            if task is not None:
                result, _outcome, elapsed, info = await asyncio.shield(task)
                self.stats["points_deduped"] += 1
                self._count_point("deduped")
                _oplog.log("point.done", level="debug", outcome="deduped",
                           label=plan.label)
                return result, "deduped", elapsed, info
            task = self.inflight.register(
                key, lambda: self._simulate(plan.config, trace=trace))
            result, outcome, elapsed, info = await asyncio.shield(task)
            self.stats[f"points_{outcome}"] += 1
            self._count_point(outcome)
            _oplog.log("point.done", level="debug", outcome=outcome,
                       label=plan.label, elapsed_s=round(elapsed, 6),
                       worker_pid=info.get("worker_pid"))
            return result, outcome, elapsed, info

    def _count_point(self, outcome: str) -> None:
        self.stats["points_total"] += 1
        self.registry.counter("serve.points_total", scope=HOST,
                              outcome=outcome).inc()
        self.registry.gauge("serve.queue_depth_peak",
                            scope=HOST).track_max(self.queue_depth_peak)
        if _obs.metrics_enabled():
            # Back-compat: mirror into the process-wide registry the
            # PR 7 CLI flags expose.
            reg = _obs.registry()
            reg.counter("serve.points_total", scope="host",
                        outcome=outcome).inc()
            reg.gauge("serve.queue_depth_peak",
                      scope="host").track_max(self.queue_depth_peak)

    # -- job execution -----------------------------------------------------
    async def run_job(self, job: Job,
                      emit: _t.Callable[[dict[str, _t.Any]],
                                        _t.Awaitable[None]]) -> None:
        """Execute ``job``, streaming events through ``emit``.

        Events are emitted in completion order (``point``), as result
        rows become computable (``record``), once per traced job
        (``trace``), and once at the end (``stats``); see
        :mod:`~repro.serve.protocol`.
        """
        t0 = time.perf_counter()
        rt = RequestTrace(job.kind) if job.trace else None
        if rt is not None:
            rt.phase("parse")
            rt.phase("plan")
        plans = job.points()
        request_id = _oplog.current_context().get("request_id")
        _oplog.log("job.start", kind=job.kind, points=len(plans),
                   trace=job.trace)
        completed: dict[tuple, _t.Any] = {}
        emitted: set[tuple] = set()
        outcomes = {"simulated": 0, "cached": 0, "deduped": 0}
        point_errors: list[dict[str, _t.Any]] = []
        trace_dropped = 0
        if rt is not None:
            rt.phase("simulate")

        async def one(plan: PointPlan) -> tuple[PointPlan, _t.Any,
                                                str, float, dict]:
            result, outcome, elapsed, info = await self.run_point(
                plan, trace=job.trace)
            return plan, result, outcome, elapsed, info

        tasks = [asyncio.ensure_future(one(plan)) for plan in plans]
        by_task = dict(zip(tasks, plans))
        pending = set(tasks)
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED)
                for task in done:
                    plan = by_task[task]
                    try:
                        plan, result, outcome, elapsed, info = task.result()
                    except (Exception, asyncio.CancelledError) as exc:
                        err = {"label": plan.label,
                               "kind": type(exc).__name__,
                               "message": str(exc)}
                        point_errors.append(err)
                        self.stats["point_errors"] += 1
                        _oplog.log("point.error", level="error",
                                   label=plan.label,
                                   error=type(exc).__name__,
                                   message=str(exc))
                        await emit({"event": "error",
                                    "request_id": request_id, **err})
                        continue
                    completed[plan.key] = result
                    outcomes[outcome] += 1
                    if rt is not None:
                        if outcome == "deduped" \
                                and not rt.has_phase("dedup_wait"):
                            rt.phase("dedup_wait")
                        if info.get("trace") is not None:
                            rt.add_point(plan.label, info["trace"])
                            trace_dropped += info.get("trace_dropped", 0)
                    await emit({"event": "point", "key": list(plan.key),
                                "label": plan.label, "outcome": outcome,
                                "elapsed_s": round(elapsed, 6)})
                    records, _ = job.assemble(completed)
                    for record in records:
                        cell = (record["nodes"], record["pattern"])
                        if cell not in emitted:
                            emitted.add(cell)
                            await emit({"event": "record",
                                        "record": record})
        finally:
            for task in pending:
                task.cancel()

        _, missing = job.assemble(completed)
        for err in missing:
            point_errors.append(err)
            await emit({"event": "error", "request_id": request_id, **err})
        if rt is not None:
            rt.phase("stream")
            await emit({"event": "trace", "request_id": request_id,
                        "points": rt.n_points,
                        "dropped_events": trace_dropped,
                        "trace": rt.to_chrome()})
        wall_s = time.perf_counter() - t0
        await emit({"event": "stats", "kind": job.kind,
                    "points": len(plans), "records": len(emitted),
                    "simulated": outcomes["simulated"],
                    "cached": outcomes["cached"],
                    "deduped": outcomes["deduped"],
                    "errors": len(point_errors),
                    "wall_s": round(wall_s, 6)})
        self.registry.histogram("serve.job_wall_seconds", scope=HOST,
                                bounds=REQUEST_WALL_BOUNDS,
                                kind=job.kind).observe(round(wall_s, 6))
        _oplog.log("job.finished", kind=job.kind, points=len(plans),
                   records=len(emitted), errors=len(point_errors),
                   wall_s=round(wall_s, 6))
        if _obs.metrics_enabled():
            reg = _obs.registry()
            reg.histogram("serve.request_wall_s", scope="host",
                          bounds=REQUEST_WALL_BOUNDS).observe(
                              round(wall_s, 6))

    # -- metrics / logs documents ------------------------------------------
    def metrics_doc(self, *, window: float | None = None
                    ) -> dict[str, _t.Any]:
        """The JSON ``/metrics`` document.

        Always carries the ``serve`` counters and the server-owned
        ``registry`` snapshot (merged over the process-wide registry
        when that one is enabled); ``window`` adds rolling rates from
        the snapshot ring.
        """
        doc: dict[str, _t.Any] = {
            "serve": {**self.stats,
                      "inflight": len(self.inflight),
                      "inflight_joined": self.inflight.joined,
                      "queue_depth": self.queue_depth,
                      "queue_depth_peak": self.queue_depth_peak,
                      "active_requests": self.active_requests,
                      "workers": self.executor.workers},
            "version": __version__,
        }
        cache = self.executor.cache
        if cache is not None:
            doc["cache"] = {**cache.stats.as_dict(),
                            "entries": len(cache)}
        snap = self.registry.snapshot()
        if _obs.metrics_enabled():
            snap = {**_obs.registry().snapshot(), **snap}
        doc["registry"] = snap
        if window is not None:
            doc["window"] = self._snapshots.rates(window, self)
        return doc

    def prometheus_text(self) -> str:
        """``/metrics`` in Prometheus text exposition format."""
        counters: dict[str, _t.Any] = {
            f"serve.{k}": v for k, v in self.stats.items()}
        counters["serve.inflight_joined_total"] = self.inflight.joined
        counters["serve.inflight_registered_total"] = \
            self.inflight.registered
        gauges: dict[str, _t.Any] = {
            "serve.inflight": len(self.inflight),
            "serve.queue_depth": self.queue_depth,
            "serve.queue_depth_peak": self.queue_depth_peak,
            "serve.active_requests": self.active_requests,
            "serve.workers": self.executor.workers,
            "serve.ready": 1 if self.ready else 0,
        }
        cache = self.executor.cache
        if cache is not None:
            for k, v in cache.stats.as_dict().items():
                if isinstance(v, (int, float)):
                    counters[f"serve.cache_{k}"] = v
            gauges["serve.cache_entries"] = len(cache)
        return _prom_render(self.registry, extra_counters=counters,
                            extra_gauges=gauges)

    def logs_doc(self, params: _t.Mapping[str, str]) -> dict[str, _t.Any]:
        """The ``GET /v1/logs`` document (query params pre-split)."""
        log = _oplog.get()
        since = int(params.get("since", "0") or 0)
        limit = int(params.get("limit", "") or 200)
        events = log.events(level=params.get("level") or None,
                            event=params.get("event") or None,
                            since_seq=since, limit=limit)
        return {"events": events, "count": len(events),
                "total": log.total, "dropped": log.dropped,
                "next_seq": events[-1]["seq"] if events else since}

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    write_json_response(writer, 400, {"error": str(exc)})
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: the loop is tearing down (stop during
                # keep-alive idle) and cancelled the close waiter — the
                # transport is closed either way, end quietly.
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns keep-alive.

        Every request gets a per-server ``request_id`` pushed as oplog
        context, a route/status counter, and a latency observation; all
        error bodies echo the ``request_id``.
        """
        self._req_seq += 1
        request_id = f"r-{self._req_seq:06d}"
        self.stats["requests_total"] += 1
        self.active_requests += 1
        t0 = time.perf_counter()
        path, params = split_query(request.path)
        route = _ROUTES.get(path, "other")
        status = 200
        with _oplog.context(request_id=request_id):
            _oplog.log("request.start", method=request.method,
                       path=request.path, route=route)
            try:
                if request.method == "GET" and path == "/healthz":
                    doc: dict[str, _t.Any] = {
                        "ok": True, "version": __version__,
                        "workers": self.executor.workers}
                    if params.get("ready") not in (None, "0", "false"):
                        doc["ready"] = self.ready
                        if not self.ready:
                            doc["ok"] = False
                            doc["request_id"] = request_id
                            status = 503
                    write_json_response(writer, status, doc)
                    return True
                if request.method == "GET" and path == "/metrics":
                    accept = request.headers.get("accept", "")
                    fmt = params.get("format", "")
                    if fmt in ("prom", "prometheus", "text") or (
                            not fmt and "text/plain" in accept):
                        write_text_response(writer, 200,
                                            self.prometheus_text())
                        return True
                    window: float | None = None
                    if params.get("window"):
                        try:
                            window = float(params["window"])
                        except ValueError:
                            status = 400
                            self.stats["requests_failed"] += 1
                            write_json_response(writer, 400, {
                                "error": "window must be a number",
                                "request_id": request_id})
                            return True
                    write_json_response(writer, 200,
                                        self.metrics_doc(window=window))
                    return True
                if request.method == "GET" and path == "/v1/logs":
                    try:
                        doc = self.logs_doc(params)
                    except (ValueError, ReproError) as exc:
                        status = 400
                        self.stats["requests_failed"] += 1
                        write_json_response(writer, 400, {
                            "error": str(exc), "request_id": request_id})
                        return True
                    write_json_response(writer, 200, doc)
                    return True
                if request.method == "POST" and path in (
                        "/v1/jobs", "/v1/compare", "/v1/sweep"):
                    doc = request.json()
                    if path != "/v1/jobs" and isinstance(doc, dict):
                        doc.setdefault("kind", path.rsplit("/", 1)[-1])
                    try:
                        job = parse_job(doc)
                    except ReproError as exc:
                        status = 400
                        self.stats["requests_failed"] += 1
                        _oplog.log("request.reject", level="warning",
                                   error=str(exc))
                        write_json_response(writer, 400, {
                            "error": str(exc), "request_id": request_id})
                        return True
                    self.stats[f"jobs_{job.kind}"] += 1
                    job_id = (f"j-{self.stats['jobs_compare'] + self.stats['jobs_sweep']:06d}")
                    if _obs.metrics_enabled():
                        _obs.registry().counter("serve.requests_total",
                                                scope="host",
                                                kind=job.kind).inc()
                    stream = ChunkedWriter(writer)
                    with _oplog.context(job_id=job_id):
                        await self.run_job(job, stream.send)
                    await stream.finish()
                    return True
                status = 404
                self.stats["requests_failed"] += 1
                _oplog.log("request.reject", level="warning",
                           error=f"no route for {request.method} {path}")
                write_json_response(
                    writer, 404,
                    {"error": f"no route for {request.method} "
                              f"{request.path}",
                     "request_id": request_id})
                return True
            except ProtocolError as exc:
                status = 400
                self.stats["requests_failed"] += 1
                _oplog.log("request.reject", level="warning",
                           error=str(exc))
                write_json_response(writer, 400, {
                    "error": str(exc), "request_id": request_id})
                return False
            except (ConnectionError, asyncio.IncompleteReadError):
                status = 499  # client went away mid-response
                self.stats["requests_failed"] += 1
                _oplog.log("request.aborted", level="warning")
                raise
            except Exception as exc:  # a bug, not a bad request
                status = 500
                self.stats["requests_failed"] += 1
                self.registry.counter("serve.http_exceptions_total",
                                      scope=HOST,
                                      kind=type(exc).__name__).inc()
                _oplog.log("request.error", level="error",
                           error=type(exc).__name__, message=str(exc))
                try:
                    write_json_response(writer, 500, {
                        "error": f"{type(exc).__name__}: {exc}",
                        "request_id": request_id})
                except ConnectionError:
                    pass
                return False
            finally:
                self.active_requests -= 1
                elapsed = time.perf_counter() - t0
                self.registry.counter("serve.http_requests_total",
                                      scope=HOST, route=route,
                                      status=str(status)).inc()
                self.registry.histogram("serve.http_request_seconds",
                                        scope=HOST,
                                        bounds=REQUEST_WALL_BOUNDS,
                                        route=route).observe(
                                            round(elapsed, 6))
                _oplog.log("request.end", status=status,
                           elapsed_s=round(elapsed, 6))


class BackgroundServer:
    """An :class:`ExperimentServer` on a daemon thread (tests, CLI
    load tools).

    Spawns the worker pool *before* the event loop thread starts (so
    processes fork from a quiet interpreter), binds an ephemeral port,
    and exposes it as :attr:`address`.  Use as a context manager::

        with BackgroundServer(workers=2, cache=dir) as bg:
            client = ServeClient(*bg.address)

    ``warm=False`` skips the eager pool spawn — the server starts
    not-ready (``/healthz?ready=1`` is 503) until its first job forces
    pool creation.
    """

    def __init__(self, *, workers: int | None = None,
                 cache: ResultCache | str | None = None,
                 host: str = "127.0.0.1", warm: bool = True) -> None:
        self.server = ExperimentServer(workers=workers, cache=cache)
        self.host = host
        self.port: int | None = None
        self._warm = warm
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        # Guards the loop-thread/caller-thread handshake state
        # (_loop/_stop/port): the loop thread publishes them before
        # setting _ready, but __exit__ and address can also race a
        # server that is still starting (or crashed mid-start).
        self._state_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        with self._state_lock:
            port = self.port
        if port is None:
            raise RuntimeError("server is not running")
        return self.host, port

    def __enter__(self) -> "BackgroundServer":
        if self._warm:
            self.server.warm()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        with self._state_lock:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
        srv = await self.server.start(self.host, 0)
        with self._state_lock:
            self.port = srv.sockets[0].getsockname()[1]
        self._ready.set()
        async with srv:
            await self._stop.wait()

    def __exit__(self, *exc: _t.Any) -> None:
        with self._state_lock:
            loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.server.close()
