"""The asyncio experiment server: sweep-as-a-service.

:class:`ExperimentServer` turns the library's deterministic simulation
points into a shared service: it accepts compare/sweep jobs as JSON
(``POST /v1/jobs``), expands them through the
:mod:`~repro.serve.planner`, fans points out over a persistent
process-pool worker tier (the async seam around
:class:`~repro.parallel.SweepExecutor`), and streams results back as
chunked NDJSON while points finish.  Identical in-flight points across
concurrent requests collapse onto one simulation
(:class:`~repro.serve.inflight.InflightRegistry`); completed points
are served from the sharded on-disk
:class:`~repro.parallel.ShardedResultCache`, which the CLI can share.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"ok": true, "version": ..., "workers": N}``.
``GET /metrics``
    Operational counters (requests, points by outcome, dedupe and
    cache effectiveness, queue depth) plus the
    :mod:`repro.obs` registry snapshot when metrics are enabled.
``POST /v1/jobs``
    One compare/sweep job; the response streams ``point`` /
    ``record`` / ``error`` events and a terminal ``stats`` line (see
    :mod:`~repro.serve.protocol`).

Determinism: every point runs through the exact
:func:`~repro.parallel.executor._run_point` worker entry the CLI
uses, so served records are byte-identical (as sorted JSON) to
``repro sweep`` output for the same job — the property
``tests/test_serve.py`` pins down.
"""

from __future__ import annotations

import asyncio
import threading
import time
import typing as _t

from .. import __version__
from ..errors import ReproError
from ..obs import runtime as _obs
from ..parallel import SweepExecutor
from ..parallel.cache import MISS, ResultCache, config_key
from .inflight import InflightRegistry
from .planner import Job, PointPlan, parse_job
from .protocol import (
    ChunkedWriter,
    ProtocolError,
    Request,
    read_request,
    write_json_response,
)

__all__ = ["ExperimentServer", "BackgroundServer"]

#: Request wall-time histogram bounds (seconds).
REQUEST_WALL_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0)


class ExperimentServer:
    """Shared, deduplicating experiment service over a process pool.

    Parameters
    ----------
    workers:
        Worker processes (``None``/0 = one per CPU).
    cache:
        Shared result cache: a directory path (roots a
        :class:`~repro.parallel.ShardedResultCache`), a ready cache
        instance, or ``None`` to serve without disk reuse.
    """

    def __init__(self, *, workers: int | None = None,
                 cache: ResultCache | str | None = None) -> None:
        self.executor = SweepExecutor(workers=workers or 0, cache=cache,
                                      persistent=True)
        self.inflight = InflightRegistry()
        self.stats: dict[str, int] = {
            "requests_total": 0, "requests_failed": 0, "jobs_compare": 0,
            "jobs_sweep": 0, "points_total": 0, "points_simulated": 0,
            "points_cached": 0, "points_deduped": 0, "point_errors": 0,
        }
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.active_requests = 0

    # -- keys --------------------------------------------------------------
    def point_key(self, plan_or_cfg: _t.Any) -> str:
        """Content key for a point: identical to the cache's key, so
        in-flight dedup and disk reuse agree on point identity."""
        cfg = getattr(plan_or_cfg, "config", plan_or_cfg)
        cache = self.executor.cache
        if cache is not None:
            return cache.key(cfg)
        return config_key(cfg, salt=__version__)

    # -- lifecycle ---------------------------------------------------------
    def warm(self) -> None:
        """Fork the pool workers now, from a quiet (single-threaded)
        context, before the event loop starts."""
        self.executor.warm()

    def close(self) -> None:
        self.executor.close()

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.Server:
        """Bind and return the listening :class:`asyncio.Server`."""
        return await asyncio.start_server(self._handle_connection,
                                          host, port)

    # -- point execution ---------------------------------------------------
    async def _simulate(self, cfg: _t.Any
                        ) -> tuple[_t.Any, str, float]:
        """Cache-or-pool execution of one point (the in-flight task body).

        Returns ``(result, outcome, elapsed_s)`` with outcome
        ``"cached"`` or ``"simulated"``.
        """
        cache = self.executor.cache
        if cache is not None:
            cached = await asyncio.to_thread(cache.get, cfg, MISS)
            if cached is not MISS:
                return cached, "cached", 0.0
        self.queue_depth += 1
        self.queue_depth_peak = max(self.queue_depth_peak, self.queue_depth)
        try:
            fut = self.executor.submit_config(cfg)
            result, t0, t1 = await asyncio.wrap_future(fut)
        finally:
            self.queue_depth -= 1
        if cache is not None:
            await asyncio.to_thread(cache.put, cfg, result)
        return result, "simulated", t1 - t0

    async def run_point(self, plan: PointPlan
                        ) -> tuple[_t.Any, str, float]:
        """One point with in-flight dedup: join or register, then await.

        The underlying task is registry-owned and shielded, so this
        request being cancelled never cancels a computation other
        subscribers are waiting on.
        """
        key = self.point_key(plan)
        task = self.inflight.join(key)
        if task is not None:
            result, _outcome, elapsed = await asyncio.shield(task)
            self.stats["points_deduped"] += 1
            self._count_point("deduped")
            return result, "deduped", elapsed
        task = self.inflight.register(
            key, lambda: self._simulate(plan.config))
        result, outcome, elapsed = await asyncio.shield(task)
        self.stats[f"points_{outcome}"] += 1
        self._count_point(outcome)
        return result, outcome, elapsed

    def _count_point(self, outcome: str) -> None:
        self.stats["points_total"] += 1
        if _obs.metrics_enabled():
            reg = _obs.registry()
            reg.counter("serve.points_total", scope="host",
                        outcome=outcome).inc()
            reg.gauge("serve.queue_depth_peak",
                      scope="host").track_max(self.queue_depth_peak)

    # -- job execution -----------------------------------------------------
    async def run_job(self, job: Job,
                      emit: _t.Callable[[dict[str, _t.Any]],
                                        _t.Awaitable[None]]) -> None:
        """Execute ``job``, streaming events through ``emit``.

        Events are emitted in completion order (``point``), as result
        rows become computable (``record``), and once at the end
        (``stats``); see :mod:`~repro.serve.protocol`.
        """
        t0 = time.perf_counter()
        plans = job.points()
        completed: dict[tuple, _t.Any] = {}
        emitted: set[tuple] = set()
        outcomes = {"simulated": 0, "cached": 0, "deduped": 0}
        point_errors: list[dict[str, _t.Any]] = []

        async def one(plan: PointPlan) -> tuple[PointPlan, _t.Any,
                                                str, float]:
            result, outcome, elapsed = await self.run_point(plan)
            return plan, result, outcome, elapsed

        tasks = [asyncio.ensure_future(one(plan)) for plan in plans]
        by_task = dict(zip(tasks, plans))
        pending = set(tasks)
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED)
                for task in done:
                    plan = by_task[task]
                    try:
                        plan, result, outcome, elapsed = task.result()
                    except (Exception, asyncio.CancelledError) as exc:
                        err = {"label": plan.label,
                               "kind": type(exc).__name__,
                               "message": str(exc)}
                        point_errors.append(err)
                        self.stats["point_errors"] += 1
                        await emit({"event": "error", **err})
                        continue
                    completed[plan.key] = result
                    outcomes[outcome] += 1
                    await emit({"event": "point", "key": list(plan.key),
                                "label": plan.label, "outcome": outcome,
                                "elapsed_s": round(elapsed, 6)})
                    records, _ = job.assemble(completed)
                    for record in records:
                        cell = (record["nodes"], record["pattern"])
                        if cell not in emitted:
                            emitted.add(cell)
                            await emit({"event": "record",
                                        "record": record})
        finally:
            for task in pending:
                task.cancel()

        _, missing = job.assemble(completed)
        for err in missing:
            point_errors.append(err)
            await emit({"event": "error", **err})
        wall_s = time.perf_counter() - t0
        await emit({"event": "stats", "kind": job.kind,
                    "points": len(plans), "records": len(emitted),
                    "simulated": outcomes["simulated"],
                    "cached": outcomes["cached"],
                    "deduped": outcomes["deduped"],
                    "errors": len(point_errors),
                    "wall_s": round(wall_s, 6)})
        if _obs.metrics_enabled():
            reg = _obs.registry()
            reg.histogram("serve.request_wall_s", scope="host",
                          bounds=REQUEST_WALL_BOUNDS).observe(
                              round(wall_s, 6))

    # -- HTTP --------------------------------------------------------------
    def metrics_doc(self) -> dict[str, _t.Any]:
        doc: dict[str, _t.Any] = {
            "serve": {**self.stats,
                      "inflight": len(self.inflight),
                      "inflight_joined": self.inflight.joined,
                      "queue_depth": self.queue_depth,
                      "queue_depth_peak": self.queue_depth_peak,
                      "active_requests": self.active_requests,
                      "workers": self.executor.workers},
            "version": __version__,
        }
        cache = self.executor.cache
        if cache is not None:
            doc["cache"] = {**cache.stats.as_dict(),
                            "entries": len(cache)}
        if _obs.metrics_enabled():
            doc["registry"] = _obs.registry().snapshot()
        return doc

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    write_json_response(writer, 400, {"error": str(exc)})
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: the loop is tearing down (stop during
                # keep-alive idle) and cancelled the close waiter — the
                # transport is closed either way, end quietly.
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns keep-alive."""
        self.stats["requests_total"] += 1
        self.active_requests += 1
        try:
            if request.method == "GET" and request.path == "/healthz":
                write_json_response(writer, 200, {
                    "ok": True, "version": __version__,
                    "workers": self.executor.workers})
                return True
            if request.method == "GET" and request.path == "/metrics":
                write_json_response(writer, 200, self.metrics_doc())
                return True
            if request.method == "POST" and request.path in (
                    "/v1/jobs", "/v1/compare", "/v1/sweep"):
                doc = request.json()
                if request.path != "/v1/jobs" and isinstance(doc, dict):
                    doc.setdefault("kind", request.path.rsplit("/", 1)[-1])
                try:
                    job = parse_job(doc)
                except ReproError as exc:
                    self.stats["requests_failed"] += 1
                    write_json_response(writer, 400, {"error": str(exc)})
                    return True
                self.stats[f"jobs_{job.kind}"] += 1
                if _obs.metrics_enabled():
                    _obs.registry().counter("serve.requests_total",
                                            scope="host",
                                            kind=job.kind).inc()
                stream = ChunkedWriter(writer)
                await self.run_job(job, stream.send)
                await stream.finish()
                return True
            self.stats["requests_failed"] += 1
            write_json_response(
                writer, 404, {"error": f"no route for {request.method} "
                                       f"{request.path}"})
            return True
        except ProtocolError as exc:
            self.stats["requests_failed"] += 1
            write_json_response(writer, 400, {"error": str(exc)})
            return False
        except (ConnectionError, asyncio.IncompleteReadError):
            self.stats["requests_failed"] += 1
            raise
        except Exception as exc:  # a bug, not a bad request
            self.stats["requests_failed"] += 1
            try:
                write_json_response(writer, 500, {
                    "error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
            return False
        finally:
            self.active_requests -= 1


class BackgroundServer:
    """An :class:`ExperimentServer` on a daemon thread (tests, CLI
    load tools).

    Spawns the worker pool *before* the event loop thread starts (so
    processes fork from a quiet interpreter), binds an ephemeral port,
    and exposes it as :attr:`address`.  Use as a context manager::

        with BackgroundServer(workers=2, cache=dir) as bg:
            client = ServeClient(*bg.address)
    """

    def __init__(self, *, workers: int | None = None,
                 cache: ResultCache | str | None = None,
                 host: str = "127.0.0.1") -> None:
        self.server = ExperimentServer(workers=workers, cache=cache)
        self.host = host
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self.port is None:
            raise RuntimeError("server is not running")
        return self.host, self.port

    def __enter__(self) -> "BackgroundServer":
        self.server.warm()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        srv = await self.server.start(self.host, 0)
        self.port = srv.sockets[0].getsockname()[1]
        self._ready.set()
        async with srv:
            await self._stop.wait()

    def __exit__(self, *exc: _t.Any) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.server.close()
