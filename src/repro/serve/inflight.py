"""In-flight point registry: one simulation, N subscribers.

Concurrent requests routinely want the same point (every sweep at a
given machine size needs that size's quiet baseline).  The registry
maps the point's content key — the same PYTHONHASHSEED-stable
:func:`repro.parallel.config_key` the on-disk cache uses — to the
server-owned :class:`asyncio.Task` computing it.  The first request
registers the task; every later request joins it and awaits the same
result object with zero extra work.  Because the task belongs to the
registry rather than to any request, a subscriber disconnecting (its
handler task getting cancelled) never tears the computation away from
the other subscribers — requests await through
:func:`asyncio.shield`.

Single-loop discipline: the registry is touched only from the server's
event loop, so plain dict operations are race-free and no locking is
needed.
"""

from __future__ import annotations

import asyncio
import typing as _t

from ..obs import oplog as _oplog

__all__ = ["InflightRegistry"]


class InflightRegistry:
    """Keyed rendezvous deduplicating concurrent identical points."""

    def __init__(self) -> None:
        self._tasks: dict[str, asyncio.Task] = {}
        #: Lifetime counters (the server folds these into /metrics).
        self.registered = 0
        self.joined = 0

    def __len__(self) -> int:
        return len(self._tasks)

    def join(self, key: str) -> asyncio.Task | None:
        """The in-flight task for ``key``, or ``None`` if nobody owns it."""
        task = self._tasks.get(key)
        if task is not None:
            self.joined += 1
            # The joiner's request context: the subscriber's request_id,
            # not the owner's, identifies who waited on the dedup.
            _oplog.log("inflight.join", level="debug", point_key=key,
                       inflight=len(self._tasks))
        return task

    def register(self, key: str,
                 factory: _t.Callable[[], _t.Coroutine]) -> asyncio.Task:
        """Create, track, and return the task computing ``key``.

        The task retires itself from the registry on completion (and
        marks any exception retrieved, so a point that fails with zero
        subscribers left never warns at garbage collection).
        """
        task = asyncio.get_running_loop().create_task(factory())
        self._tasks[key] = task
        self.registered += 1
        _oplog.log("inflight.register", level="debug", point_key=key,
                   inflight=len(self._tasks))

        def _retire(t: asyncio.Task) -> None:
            if self._tasks.get(key) is t:
                del self._tasks[key]
            if not t.cancelled():
                t.exception()  # mark retrieved

        task.add_done_callback(_retire)
        return task
