"""Sweep-as-a-service: the asyncio experiment server.

Turns the deterministic simulation engine into a shared service:
compare/sweep jobs arrive as JSON over HTTP, expand into independent
points, fan out over a persistent process pool, and stream results
back as they finish.  Identical in-flight points across concurrent
requests are simulated exactly once (content-keyed dedup), and
completed points are served from the sharded on-disk result cache the
CLI shares.

* :class:`ExperimentServer` — the service itself (asyncio, stdlib
  HTTP/1.1, chunked NDJSON streaming).
* :class:`BackgroundServer` — the same server on a daemon thread with
  an ephemeral port (tests and load harnesses).
* :class:`ServeClient` / :func:`submit_async` — blocking and asyncio
  clients.
* :func:`parse_job` / :class:`Job` — the job JSON schema and its
  expansion into point plans.

Quick taste::

    from repro.serve import BackgroundServer, ServeClient

    with BackgroundServer(workers=4, cache="~/.cache/repro-ghost") as bg:
        client = ServeClient(*bg.address)
        records, stats = client.records({
            "kind": "sweep", "app": "bsp", "nodes": [4, 16],
            "patterns": ["quiet", "2.5pct@100Hz"], "seed": 1})

or from the command line: ``repro serve`` / ``repro submit`` (see
docs/SERVICE.md).
"""

from .app import BackgroundServer, ExperimentServer
from .client import ServeClient, ServeError, job_records, submit_async
from .inflight import InflightRegistry
from .planner import Job, PointPlan, parse_job

__all__ = [
    "ExperimentServer", "BackgroundServer", "InflightRegistry",
    "ServeClient", "ServeError", "job_records", "submit_async",
    "Job", "PointPlan", "parse_job",
]
