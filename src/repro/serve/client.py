"""Clients for the experiment server (stdlib only).

:class:`ServeClient` is the synchronous client behind ``repro
submit``: it POSTs a job with :mod:`http.client` (which transparently
de-chunks the response) and yields the streamed NDJSON events as they
arrive.  :func:`submit_async` is the asyncio twin used by the
load-test harness to hold a thousand requests open concurrently from
one thread.
"""

from __future__ import annotations

import http.client
import json
import typing as _t

from ..errors import ReproError
from .protocol import read_chunked_lines

__all__ = ["ServeClient", "ServeError", "submit_async", "job_records"]


class ServeError(ReproError):
    """The server answered with an error (or not with valid NDJSON)."""


class ServeClient:
    """Blocking HTTP client for one server address."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _get_json(self, path: str) -> dict[str, _t.Any]:
        conn = self._connection()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            doc = json.loads(resp.read().decode())
            if resp.status != 200:
                raise ServeError(f"GET {path} -> {resp.status}: "
                                 f"{doc.get('error', doc)}")
            return doc
        finally:
            conn.close()

    def health(self, *, ready: bool = False) -> dict[str, _t.Any]:
        return self._get_json("/healthz?ready=1" if ready else "/healthz")

    def metrics(self, *, window: float | None = None) -> dict[str, _t.Any]:
        path = "/metrics"
        if window is not None:
            path += f"?window={window:g}"
        return self._get_json(path)

    def metrics_text(self) -> str:
        """``/metrics`` in Prometheus text exposition format."""
        conn = self._connection()
        try:
            conn.request("GET", "/metrics?format=prom")
            resp = conn.getresponse()
            body = resp.read().decode()
            if resp.status != 200:
                raise ServeError(f"GET /metrics?format=prom -> "
                                 f"{resp.status}: {body[:200]}")
            return body
        finally:
            conn.close()

    def logs(self, *, level: str | None = None, event: str | None = None,
             since: int = 0, limit: int = 200) -> dict[str, _t.Any]:
        """The server's operational log ring (``GET /v1/logs``)."""
        params = [f"since={since}", f"limit={limit}"]
        if level:
            params.append(f"level={level}")
        if event:
            params.append(f"event={event}")
        return self._get_json("/v1/logs?" + "&".join(params))

    def submit(self, job: dict[str, _t.Any]
               ) -> _t.Iterator[dict[str, _t.Any]]:
        """POST one job; yield streamed events until the ``stats`` line.

        ``http.client`` decodes the chunked transfer coding, so
        ``readline`` returns complete NDJSON lines as the server
        flushes them.  A stream that dies before the terminal
        ``stats`` event — a killed server, a dropped connection, a
        truncated NDJSON line — surfaces as :class:`ServeError`
        (never a raw traceback): partial results must not be mistaken
        for a complete job.
        """
        conn = self._connection()
        try:
            body = json.dumps(job).encode()
            conn.request("POST", "/v1/jobs", body=body,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            if resp.status != 200:
                doc = json.loads(resp.read().decode() or "{}")
                raise ServeError(f"job rejected ({resp.status}): "
                                 f"{doc.get('error', doc)}")
            while True:
                try:
                    line = resp.readline()
                except (http.client.HTTPException, ConnectionError,
                        OSError) as exc:
                    raise ServeError(
                        f"connection lost mid-stream: {exc}") from exc
                if not line:
                    raise ServeError(
                        "server closed the stream before the terminal "
                        "'stats' event; partial results discarded")
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ServeError(
                        "server closed mid-line (partial NDJSON: "
                        f"{line[:80]!r})") from exc
                yield event
                if event.get("event") == "stats":
                    break
        finally:
            conn.close()

    def records(self, job: dict[str, _t.Any]
                ) -> tuple[list[dict[str, _t.Any]], dict[str, _t.Any]]:
        """Submit and collect: ``(sorted records, stats event)``."""
        return job_records(self.submit(job))


def job_records(events: _t.Iterable[dict[str, _t.Any]]
                ) -> tuple[list[dict[str, _t.Any]], dict[str, _t.Any]]:
    """Fold a job's event stream into ``(sorted records, stats)``.

    Records stream in completion order; sorting by ``(nodes,
    pattern)`` restores exactly the :func:`repro.core.sweep_records`
    order, which is what makes served output comparable to the CLI
    byte-for-byte.
    """
    records: list[dict[str, _t.Any]] = []
    stats: dict[str, _t.Any] = {}
    for event in events:
        kind = event.get("event")
        if kind == "record":
            records.append(event["record"])
        elif kind == "stats":
            stats = event
    records.sort(key=lambda r: (r["nodes"], r["pattern"]))
    return records, stats


async def submit_async(host: str, port: int, job: dict[str, _t.Any]
                       ) -> list[dict[str, _t.Any]]:
    """Async submit: POST the job and return the full event list.

    Used by the load-test harness, where a thousand of these run
    concurrently on one event loop.
    """
    import asyncio

    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(job).encode()
        head = (f"POST /v1/jobs HTTP/1.1\r\nHost: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServeError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        chunked = False
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            value = value.strip()
            if name == "transfer-encoding" and "chunked" in value:
                chunked = True
            elif name == "content-length":
                length = int(value)
        if status != 200:
            payload = await reader.readexactly(length) if length else b""
            doc = json.loads(payload or b"{}")
            raise ServeError(f"job rejected ({status}): "
                             f"{doc.get('error', doc)}")
        events: list[dict[str, _t.Any]] = []
        if chunked:
            async for line in read_chunked_lines(reader):
                events.append(json.loads(line))
        else:
            payload = await reader.readexactly(length) if length else b""
            for raw in payload.splitlines():
                if raw:
                    events.append(json.loads(raw))
        return events
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
