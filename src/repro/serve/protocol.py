"""Minimal HTTP/1.1 plumbing for the experiment server (stdlib only).

The server speaks just enough HTTP for its own API: request line +
headers + ``Content-Length`` bodies in, fixed JSON responses or
``Transfer-Encoding: chunked`` NDJSON streams out.  ``aiohttp`` is not
a dependency of this repository, and nothing here needs more than
``asyncio`` streams.

Streaming protocol
------------------
A job response is a chunked ``application/x-ndjson`` body: one JSON
object per line, streamed as the underlying points finish.

``{"event": "point", ...}``
    A point completed: ``key``, ``label``, ``outcome``
    (``simulated`` | ``cached`` | ``deduped``), ``elapsed_s``.
``{"event": "record", ...}``
    A result row became computable (both halves of a comparison are
    done): ``record`` is exactly one :func:`repro.core.sweep_records`
    record.
``{"event": "error", ...}``
    A point failed: ``label``, ``kind``, ``message``.
``{"event": "stats", ...}``
    Terminal line: job-level counters (points, simulated/cached/
    deduped, wall seconds, errors).

Clients treat the ``stats`` line as end-of-job; the chunked
zero-length terminator ends the body.
"""

from __future__ import annotations

import asyncio
import json
import typing as _t

from ..errors import ReproError

__all__ = ["Request", "ProtocolError", "read_request", "read_chunked_lines",
           "write_json_response", "write_text_response", "split_query",
           "ChunkedWriter", "encode_event"]

#: Hard ceilings so a malformed or hostile peer cannot balloon memory.
MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ProtocolError(ReproError):
    """Malformed HTTP from a peer (maps to 400, never a traceback)."""


class Request(_t.NamedTuple):
    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    def json(self) -> _t.Any:
        try:
            return json.loads(self.body or b"null")
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request-head")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head exceeds limit")
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("request head exceeds limit")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_s = headers.get("content-length", "0")
    try:
        length = int(length_s)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_s!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable Content-Length: {length}")
    body = await reader.readexactly(length) if length else b""
    return Request(method.upper(), path, headers, body)


def _head(status: int, content_type: str,
          extra: _t.Sequence[tuple[str, str]] = ()) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             "Connection: keep-alive"]
    lines += [f"{k}: {v}" for k, v in extra]
    return ("\r\n".join(lines) + "\r\n").encode("latin-1")


def write_json_response(writer: asyncio.StreamWriter, status: int,
                        doc: _t.Any) -> None:
    """One complete (non-streaming) JSON response."""
    body = (json.dumps(doc, sort_keys=True) + "\n").encode()
    writer.write(_head(status, "application/json",
                       [("Content-Length", str(len(body)))])
                 + b"\r\n" + body)


def write_text_response(writer: asyncio.StreamWriter, status: int,
                        text: str, *,
                        content_type: str = PROMETHEUS_CONTENT_TYPE) -> None:
    """One complete plain-text response (the ``/metrics`` Prometheus
    form)."""
    body = text.encode()
    writer.write(_head(status, content_type,
                       [("Content-Length", str(len(body)))])
                 + b"\r\n" + body)


def split_query(path: str) -> tuple[str, dict[str, str]]:
    """``/metrics?window=30&format=prom`` -> ``("/metrics",
    {"window": "30", "format": "prom"})``.

    Just enough query parsing for this API: ``&``-separated ``k=v``
    pairs, no percent-decoding (none of our parameters need it), last
    duplicate wins, bare keys map to ``""``.
    """
    path, _, query = path.partition("?")
    params: dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        params[key] = value
    return path, params


def encode_event(doc: dict[str, _t.Any]) -> bytes:
    """One NDJSON stream line."""
    return (json.dumps(doc, sort_keys=True) + "\n").encode()


class ChunkedWriter:
    """Chunked-transfer NDJSON response stream."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False

    async def send(self, doc: dict[str, _t.Any]) -> None:
        """Stream one event line (writes the response head lazily)."""
        if not self._started:
            self._writer.write(_head(200, "application/x-ndjson",
                                     [("Transfer-Encoding", "chunked")])
                               + b"\r\n")
            self._started = True
        payload = encode_event(doc)
        self._writer.write(f"{len(payload):x}\r\n".encode()
                           + payload + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        """Terminate the chunked body (idempotent head handling)."""
        if not self._started:
            # Nothing was streamed; still emit a valid empty stream.
            self._writer.write(_head(200, "application/x-ndjson",
                                     [("Transfer-Encoding", "chunked")])
                               + b"\r\n")
            self._started = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


async def read_chunked_lines(reader: asyncio.StreamReader
                             ) -> _t.AsyncIterator[bytes]:
    """Decode a chunked body into NDJSON lines (async client side)."""
    buf = b""
    while True:
        size_line = await reader.readline()
        if not size_line:
            raise ProtocolError("connection closed mid-chunked-body")
        try:
            size = int(size_line.strip().split(b";")[0], 16)
        except ValueError:
            raise ProtocolError(f"bad chunk size line: {size_line!r}")
        if size == 0:
            await reader.readline()  # trailing CRLF after last chunk
            break
        chunk = await reader.readexactly(size)
        await reader.readexactly(2)  # chunk CRLF
        buf += chunk
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            if line:
                yield line
    if buf:
        yield buf
