"""``repro top`` — a live terminal dashboard for the experiment server.

Polls ``GET /metrics?window=N`` (rolling rates from the server's
snapshot ring) and ``GET /v1/logs?level=warning`` (recent problems,
with request ids), and redraws a compact text frame every interval —
the service-plane analogue of watching ``top`` on a noisy node.  Pure
stdlib; rendering is split from polling so tests can feed canned
documents through :func:`render_frame`.
"""

from __future__ import annotations

import time
import typing as _t

from .client import ServeClient

__all__ = ["render_frame", "run_top"]

#: ANSI "clear screen + home" (suppressed when not writing to a tty).
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_rate(value: _t.Any, unit: str = "/s") -> str:
    if value is None:
        return "--"
    return f"{value:.1f}{unit}"


def _fmt_pct(value: _t.Any) -> str:
    return "--" if value is None else f"{100 * value:.1f}%"


def _fmt_secs(value: _t.Any) -> str:
    if value is None:
        return "--"
    return f"{1000 * value:.0f}ms" if value < 1 else f"{value:.2f}s"


def _bar(frac: float, width: int = 20) -> str:
    frac = min(max(frac, 0.0), 1.0)
    filled = round(frac * width)
    return "#" * filled + "." * (width - filled)


def render_frame(metrics: dict[str, _t.Any],
                 logs: dict[str, _t.Any] | None = None,
                 *, address: str = "") -> str:
    """One dashboard frame from a ``/metrics?window=N`` document and an
    optional ``/v1/logs`` document."""
    serve = metrics.get("serve", {})
    window = metrics.get("window", {})
    lines = []
    title = "repro top"
    if address:
        title += f" — {address}"
    title += (f"  (v{metrics.get('version', '?')}, "
              f"{serve.get('workers', '?')} workers)")
    lines.append(title)
    lines.append("=" * len(title))

    lines.append(
        f"rates ({window.get('window_s', 0)}s): "
        f"req {_fmt_rate(window.get('req_per_s'))}  "
        f"points {_fmt_rate(window.get('points_per_s'))}  "
        f"hit {_fmt_pct(window.get('hit_rate'))}  "
        f"err {_fmt_pct(window.get('error_rate'))}")
    lines.append(
        f"latency: p50 {_fmt_secs(window.get('request_p50_s'))}  "
        f"p99 {_fmt_secs(window.get('request_p99_s'))}")

    total = serve.get("points_total", 0)
    hits = serve.get("points_cached", 0) + serve.get("points_deduped", 0)
    lines.append(
        f"totals: {serve.get('requests_total', 0)} requests "
        f"({serve.get('requests_failed', 0)} failed), "
        f"{total} points "
        f"({serve.get('points_simulated', 0)} simulated, "
        f"{serve.get('points_cached', 0)} cached, "
        f"{serve.get('points_deduped', 0)} deduped, "
        f"{serve.get('point_errors', 0)} errors)")
    lines.append(
        f"lifetime hit rate: {_fmt_pct(hits / total if total else None)}  "
        f"inflight {serve.get('inflight', 0)}  "
        f"active requests {serve.get('active_requests', 0)}")

    workers = serve.get("workers") or 1
    depth = serve.get("queue_depth", 0)
    busy = min(depth, workers)
    lines.append(
        f"workers: [{_bar(busy / workers)}] {busy}/{workers} busy, "
        f"queue {depth} (peak {serve.get('queue_depth_peak', 0)})")

    cache = metrics.get("cache")
    if cache:
        lines.append(
            f"cache: {cache.get('entries', 0)} entries, "
            f"{cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses")

    if logs and logs.get("events"):
        lines.append("")
        lines.append("recent problems:")
        for doc in logs["events"][-5:]:
            rid = doc.get("request_id", "-")
            detail = doc.get("message") or doc.get("error") or ""
            lines.append(f"  [{doc.get('level', '?'):7s}] "
                         f"{doc.get('event', '?')} "
                         f"request={rid} {detail}".rstrip())
    return "\n".join(lines) + "\n"


def run_top(client: ServeClient, out: _t.TextIO, *,
            window: float = 30.0, interval: float = 2.0,
            iterations: int | None = None,
            clear: bool = True) -> int:
    """Poll-and-redraw loop; returns an exit code.

    ``iterations=None`` runs until interrupted; tests (and ``repro top
    --once``) bound it.  A server that disappears mid-loop ends the
    loop with a message instead of a traceback.
    """
    n = 0
    while iterations is None or n < iterations:
        if n:
            time.sleep(interval)
        n += 1
        try:
            metrics = client.metrics(window=window)
            logs = client.logs(level="warning", limit=5)
        except (ConnectionError, OSError) as exc:
            out.write(f"server unreachable: {exc}\n")
            return 2
        frame = render_frame(metrics, logs,
                             address=f"{client.host}:{client.port}")
        if clear:
            out.write(_CLEAR)
        out.write(frame)
        if hasattr(out, "flush"):
            out.flush()
    return 0
