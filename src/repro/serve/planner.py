"""Job parsing and point planning for the experiment server.

A *job* is the JSON body of one ``POST /v1/jobs`` request: either a
``compare`` (one noisy config scored against its quiet twin) or a
``sweep`` (nodes x patterns with shared quiet baselines).  The planner
expands a job into independent *points* — frozen
:class:`~repro.core.ExperimentConfig` objects keyed exactly like
:meth:`repro.parallel.SweepExecutor.run_sweep` keys them — and later
reassembles completed points into the same flat records
:func:`repro.core.sweep_records` produces, so a served job is
byte-identical (as sorted JSON records) to the CLI path.

The expansion/assembly rules deliberately mirror ``run_sweep`` /
``run_comparisons``: quiet twins are normalised through
:func:`~repro.parallel.normalized_quiet_twin` so physically identical
baselines collapse onto one point (and one cache/dedup key), and a
missing quiet baseline surfaces as a ``MissingBaseline`` error rather
than silently dropping the noisy point.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from ..core import ExperimentConfig
from ..core.results import ComparisonResult, RunResult
from ..errors import ConfigError
from ..obs import oplog as _oplog
from ..parallel.executor import _is_quiet, normalized_quiet_twin

__all__ = ["Job", "parse_job", "PointPlan"]

#: Config fields a job may set directly (everything else is rejected so
#: typos fail loudly instead of silently running the default).
_CONFIG_FIELDS = ("app", "kernel", "network", "alignment", "seed",
                  "isolate_noise", "faults", "topology", "shape",
                  "app_params", "observer", "critical_path")

_JOB_KEYS = frozenset(_CONFIG_FIELDS) | {
    "kind", "nodes", "pattern", "patterns", "collectives", "trace"}


@dataclass(frozen=True)
class PointPlan:
    """One independent simulation the job needs."""

    key: tuple
    config: ExperimentConfig
    label: str


@dataclass(frozen=True)
class Job:
    """A validated compare/sweep request."""

    kind: str
    nodes: tuple[int, ...]
    patterns: tuple[str, ...]
    base: ExperimentConfig
    raw: dict[str, _t.Any] = field(default_factory=dict, compare=False)
    #: Request end-to-end tracing: workers capture each point's
    #: sim-time spans and the server streams one stitched Perfetto
    #: document as a terminal ``trace`` event (see
    #: :mod:`repro.obs.reqtrace`).
    trace: bool = False

    # -- expansion ---------------------------------------------------------
    def points(self) -> list[PointPlan]:
        """The independent simulations, quiet baselines deduplicated.

        Keys use the executor's scheme — ``("quiet", p)`` and
        ``("noisy", p, pattern)`` — so labels, errors, and assembly all
        speak the same coordinates.
        """
        plans: list[PointPlan] = []
        seen: set[tuple] = set()
        for p in self.nodes:
            key = ("quiet", p)
            if key in seen:
                continue
            seen.add(key)
            twin = normalized_quiet_twin(
                ExperimentConfig(**{**self._base_kwargs(), "nodes": p}))
            plans.append(PointPlan(key, twin, f"quiet baseline P={p}"))
        for p in self.nodes:
            for pattern in self.patterns:
                if _is_quiet(pattern):
                    continue
                key = ("noisy", p, pattern)
                if key in seen:
                    continue
                seen.add(key)
                cfg = ExperimentConfig(**{**self._base_kwargs(), "nodes": p,
                                          "noise_pattern": pattern})
                plans.append(PointPlan(key, cfg, f"P={p} pattern={pattern}"))
        return plans

    def _base_kwargs(self) -> dict[str, _t.Any]:
        import dataclasses

        return {f.name: getattr(self.base, f.name)
                for f in dataclasses.fields(self.base)}

    # -- assembly ----------------------------------------------------------
    def assemble(self, points: _t.Mapping[tuple, RunResult]
                 ) -> tuple[list[dict[str, _t.Any]],
                            list[dict[str, _t.Any]]]:
        """Completed points -> ``(records, errors)``.

        Records match :func:`repro.core.sweep_records` exactly: sorted
        by ``(nodes, pattern)``, quiet cells are bare
        :meth:`RunResult.as_dict`, noisy cells are
        :meth:`ComparisonResult.as_dict`.  Noisy points whose quiet
        baseline is missing become ``MissingBaseline`` errors.
        """
        results: dict[tuple[int, str], _t.Any] = {}
        errors: list[dict[str, _t.Any]] = []
        for p in self.nodes:
            quiet = points.get(("quiet", p))
            for pattern in self.patterns:
                if _is_quiet(pattern):
                    if quiet is not None:
                        results[(p, pattern)] = quiet
                    continue
                noisy = points.get(("noisy", p, pattern))
                if noisy is None:
                    continue  # its own point error was already streamed
                if quiet is None:
                    errors.append({"label": f"P={p} pattern={pattern}",
                                   "kind": "MissingBaseline",
                                   "message": "quiet baseline failed"})
                    continue
                results[(p, pattern)] = ComparisonResult(quiet=quiet,
                                                         noisy=noisy)
        records = []
        for (p, pattern), res in sorted(results.items()):
            record = res.as_dict()
            record.setdefault("nodes", p)
            record.setdefault("pattern", pattern)
            records.append(record)
        return records, errors


def _expect(doc: dict[str, _t.Any], key: str, types: tuple[type, ...],
            default: _t.Any) -> _t.Any:
    value = doc.get(key, default)
    if value is not default and not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        raise ConfigError(f"job field {key!r} must be {names}, "
                          f"got {type(value).__name__}")
    return value


def parse_job(doc: _t.Any) -> Job:
    """Validate one request body into a :class:`Job`.

    Raises :class:`~repro.errors.ConfigError` on anything malformed —
    the server maps that to a 400, never a crashed worker.
    """
    if not isinstance(doc, dict):
        raise ConfigError("job body must be a JSON object")
    unknown = set(doc) - _JOB_KEYS
    if unknown:
        raise ConfigError(f"unknown job fields: {sorted(unknown)}")
    kind = doc.get("kind")
    if kind not in ("compare", "sweep"):
        raise ConfigError(f"job kind must be 'compare' or 'sweep', "
                          f"got {kind!r}")

    if kind == "compare":
        nodes_raw: _t.Any = _expect(doc, "nodes", (int,), 16)
        nodes = [nodes_raw]
        pattern = _expect(doc, "pattern", (str,), "2.5pct@10Hz")
        if _is_quiet(pattern):
            raise ConfigError("compare jobs need a noisy 'pattern'")
        patterns = [pattern]
    else:
        nodes_raw = doc.get("nodes", [4, 16])
        if isinstance(nodes_raw, int):
            nodes_raw = [nodes_raw]
        if (not isinstance(nodes_raw, list) or not nodes_raw
                or not all(isinstance(n, int) and n > 0 for n in nodes_raw)):
            raise ConfigError("sweep 'nodes' must be a non-empty list of "
                              "positive ints")
        nodes = list(nodes_raw)
        pats_raw = doc.get("patterns", ["2.5pct@10Hz"])
        if isinstance(pats_raw, str):
            pats_raw = [pats_raw]
        if (not isinstance(pats_raw, list) or not pats_raw
                or not all(isinstance(s, str) and s.strip()
                           for s in pats_raw)):
            raise ConfigError("sweep 'patterns' must be a non-empty list "
                              "of pattern strings")
        patterns = [s.strip() for s in pats_raw]

    kwargs: dict[str, _t.Any] = {}
    for name in _CONFIG_FIELDS:
        if name in doc:
            kwargs[name] = doc[name]
    collectives = doc.get("collectives")
    if collectives is not None:
        if (not isinstance(collectives, dict)
                or not all(isinstance(k, str) and isinstance(v, str)
                           for k, v in collectives.items())):
            raise ConfigError("'collectives' must map op name to algorithm")
        kwargs["collectives"] = collectives
    app_params = kwargs.get("app_params")
    if app_params is not None and not isinstance(app_params, dict):
        raise ConfigError("'app_params' must be an object")
    try:
        base = ExperimentConfig(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"bad job config: {exc}") from exc
    # Fail fast on unparsable patterns/faults so a broken job never
    # occupies pool workers.
    for pattern in patterns:
        ExperimentConfig(**{**kwargs, "noise_pattern": pattern}
                         ).injected_utilization()
    base.fault_plan()
    trace = bool(_expect(doc, "trace", (bool,), False))
    job = Job(kind=kind, nodes=tuple(nodes), patterns=tuple(patterns),
              base=base, raw=dict(doc), trace=trace)
    _oplog.log("job.parsed", kind=kind, nodes=list(job.nodes),
               patterns=list(job.patterns), trace=trace)
    return job
