"""A compute node: CPU + kernel configuration + observer hooks.

One :class:`Node` hosts exactly one application rank (the
space-shared, one-process-per-node model of capability machines of the
paper's era).  The node owns its CPU with the kernel's merged noise
stream, offers ``compute`` / ``syscall`` services to the rank, and is
the attachment point for the ktau observer and the NIC.
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from ..noise import NoiseSource
from ..sim import Environment, Event
from .activities import build_kernel_noise
from .config import KernelConfig
from .cpu import CPU

__all__ = ["Node"]


class Node:
    """One compute node of the simulated machine.

    Parameters
    ----------
    env:
        Simulation environment shared by the whole machine.
    node_id:
        Dense id, ``0 .. n_nodes-1`` (also the MPI rank in COMM_WORLD).
    config:
        The node's kernel configuration.
    injected:
        Extra synthetic noise sources for this node (from an
        :class:`~repro.noise.InjectionPlan`), merged with the kernel's
        own activity.
    seed:
        Machine-level seed; per-node streams derive from it.
    cpu_speed:
        Relative clock rate (1.0 = nominal); below 1.0 models a
        degraded node.
    isolate_noise:
        Core specialization: route the kernel's *own* background
        activity (timer ticks, daemons) and NIC receive processing to
        a dedicated spare core, leaving the application core clean.
        Injected synthetic sources still strike the application core —
        they model interference the experimenter explicitly imposes.
        The spare-core activity remains queryable via
        :attr:`spare_core_noise` for observer completeness.
    """

    def __init__(self, env: Environment, node_id: int, config: KernelConfig,
                 *, injected: list[NoiseSource] | None = None, seed: int = 0,
                 isolate_noise: bool = False, cpu_speed: float = 1.0) -> None:
        if node_id < 0:
            raise ConfigError(f"node_id must be >= 0, got {node_id}")
        self.env = env
        self.node_id = node_id
        self.config = config
        self.isolate_noise = isolate_noise
        #: Kernel activity running on the spare core (None when the
        #: kernel shares the application core, the default).
        self.spare_core_noise: NoiseSource | None = None
        if isolate_noise:
            from ..noise import NullNoise
            self.spare_core_noise = build_kernel_noise(config, node_id,
                                                       seed=seed)
            app_core_sources = [s for s in (injected or [])
                                if not isinstance(s, NullNoise)]
            if not app_core_sources:
                self.noise: NoiseSource = NullNoise(
                    name=f"isolated-{config.name}")
            elif len(app_core_sources) == 1:
                self.noise = app_core_sources[0]
            else:
                from ..noise import CompositeNoise
                self.noise = CompositeNoise(app_core_sources,
                                            name=f"isolated-{config.name}")
        else:
            self.noise = build_kernel_noise(config, node_id, seed=seed,
                                            injected=injected)
        self.cpu = CPU(env, self.noise, node_id, speed=cpu_speed)
        #: Set by the observer when tracing is enabled (duck-typed to
        #: avoid a kernel -> ktau dependency).
        self.tracer: _t.Any | None = None
        #: Set by the network when the machine is wired up.
        self.nic: _t.Any | None = None
        #: Count of application system calls (observer statistics).
        self.syscall_count: int = 0

    # -- runtime reconfiguration ------------------------------------------------
    def add_noise_source(self, source: NoiseSource) -> None:
        """Merge another noise source into this node's stream.

        Used by the observer to charge its own per-event overhead as a
        rate-matched background source.  Must happen before any compute
        phase is in flight.
        """
        from ..noise import CompositeNoise, NullNoise
        if self.cpu.computing:
            raise ConfigError(
                f"node {self.node_id}: cannot add noise mid-compute")
        if isinstance(self.noise, NullNoise):
            merged: NoiseSource = source
        else:
            merged = CompositeNoise([self.noise, source],
                                    name=f"kernel-{self.config.name}")
        self.noise = merged
        self.cpu.noise = merged

    # -- services offered to the rank process --------------------------------
    def compute(self, work: int) -> _t.Generator[Event, object, None]:
        """Run ``work`` ns of application CPU work on this node."""
        return self.cpu.compute(work)

    def syscall(self, extra_work: int = 0) -> _t.Generator[Event, object, None]:
        """Perform one system call (kernel entry the *application* asked for).

        Costs ``config.syscall_ns + extra_work`` of CPU.  Recorded by
        the observer as syscall time — observed kernel time that is
        *not* noise, which the attribution engine must keep separate.
        """
        self.syscall_count += 1
        cost = self.config.syscall_ns + extra_work
        start = self.env.now
        if self.tracer is not None:
            self.tracer.record_syscall(self.node_id, start, cost)
        return self.cpu.compute(cost)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} kernel={self.config.name!r}>"
