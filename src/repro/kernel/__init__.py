"""Per-node operating-system kernel model.

A :class:`KernelConfig` declares what the node's OS does in the
background — timer interrupts (with occasionally-heavy ticks), a daemon
population, syscall costs, and NIC packet-processing costs.
:func:`build_kernel_noise` turns that into per-activity
:class:`~repro.noise.NoiseSource` streams, and :class:`Node` / its
:class:`CPU` execute application work under that interference.

Presets::

    KernelConfig.lightweight()       # tickless, daemonless baseline
    KernelConfig.commodity_linux()   # HZ=1000 + standard daemons
    KernelConfig.tuned_linux()       # HZ=100, trimmed daemons
"""

from .activities import TIMER_SOURCE, build_kernel_noise, build_kernel_sources
from .config import DaemonSpec, KernelConfig, NICCostModel
from .cpu import CPU
from .node import Node

__all__ = [
    "KernelConfig", "DaemonSpec", "NICCostModel",
    "CPU", "Node",
    "build_kernel_noise", "build_kernel_sources", "TIMER_SOURCE",
]
