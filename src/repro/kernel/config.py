"""Kernel configuration: which activities a node's modelled OS runs.

A :class:`KernelConfig` is a declarative description of the background
activity of one node's operating system — the "machine" whose ghost the
observer hunts.  It is turned into concrete
:class:`~repro.noise.NoiseSource` streams by
:mod:`repro.kernel.activities`.

Three presets bracket the design space the 2007-era noise studies
compared:

* :meth:`KernelConfig.lightweight` — a Catamount/CNK-style lightweight
  kernel: no periodic tick, no daemons.  The near-noiseless baseline.
* :meth:`KernelConfig.commodity_linux` — a stock HZ=1000 Linux with the
  usual daemon population.
* :meth:`KernelConfig.tuned_linux` — HZ=100 and a trimmed daemon set,
  as sites tuned their compute nodes.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.timebase import MICROSECOND, MILLISECOND, SECOND

__all__ = ["DaemonSpec", "NICCostModel", "KernelConfig"]


@dataclass(frozen=True, slots=True)
class DaemonSpec:
    """One background kernel thread / userspace daemon.

    Attributes
    ----------
    name:
        Unique label (appears in observer attribution).
    interval_ns:
        Mean activation interval.
    duration_ns:
        CPU consumed per activation.
    arrival:
        ``"periodic"`` (strict timer-driven daemon, e.g. kswapd scan)
        or ``"poisson"`` (asynchronous wakeups, e.g. flush threads).
    """

    name: str
    interval_ns: int
    duration_ns: int
    arrival: str = "periodic"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("daemon needs a name")
        if self.interval_ns <= 0:
            raise ConfigError(f"daemon {self.name!r}: interval must be > 0")
        if self.duration_ns <= 0:
            raise ConfigError(f"daemon {self.name!r}: duration must be > 0")
        if self.arrival == "periodic" and self.duration_ns >= self.interval_ns:
            raise ConfigError(
                f"daemon {self.name!r}: duration must be < interval")
        if self.arrival not in ("periodic", "poisson"):
            raise ConfigError(
                f"daemon {self.name!r}: arrival must be periodic|poisson, "
                f"got {self.arrival!r}")

    @property
    def utilization(self) -> float:
        """Long-run CPU fraction this daemon consumes."""
        return self.duration_ns / self.interval_ns


@dataclass(frozen=True, slots=True)
class NICCostModel:
    """CPU cost of network packet processing on the host kernel.

    Message receipt steals host CPU (interrupt entry + softirq/bottom
    half protocol work); this couples communication volume to kernel
    noise — one of the effects the paper's observer is built to expose.

    Attributes
    ----------
    rx_irq_ns:
        Fixed interrupt-entry/exit cost per received message.
    rx_softirq_base_ns:
        Fixed protocol-processing (softirq) cost per message.
    rx_softirq_per_kb_ns:
        Additional softirq cost per KiB of payload (copies, checksum).
    tx_overhead_ns:
        Host CPU cost to post a send descriptor.
    """

    rx_irq_ns: int = 2 * MICROSECOND
    rx_softirq_base_ns: int = 3 * MICROSECOND
    rx_softirq_per_kb_ns: int = 500
    tx_overhead_ns: int = 1 * MICROSECOND

    def __post_init__(self) -> None:
        for fname in ("rx_irq_ns", "rx_softirq_base_ns",
                      "rx_softirq_per_kb_ns", "tx_overhead_ns"):
            if getattr(self, fname) < 0:
                raise ConfigError(f"NIC cost {fname} must be >= 0")

    def rx_cost(self, size_bytes: int) -> int:
        """Total host-CPU ns to receive one message of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("message size must be >= 0")
        return (self.rx_irq_ns + self.rx_softirq_base_ns
                + (size_bytes * self.rx_softirq_per_kb_ns) // 1024)


@dataclass(frozen=True, slots=True)
class KernelConfig:
    """Parameters of a node's modelled operating system.

    Attributes
    ----------
    name:
        Preset label used in reports.
    hz:
        Timer-interrupt frequency (0 disables the tick entirely —
        lightweight-kernel style).
    tick_cost_ns:
        CPU cost of an ordinary timer tick.
    tick_heavy_cost_ns / tick_heavy_probability:
        Occasionally a tick does extended work (timer-wheel cascade,
        scheduler load balancing); each tick is heavy with this
        probability.
    daemons:
        Background daemon population.
    syscall_ns:
        Base cost of a system call (applications' explicit kernel
        entries — accounted as *work*, not noise, but observed).
    nic:
        Packet-processing cost model (``None`` = zero-cost NIC,
        i.e. fully offloaded network like a Red Storm SeaStar).
    """

    name: str = "custom"
    hz: int = 1000
    tick_cost_ns: int = 2 * MICROSECOND
    tick_heavy_cost_ns: int = 50 * MICROSECOND
    tick_heavy_probability: float = 0.01
    daemons: tuple[DaemonSpec, ...] = ()
    syscall_ns: int = 1 * MICROSECOND
    nic: NICCostModel | None = None

    def __post_init__(self) -> None:
        if self.hz < 0:
            raise ConfigError(f"hz must be >= 0, got {self.hz}")
        if self.hz > 0:
            period = SECOND // self.hz
            if self.tick_cost_ns <= 0:
                raise ConfigError("tick_cost_ns must be > 0 when hz > 0")
            if self.tick_heavy_cost_ns < self.tick_cost_ns:
                raise ConfigError("tick_heavy_cost_ns must be >= tick_cost_ns")
            if self.tick_heavy_cost_ns >= period:
                raise ConfigError("heavy tick cost must be < tick period")
            if not 0 <= self.tick_heavy_probability <= 1:
                raise ConfigError("tick_heavy_probability must be in [0, 1]")
        if self.syscall_ns < 0:
            raise ConfigError("syscall_ns must be >= 0")
        names = [d.name for d in self.daemons]
        if len(names) != len(set(names)):
            raise ConfigError("daemon names must be unique")
        if self.background_utilization >= 0.5:
            raise ConfigError(
                f"kernel background utilization {self.background_utilization:.2f} "
                "is implausibly high (>= 50%)")

    # -- derived -----------------------------------------------------------
    @property
    def tick_period_ns(self) -> int:
        """Timer-tick period (0 when the tick is disabled)."""
        return SECOND // self.hz if self.hz > 0 else 0

    @property
    def background_utilization(self) -> float:
        """Nominal CPU fraction the kernel's own activity consumes."""
        total = sum(d.utilization for d in self.daemons)
        if self.hz > 0:
            mean_tick = (self.tick_cost_ns * (1 - self.tick_heavy_probability)
                         + self.tick_heavy_cost_ns * self.tick_heavy_probability)
            total += mean_tick / self.tick_period_ns
        return total

    # -- presets --------------------------------------------------------------
    @classmethod
    def lightweight(cls) -> "KernelConfig":
        """Catamount/CNK-style lightweight kernel: tickless, daemonless."""
        return cls(name="lightweight", hz=0, tick_cost_ns=0,
                   tick_heavy_cost_ns=0, tick_heavy_probability=0.0,
                   daemons=(), syscall_ns=500, nic=None)

    @classmethod
    def commodity_linux(cls) -> "KernelConfig":
        """Stock HZ=1000 Linux compute node with common daemons."""
        return cls(
            name="commodity-linux", hz=1000,
            tick_cost_ns=2 * MICROSECOND,
            tick_heavy_cost_ns=50 * MICROSECOND,
            tick_heavy_probability=0.02,
            daemons=(
                DaemonSpec("kswapd", 1 * SECOND, 200 * MICROSECOND, "periodic"),
                DaemonSpec("pdflush", 5 * SECOND, 2 * MILLISECOND, "poisson"),
                DaemonSpec("cron-monitor", 10 * SECOND, 5 * MILLISECOND, "periodic"),
                DaemonSpec("ntpd", 1 * SECOND, 50 * MICROSECOND, "poisson"),
            ),
            syscall_ns=1 * MICROSECOND,
            nic=NICCostModel())

    @classmethod
    def tuned_linux(cls) -> "KernelConfig":
        """HZ=100 Linux with the daemon population trimmed."""
        return cls(
            name="tuned-linux", hz=100,
            tick_cost_ns=2 * MICROSECOND,
            tick_heavy_cost_ns=30 * MICROSECOND,
            tick_heavy_probability=0.01,
            daemons=(
                DaemonSpec("kswapd", 2 * SECOND, 150 * MICROSECOND, "periodic"),
            ),
            syscall_ns=1 * MICROSECOND,
            nic=NICCostModel())

    @classmethod
    def preset(cls, name: str) -> "KernelConfig":
        """Look a preset up by name."""
        presets: dict[str, _t.Callable[[], KernelConfig]] = {
            "lightweight": cls.lightweight,
            "commodity-linux": cls.commodity_linux,
            "tuned-linux": cls.tuned_linux,
        }
        if name not in presets:
            raise ConfigError(
                f"unknown kernel preset {name!r}; choose from {sorted(presets)}")
        return presets[name]()
