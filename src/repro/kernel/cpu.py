"""The node CPU: application work under kernel preemption.

The CPU executes application *work* (pure CPU nanoseconds) while the
kernel's noise stream steals cycles.  Two kinds of stealing exist:

* **background noise** — the static/pseudo-random streams built from
  the :class:`~repro.kernel.config.KernelConfig` plus injected
  patterns.  These are pure functions of time, so a compute phase of
  ``W`` ns starting at ``t`` completes exactly at
  ``t + noise.wall_time(t, W)``.
* **transient steals** — dynamic kernel work triggered by the
  simulation itself, chiefly NIC receive processing.  These arrive at
  arbitrary instants via :meth:`CPU.steal_transient` and extend any
  in-progress compute phase by their cost.

Modelling note: a transient steal is added to the phase deadline at
face value; background noise that would overlap the steal itself is not
re-inflated (a second-order effect, well under 1 % for the utilizations
studied here).
"""

from __future__ import annotations

import typing as _t

from ..errors import SimulationError
from ..noise import CompositeNoise, NoiseSource, NullNoise
from ..sim import Environment, Event

__all__ = ["CPU"]


class CPU:
    """One node's processor, shared by the application and the kernel.

    Parameters
    ----------
    env:
        The simulation environment.
    noise:
        The node's merged CPU-stealing stream (see
        :func:`repro.kernel.activities.build_kernel_noise`).
    node_id:
        Owning node's id (for error messages and records).
    """

    def __init__(self, env: Environment, noise: NoiseSource, node_id: int = 0,
                 *, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError(f"cpu speed must be > 0, got {speed}")
        self.env = env
        self.noise = noise
        self.node_id = node_id
        #: Relative clock rate: work takes ``work/speed`` ns of wall CPU.
        #: Below 1.0 models a degraded ("sick") node — thermal
        #: throttling, a failing DIMM in slow-retrain mode — whose
        #: effect on the machine resembles permanently-synchronized
        #: noise and which PSNAP-style censuses exist to find.
        self.speed = float(speed)
        #: Total application work executed (ns of pure CPU).
        self.work_executed_ns: int = 0
        #: Total transient (dynamic) kernel steals, ns.
        self.transient_stolen_ns: int = 0
        #: Deadline of the in-progress compute phase, or None when idle.
        self._deadline: int | None = None
        #: Observers notified on each transient steal: f(start, duration, source).
        self._steal_listeners: list[_t.Callable[[int, int, str], None]] = []

    # -- application side ---------------------------------------------------
    def compute(self, work: int) -> _t.Generator[Event, object, None]:
        """Execute ``work`` ns of application CPU work (a process sub-generator).

        Use from a rank process as ``yield from cpu.compute(work)``.
        Completion time accounts for background noise exactly and is
        pushed back by any transient steals that land mid-phase.
        """
        if work < 0:
            raise ValueError(f"work must be >= 0 ns, got {work}")
        if self._deadline is not None:
            raise SimulationError(
                f"node {self.node_id}: nested compute() — the model has one "
                "application context per CPU")
        if work == 0:
            return
        cycles = work if self.speed == 1.0 else round(work / self.speed)
        start = self.env.now
        self._deadline = start + self.noise.wall_time(start, cycles)
        try:
            while self.env.now < self._deadline:
                yield self.env.timeout(self._deadline - self.env.now)
        finally:
            self._deadline = None
        self.work_executed_ns += work

    @property
    def computing(self) -> bool:
        """True while an application compute phase is in progress."""
        return self._deadline is not None

    # -- kernel side --------------------------------------------------------------
    def steal_transient(self, cost: int, source: str) -> int:
        """Dynamic kernel work (e.g. NIC rx processing) starting *now*.

        Extends an in-progress compute phase by ``cost`` and notifies
        steal listeners (the observer).  Returns the completion
        timestamp of the kernel work itself — callers that gate on the
        processing (message delivery) should wait until then.
        """
        if cost < 0:
            raise ValueError(f"steal cost must be >= 0 ns, got {cost}")
        now = self.env.now
        if cost == 0:
            return now
        self.transient_stolen_ns += cost
        if self._deadline is not None:
            self._deadline += cost
        for listener in self._steal_listeners:
            listener(now, cost, source)
        return now + cost

    def add_steal_listener(self, listener: _t.Callable[[int, int, str], None]) -> None:
        """Register ``f(start, duration, source)`` for transient steals."""
        self._steal_listeners.append(listener)

    # -- accounting -----------------------------------------------------------------
    def stolen_breakdown(self, start: int, end: int) -> dict[str, int]:
        """Background-noise CPU stolen per source name in ``[start, end)``.

        Per-source totals; simultaneous steals from different sources
        are each charged in full (attribution is per-activity, and
        overlap is negligible at the utilizations modelled).
        """
        noise = self.noise
        if isinstance(noise, NullNoise):
            return {}
        if isinstance(noise, CompositeNoise):
            out: dict[str, int] = {}
            for src in noise.sources:
                stolen = src.stolen_between(start, end)
                if stolen:
                    out[src.name] = stolen
            return out
        stolen = noise.stolen_between(start, end)
        return {noise.name: stolen} if stolen else {}
