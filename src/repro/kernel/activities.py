"""Materialize a :class:`KernelConfig` into concrete noise sources.

Each kernel activity becomes one named :class:`~repro.noise.NoiseSource`
stream so the observer can attribute stolen time *per activity* — the
timer interrupt is ``"timer-irq"``, each daemon keeps its own name.
Activity phases and stochastic streams derive from ``(seed, node_id)``
so different nodes' kernels are independent but reproducible.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..noise import (
    BernoulliTickNoise,
    CompositeNoise,
    NoiseSource,
    NullNoise,
    PeriodicNoise,
    PoissonNoise,
)
from ..sim.rng import RandomTree, derive_seed
from .config import DaemonSpec, KernelConfig

__all__ = ["TIMER_SOURCE", "build_kernel_sources", "build_kernel_noise"]

#: Canonical source name of the timer interrupt stream.
TIMER_SOURCE = "timer-irq"


def _daemon_source(spec: DaemonSpec, node_id: int, phase_rng, seed: int) -> NoiseSource:
    if spec.arrival == "periodic":
        phase = int(phase_rng.integers(0, spec.interval_ns))
        return PeriodicNoise(spec.interval_ns, spec.duration_ns,
                             phase=phase, name=spec.name)
    rate_hz = 1e9 / spec.interval_ns
    return PoissonNoise(rate_hz, spec.duration_ns, seed=seed,
                        name=spec.name)


def build_kernel_sources(config: KernelConfig, node_id: int, *,
                         seed: int = 0) -> list[NoiseSource]:
    """Per-activity noise sources for node ``node_id``'s kernel.

    Activities are independently phased per node (kernels boot at
    different instants; their ticks are not aligned across the
    machine), which is the realistic default the noise literature
    assumes for commodity clusters.
    """
    if node_id < 0:
        raise ConfigError(f"node_id must be >= 0, got {node_id}")
    tree = RandomTree(seed).child(f"kernel/{node_id}")
    sources: list[NoiseSource] = []
    if config.hz > 0:
        phase_rng = tree.generator("tick-phase")
        phase = int(phase_rng.integers(0, config.tick_period_ns))
        sources.append(BernoulliTickNoise(
            config.tick_period_ns, config.tick_cost_ns,
            config.tick_heavy_cost_ns, config.tick_heavy_probability,
            phase=phase, seed=derive_seed(seed, f"tick/{node_id}") & ((1 << 62) - 1),
            name=TIMER_SOURCE))
    for spec in config.daemons:
        phase_rng = tree.generator(f"daemon-phase/{spec.name}")
        dseed = derive_seed(seed, f"daemon/{node_id}/{spec.name}") & ((1 << 62) - 1)
        sources.append(_daemon_source(spec, node_id, phase_rng, dseed))
    return sources


def build_kernel_noise(config: KernelConfig, node_id: int, *,
                       seed: int = 0,
                       injected: list[NoiseSource] | None = None) -> NoiseSource:
    """The node's full CPU-stealing stream: kernel activities plus any
    injected synthetic noise, merged into one source.

    Returns :class:`~repro.noise.NullNoise` when there is nothing at
    all (lightweight kernel, no injection) so callers can stay on the
    fast path.
    """
    sources = build_kernel_sources(config, node_id, seed=seed)
    for src in (injected or []):
        if not isinstance(src, NullNoise):
            sources.append(src)
    if not sources:
        return NullNoise(name=f"kernel-{config.name}")
    if len(sources) == 1:
        return sources[0]
    return CompositeNoise(sources, name=f"kernel-{config.name}")
