"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An experiment, machine, kernel, or noise configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`repro.sim.Environment.run` when ``run()`` was asked
    to run to completion but live processes remain blocked on events that
    can never fire (e.g. a receive with no matching send).
    """


class MPIError(ReproError):
    """Misuse of the simulated MPI layer (bad rank, tag, communicator)."""


class FaultError(SimulationError):
    """An injected fault escalated past the recovery protocol.

    Raised when the reliable-transport layer exhausts its retry budget
    for a message (lossy link, crashed peer).  Carries enough context
    to identify the unreachable channel.
    """

    def __init__(self, message: str, *, src: int | None = None,
                 dst: int | None = None) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst


class TraceError(ReproError):
    """The observer (ktau) was asked for data it never recorded."""
