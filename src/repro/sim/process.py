"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each ``yield`` hands back
an :class:`~repro.sim.events.Event` the process wants to wait on, and
the process resumes (with the event's value) when that event fires.
A process is itself an event that fires when the generator returns,
so processes can wait on each other and ``env.run(until=proc)`` works.
"""

from __future__ import annotations

import typing as _t

from ..errors import SimulationError
from .events import PRIORITY_URGENT, Event, Interrupt

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulation process (and the event of its termination)."""

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(self, env: "Environment",
                 generator: _t.Generator[Event, object, object],
                 *, name: str | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {type(generator).__name__}")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        env._live_processes += 1
        # Kick the generator off at the current simulation instant via an
        # initialisation event so spawning is itself deterministic.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init, delay=0, priority=PRIORITY_URGENT)

    # -- public ------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        The event the process was waiting on is abandoned (its callback
        is detached); the process decides how to proceed by catching the
        interrupt.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - callback already detached
                pass
        self._waiting_on = None
        # Deliver the interrupt through an urgent event so ordering stays
        # deterministic with respect to other same-instant events.
        exc = Interrupt(cause)
        kick = Event(self.env)
        kick._ok = False
        kick._value = exc
        kick.callbacks.append(self._resume)
        self.env.schedule(kick, delay=0, priority=PRIORITY_URGENT)

    # -- engine ------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the fired event's value."""
        self._waiting_on = None
        gen = self._generator
        while True:
            try:
                if trigger._ok:
                    target = gen.send(trigger._value)
                else:
                    target = gen.throw(_t.cast(BaseException, trigger._value))
            except StopIteration as stop:
                self.env._live_processes -= 1
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env._live_processes -= 1
                # A crashing process fails its termination event; if nobody
                # is waiting on it, re-raise so bugs don't vanish silently.
                if self.callbacks:
                    self.fail(exc)
                    return
                self.fail(exc)
                raise

            if not isinstance(target, Event):
                err = SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    "must yield Event objects")
                self.env._live_processes -= 1
                self.fail(err)
                raise err
            if target.env is not self.env:
                err = SimulationError(
                    f"process {self.name!r} yielded an event from a different environment")
                self.env._live_processes -= 1
                self.fail(err)
                raise err

            if target.callbacks is None:
                # Already processed: resume immediately with its value in
                # this same call frame (no extra queue round-trip).
                trigger = target
                continue
            self._waiting_on = target
            target.callbacks.append(self._resume)
            return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
