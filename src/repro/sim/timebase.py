"""Simulation time base.

All simulation timestamps and durations are **integer nanoseconds**.
Integers make event ordering exact and runs bit-reproducible: there is
no floating-point accumulation drift, and two events scheduled for the
same instant compare equal rather than almost-equal.

This module provides the unit constants and the only sanctioned
conversion helpers.  Library code never multiplies by bare ``1e9``.
"""

from __future__ import annotations

#: One nanosecond (the base tick).
NANOSECOND: int = 1
#: One microsecond in nanoseconds.
MICROSECOND: int = 1_000
#: One millisecond in nanoseconds.
MILLISECOND: int = 1_000_000
#: One second in nanoseconds.
SECOND: int = 1_000_000_000

# Short aliases used throughout the code base.
NS = NANOSECOND
US = MICROSECOND
MS = MILLISECOND
SEC = SECOND


def ns_from_s(seconds: float) -> int:
    """Convert seconds (float) to integer nanoseconds, rounding half up."""
    return round(seconds * SECOND)


def ns_from_ms(millis: float) -> int:
    """Convert milliseconds (float) to integer nanoseconds."""
    return round(millis * MILLISECOND)


def ns_from_us(micros: float) -> int:
    """Convert microseconds (float) to integer nanoseconds."""
    return round(micros * MICROSECOND)


def s_from_ns(ns: int) -> float:
    """Convert integer nanoseconds to seconds (float)."""
    return ns / SECOND


def ms_from_ns(ns: int) -> float:
    """Convert integer nanoseconds to milliseconds (float)."""
    return ns / MILLISECOND


def us_from_ns(ns: int) -> float:
    """Convert integer nanoseconds to microseconds (float)."""
    return ns / MICROSECOND


def hz_to_period_ns(hz: float) -> int:
    """Period in nanoseconds of an event recurring at ``hz`` per second.

    Raises
    ------
    ValueError
        If ``hz`` is not strictly positive.
    """
    if hz <= 0:
        raise ValueError(f"frequency must be > 0, got {hz!r}")
    return round(SECOND / hz)


def period_ns_to_hz(period: int) -> float:
    """Frequency in Hz of an event with the given period in nanoseconds."""
    if period <= 0:
        raise ValueError(f"period must be > 0 ns, got {period!r}")
    return SECOND / period
