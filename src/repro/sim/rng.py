"""Deterministic random-number management.

Simulations draw randomness in many places (noise arrival jitter,
application load imbalance, network perturbation).  To keep runs
reproducible *and* insensitive to the order in which components are
constructed, every consumer gets its own :class:`numpy.random.Generator`
derived from a root seed plus a **stable string label** — never from
spawn order.

    tree = RandomTree(seed=42)
    rng = tree.generator("node3/noise/timer")

The same ``(seed, label)`` pair always yields the same stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomTree", "derive_seed", "derive_fraction", "node_seed"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, label: str) -> int:
    """A 128-bit integer seed derived from ``(root_seed, label)``.

    Uses SHA-256 so unrelated labels give statistically independent
    streams and the mapping is stable across platforms and Python
    versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}\x1f{label}".encode()).digest()
    return int.from_bytes(digest[:16], "little")


def derive_fraction(root_seed: int, label: str) -> float:
    """A uniform float in ``[0, 1)`` derived from ``(root_seed, label)``.

    The deterministic, construction-order-insensitive analogue of one
    ``rng.random()`` draw: the same ``(seed, label)`` pair always maps
    to the same fraction.  Used for per-event Bernoulli decisions
    (message drops, duplications) that must be stable across processes
    and monotone in the threshold — raising a probability threshold can
    only *add* events, never reshuffle which ones fire.
    """
    return (derive_seed(root_seed, label) >> 75) * 2.0 ** -53


def node_seed(root_seed: int, node_id: int) -> int:
    """The per-node seed every per-node stochastic stream derives from.

    One shared formula (rather than each subsystem inventing its own)
    so noise injection and fault injection on the same node stay
    decorrelated by *label*, not by luck.
    """
    return root_seed * 1_000_003 + node_id


class RandomTree:
    """Factory of independent, label-addressed random generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def generator(self, label: str) -> np.random.Generator:
        """The generator for ``label`` (a fresh instance each call).

        Two calls with the same label return *independent objects with
        identical streams*; callers should cache the generator if they
        need to keep drawing from one stream.
        """
        return np.random.Generator(np.random.PCG64(derive_seed(self.seed, label)))

    def child(self, prefix: str) -> "RandomTree":
        """A subtree whose labels are namespaced under ``prefix``."""
        return _PrefixedTree(self.seed, prefix)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomTree(seed={self.seed})"


class _PrefixedTree(RandomTree):
    """A :class:`RandomTree` view that prefixes every label."""

    def __init__(self, seed: int, prefix: str) -> None:
        super().__init__(seed)
        self._prefix = prefix

    def generator(self, label: str) -> np.random.Generator:
        return super().generator(f"{self._prefix}/{label}")

    def child(self, prefix: str) -> "RandomTree":
        return _PrefixedTree(self.seed, f"{self._prefix}/{prefix}")
