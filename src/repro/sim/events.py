"""Event primitives for the discrete-event simulation core.

The design follows the classic SimPy model: an :class:`Event` is a
one-shot object that is *triggered* (scheduled into the event queue),
then *processed* (its callbacks run at its scheduled time).  Processes
(:mod:`repro.sim.process`) suspend by yielding events and are resumed by
an event callback.

Only the pieces the repro library needs are implemented — this is a
purpose-built kernel, not a general framework — but each piece follows
the standard semantics so the code reads familiarly.
"""

from __future__ import annotations

import typing as _t

from ..errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Environment

__all__ = [
    "PENDING",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LAZY",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
]

#: Sentinel for an event that has not yet been given a value.
PENDING = object()

#: Events that must run before ordinary events at the same timestamp
#: (e.g. interrupt delivery).
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1
#: Events that run after ordinary events at the same timestamp
#: (e.g. bookkeeping flushes).
PRIORITY_LAZY = 2


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    Attributes
    ----------
    cause:
        Arbitrary object describing why the process was interrupted.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence inside an :class:`~repro.sim.core.Environment`.

    Lifecycle: *created* -> ``succeed()``/``fail()`` (becomes
    *triggered*, i.e. sits in the event queue) -> callbacks run
    (*processed*).  A processed event keeps its value forever so late
    inspectors can read ``event.value``.

    A triggered-but-unprocessed event may be :meth:`cancel`-led: it
    stays in the event queue (no O(n) heap surgery) but the main loop
    discards it without running callbacks or counting it as processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed",
                 "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables ``f(event)`` invoked when the event is processed.
        #: Set to ``None`` once processed (guards double-trigger bugs).
        self.callbacks: list[_t.Callable[["Event"], None]] | None = []
        self._value: object = PENDING
        self._ok: bool = True
        self._processed = False
        self._cancelled = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (has a value)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def value(self) -> object:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: object = None, *, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire *now* with ``value``.

        Returns ``self`` so calls can be chained.
        """
        if self._cancelled:
            raise SimulationError(f"{self!r} was cancelled")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def fail(self, exception: BaseException, *, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire *now*, failing with ``exception``.

        A waiting process receives the exception thrown at its yield
        point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._cancelled:
            raise SimulationError(f"{self!r} was cancelled")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def cancel(self) -> "Event":
        """Lazily cancel this event.

        The event is *not* removed from the environment's heap (that
        would be O(n)); instead the main loop drops it when popped, so
        its callbacks never run and it never counts as processed.
        Typical use: abandoning the losing :class:`Timeout` of a
        timeout-vs-completion race.  Cancelling an already-processed
        event is an error; cancelling twice is a no-op.
        """
        if self._processed:
            raise SimulationError(f"cannot cancel already-processed {self!r}")
        self._cancelled = True
        self.callbacks = []
        return self

    # -- internal --------------------------------------------------------
    def _run_callbacks(self) -> None:
        """Invoked by the environment when the event is popped."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("cancelled" if self._cancelled else
                 "processed" if self._processed else
                 "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at 0x{id(self):x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0 ns, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: _t.Sequence[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._n_fired = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
            if ev.callbacks is None:  # already processed
                self._on_fire(ev)
            else:
                ev.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # condition already decided
        if not event._ok:
            self.fail(_t.cast(BaseException, event._value))
            return
        self._n_fired += 1
        if self._decided():
            self.succeed(self._result())

    # hooks -------------------------------------------------------------
    def _decided(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _result(self) -> object:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every component event has fired; value is their values."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Sequence[Event]) -> None:
        super().__init__(env, events)
        if not self.events and self._value is PENDING:
            self.succeed([])

    def _decided(self) -> bool:
        return self._n_fired == len(self.events)

    def _result(self) -> object:
        return [ev.value for ev in self.events]


class AnyOf(_Condition):
    """Fires as soon as one component event fires; value is that value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Sequence[Event]) -> None:
        if not events:
            raise ValueError("AnyOf needs at least one event")
        super().__init__(env, events)

    def _decided(self) -> bool:
        return self._n_fired >= 1

    def _result(self) -> object:
        for ev in self.events:
            if ev.processed:
                return ev.value
        raise SimulationError("AnyOf decided with no processed event")  # pragma: no cover
