"""The discrete-event simulation environment.

:class:`Environment` owns the event queue and the clock.  Time is an
integer nanosecond counter (:mod:`repro.sim.timebase`); the queue is a
binary heap keyed by ``(time, priority, sequence)`` so simultaneous
events process in a deterministic order: priority first, then FIFO by
scheduling order.

The environment is single-threaded and purpose-built: one simulation
run is one ``Environment``.  The main loop is the hottest code in the
whole reproduction — every simulated compute block, message hop, and
kernel interruption flows through it — so :meth:`run` trades a little
readability for speed: the heap, ``heappop``, and stop conditions are
hoisted into locals, the common callback dispatch is inlined instead of
calling :meth:`~repro.sim.events.Event._run_callbacks`, and
``events_processed`` is accumulated locally and written back in one
batch (read it between ``run()`` calls, not from inside a callback).

Telemetry (:mod:`repro.obs`) hooks in two ways, both free when off:

* ``metrics=True`` counts scheduled events and tracks the heap's
  high-water mark (one predictable branch per ``schedule()``);
  cancelled-event discards are counted unconditionally because the
  cost lands only on the rare cancelled pop.
* ``tracer`` (a :class:`~repro.obs.SpanTracer`) routes :meth:`run`
  through a separate instrumented loop emitting one trace instant per
  processed event — the three fast loops are untouched when it is
  ``None``.
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from ..errors import DeadlockError, SimulationError
from .events import PRIORITY_NORMAL, AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment"]


class Environment:
    """Owns simulated time and the pending-event queue.

    Parameters
    ----------
    initial_time:
        Starting clock value in nanoseconds (default 0).
    """

    __slots__ = ("_now", "_queue", "_seq", "events_processed",
                 "_live_processes", "_metrics",
                 "events_cancelled", "max_heap_depth", "tracer",
                 "_det_check", "det_checksum")

    def __init__(self, initial_time: int = 0, *, metrics: bool = False,
                 tracer: _t.Any = None, det_check: bool = False) -> None:
        if initial_time < 0:
            raise ValueError("initial_time must be >= 0")
        self._now: int = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = count()
        #: Number of events processed so far (profiling/diagnostics).
        #: Updated in one batch at the end of each ``run()`` call.
        self.events_processed: int = 0
        #: Count of live (spawned, not yet terminated) processes.
        self._live_processes: int = 0
        #: Telemetry gate for the per-schedule counters below.
        self._metrics = bool(metrics)
        #: Cancelled events discarded by the pop paths (always counted;
        #: the increment only runs on the rare cancelled branch).
        self.events_cancelled: int = 0
        #: Heap-depth high-water mark (only when ``metrics``).
        self.max_heap_depth: int = 0
        #: Optional :class:`~repro.obs.SpanTracer`; when set, ``run()``
        #: uses an instrumented loop emitting one instant per event.
        self.tracer = tracer
        #: Determinism spot-check (``obs.configure(det_check=True)``):
        #: fold every scheduled ``(time, priority, seq)`` tuple into an
        #: order-sensitive FNV-1a checksum.  Two runs schedule the same
        #: events in the same order iff the checksums match — the
        #: runtime counterpart to the static DET rules, catching
        #: dynamic ordering divergence the linter cannot see.
        self._det_check = bool(det_check)
        self.det_checksum: int = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total events ever pushed onto the queue.

        Every scheduled event is eventually popped (processed or
        discarded as cancelled) or still sits in the heap, so the total
        is derived rather than counted — :meth:`schedule` stays free of
        a per-push increment.  Exact once a ``run()`` has returned (the
        processed count is written back in one batch).
        """
        return (self.events_processed + self.events_cancelled
                + len(self._queue))

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, *, delay: int = 0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Insert ``event`` into the queue ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        seq = next(self._seq)
        heapq.heappush(self._queue, (when, priority, seq, event))
        if self._metrics and len(self._queue) > self.max_heap_depth:
            self.max_heap_depth = len(self._queue)
        if self._det_check:
            # Order-sensitive 64-bit FNV-1a over the tuple stream; int
            # arithmetic only, so it is identical across processes and
            # unaffected by PYTHONHASHSEED.
            h = self.det_checksum
            for v in (when, priority, seq):
                h = ((h ^ (v & 0xFFFFFFFFFFFFFFFF)) * 0x100000001B3) \
                    & 0xFFFFFFFFFFFFFFFF
            self.det_checksum = h

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: object = None) -> Timeout:
        """An event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator[Event, object, object],
                *, name: str | None = None) -> Process:
        """Spawn ``generator`` as a simulation process.

        The generator yields :class:`Event` objects to wait on them and
        may ``return`` a value, which becomes the process event's value.
        """
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- main loop ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next live (non-cancelled) event.

        Cancelled events encountered on the way are discarded without
        running callbacks or counting as processed.

        Raises
        ------
        SimulationError
            If no live event remains in the queue.
        """
        queue = self._queue
        while queue:
            when, _prio, _seq, event = heapq.heappop(queue)
            if event._cancelled:
                self.events_cancelled += 1
                continue
            self._now = when
            self.events_processed += 1
            event._run_callbacks()
            return
        raise SimulationError("step() on an empty event queue")

    def peek(self) -> int | None:
        """Timestamp of the next queued live event, or ``None`` if drained.

        Discards any cancelled events sitting at the head of the heap.
        """
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self.events_cancelled += 1
        return queue[0][0] if queue else None

    def run(self, until: int | Event | None = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the queue drains.  If live processes
              remain blocked at that point, raise :class:`DeadlockError`.
            * ``int`` — run until the clock reaches that absolute time.
              Events at exactly ``until`` are *not* processed — they
              stay queued for a later ``run()`` call.  This holds even
              on the edge ``until == now``: ``run(until=env.now)`` is a
              no-op that leaves same-instant events pending.  If the
              queue drains before ``until``, the clock jumps straight
              to ``until`` (and :meth:`peek` then reports ``None``).
            * :class:`Event` — run until that event is processed and
              return its value (re-raising its exception if it failed).
        """
        stop_event: Event | None = None
        stop_time: int | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = int(until)
            if stop_time < self._now:
                raise SimulationError(f"run(until={stop_time}) is in the past (now={self._now})")

        # Hot loop: locals for the heap and heappop, inlined callback
        # dispatch (the body of Event._run_callbacks), and batched
        # events_processed / events_cancelled updates.  Three
        # specialisations so the run-to-drain case — the common one —
        # tests nothing per event beyond the pop itself; a fourth,
        # instrumented loop takes over only when a tracer is attached.
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        discarded = 0
        try:
            if self.tracer is not None:
                tr = self.tracer
                emit = tr.instant
                while queue:
                    if stop_time is not None and queue[0][0] >= stop_time:
                        break
                    if stop_event is not None and stop_event._processed:
                        break
                    when, _prio, _seq, event = pop(queue)
                    if event._cancelled:
                        discarded += 1
                        continue
                    self._now = when
                    processed += 1
                    emit("sim", type(event).__name__, when)
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
            elif stop_event is None and stop_time is None:
                while queue:
                    when, _prio, _seq, event = pop(queue)
                    if event._cancelled:
                        discarded += 1
                        continue
                    self._now = when
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
            elif stop_time is not None:
                while queue:
                    if queue[0][0] >= stop_time:
                        self._now = stop_time
                        return None
                    when, _prio, _seq, event = pop(queue)
                    if event._cancelled:
                        discarded += 1
                        continue
                    self._now = when
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
            else:
                stop = _t.cast(Event, stop_event)
                while queue and not stop._processed:
                    when, _prio, _seq, event = pop(queue)
                    if event._cancelled:
                        discarded += 1
                        continue
                    self._now = when
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
        finally:
            self.events_processed += processed
            self.events_cancelled += discarded

        if stop_event is not None:
            if not stop_event.processed:
                raise DeadlockError(
                    "event queue drained before the awaited event fired "
                    f"({self._live_processes} live process(es) blocked)")
            if not stop_event.ok:
                raise _t.cast(BaseException, stop_event._value)
            return stop_event.value

        if stop_time is not None:
            # Queue drained before reaching stop_time: clock jumps ahead.
            self._now = stop_time
            return None

        if self._live_processes:
            raise DeadlockError(
                f"simulation ended with {self._live_processes} process(es) "
                "still waiting on events that can never fire")
        return None

    def run_until_empty(self, *, max_events: int | None = None) -> None:
        """Run until the queue drains, bounded by ``max_events``.

        A safety harness around ``run()``: identical drain semantics
        (including the :class:`DeadlockError` check for blocked
        processes), but if more than ``max_events`` live events process
        before the queue empties, raise :class:`SimulationError` so a
        runaway workload fails fast instead of spinning forever in CI.

        Parameters
        ----------
        max_events:
            Cap on events processed by this call (``None`` = no cap).
        """
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")

        queue = self._queue
        pop = heapq.heappop
        processed = 0
        discarded = 0
        try:
            while queue:
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"run_until_empty() exceeded max_events={max_events} "
                        f"with {len(queue)} event(s) still queued at "
                        f"t={self._now}ns — runaway workload?")
                when, _prio, _seq, event = pop(queue)
                if event._cancelled:
                    discarded += 1
                    continue
                self._now = when
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                if callbacks:
                    for cb in callbacks:
                        cb(event)
        finally:
            self.events_processed += processed
            self.events_cancelled += discarded

        if self._live_processes:
            raise DeadlockError(
                f"simulation ended with {self._live_processes} process(es) "
                "still waiting on events that can never fire")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Environment t={self._now}ns queued={len(self._queue)} "
                f"processed={self.events_processed}>")
