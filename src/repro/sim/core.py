"""The discrete-event simulation environment.

:class:`Environment` owns the event queue and the clock.  Time is an
integer nanosecond counter (:mod:`repro.sim.timebase`); the queue is a
binary heap keyed by ``(time, priority, sequence)`` so simultaneous
events process in a deterministic order: priority first, then FIFO by
scheduling order.

The environment is single-threaded and purpose-built: one simulation
run is one ``Environment``.
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from ..errors import DeadlockError, SimulationError
from .events import PRIORITY_NORMAL, AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment"]


class Environment:
    """Owns simulated time and the pending-event queue.

    Parameters
    ----------
    initial_time:
        Starting clock value in nanoseconds (default 0).
    """

    def __init__(self, initial_time: int = 0) -> None:
        if initial_time < 0:
            raise ValueError("initial_time must be >= 0")
        self._now: int = int(initial_time)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = count()
        #: Number of events processed so far (profiling/diagnostics).
        self.events_processed: int = 0
        #: Count of live (spawned, not yet terminated) processes.
        self._live_processes: int = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer nanoseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, *, delay: int = 0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Insert ``event`` into the queue ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: object = None) -> Timeout:
        """An event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator[Event, object, object],
                *, name: str | None = None) -> Process:
        """Spawn ``generator`` as a simulation process.

        The generator yields :class:`Event` objects to wait on them and
        may ``return`` a value, which becomes the process event's value.
        """
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- main loop ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("event queue time went backwards")
        self._now = when
        self.events_processed += 1
        event._run_callbacks()

    def peek(self) -> int | None:
        """Timestamp of the next queued event, or ``None`` if drained."""
        return self._queue[0][0] if self._queue else None

    def run(self, until: int | Event | None = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the queue drains.  If live processes
              remain blocked at that point, raise :class:`DeadlockError`.
            * ``int`` — run until the clock reaches that absolute time
              (events at exactly ``until`` are *not* processed).
            * :class:`Event` — run until that event is processed and
              return its value (re-raising its exception if it failed).
        """
        stop_event: Event | None = None
        stop_time: int | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = int(until)
            if stop_time < self._now:
                raise SimulationError(f"run(until={stop_time}) is in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if stop_time is not None and self._queue[0][0] >= stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.processed:
                raise DeadlockError(
                    "event queue drained before the awaited event fired "
                    f"({self._live_processes} live process(es) blocked)")
            if not stop_event.ok:
                raise _t.cast(BaseException, stop_event._value)
            return stop_event.value

        if stop_time is not None:
            # Queue drained before reaching stop_time: clock jumps ahead.
            self._now = stop_time
            return None

        if self._live_processes:
            raise DeadlockError(
                f"simulation ended with {self._live_processes} process(es) "
                "still waiting on events that can never fire")
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Environment t={self._now}ns queued={len(self._queue)} "
                f"processed={self.events_processed}>")
