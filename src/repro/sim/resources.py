"""Shared-resource primitives: FIFO :class:`Store` and counting
:class:`Resource`.

These follow SimPy semantics.  The MPI layer uses bespoke matching
queues, but stores/resources are the right tool for NIC queues, bounded
buffers in applications, and tests of the engine itself.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from .events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Store", "Resource"]


class Store:
    """An unbounded-or-bounded FIFO of Python objects.

    ``put(item)`` and ``get()`` both return events.  Gets complete in
    request order (FIFO fairness); a bounded store blocks puts while
    full.
    """

    __slots__ = ("env", "capacity", "items", "_getters", "_putters")

    def __init__(self, env: "Environment", capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self.items: deque[object] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, object]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: object) -> Event:
        """Deposit ``item``; the returned event fires when stored."""
        ev = Event(self.env)
        if self.capacity is not None and len(self.items) >= self.capacity:
            self._putters.append((ev, item))
        else:
            self._deposit(item)
            ev.succeed()
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; the event's value is the item."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    # -- internal --------------------------------------------------------
    def _deposit(self, item: object) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and (self.capacity is None or len(self.items) < self.capacity):
            ev, item = self._putters.popleft()
            self._deposit(item)
            ev.succeed()


class Resource:
    """A counting resource with ``capacity`` concurrent slots.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release()
    """

    __slots__ = ("env", "capacity", "_in_use", "_waiters")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of pending (unserved) requests."""
        return len(self._waiters)

    def request(self) -> Event:
        """Acquire a slot; the returned event fires when granted."""
        ev = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Give a slot back, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
