"""Deterministic discrete-event simulation engine.

The engine is the substrate under the whole reproduction: simulated
time is integer nanoseconds, processes are Python generators yielding
:class:`Event` objects, and same-instant events process in a
deterministic (priority, FIFO) order so every run with the same seed is
bit-identical.

Quick taste::

    from repro.sim import Environment

    env = Environment()

    def worker(env):
        yield env.timeout(5_000)
        return env.now

    p = env.process(worker(env))
    assert env.run(until=p) == 5_000
"""

from .core import Environment
from .events import (
    PRIORITY_LAZY,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from .process import Process
from .resources import Resource, Store
from .rng import RandomTree, derive_seed
from .timebase import (
    MICROSECOND,
    MILLISECOND,
    MS,
    NANOSECOND,
    NS,
    SEC,
    SECOND,
    US,
    hz_to_period_ns,
    ms_from_ns,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
    period_ns_to_hz,
    s_from_ns,
    us_from_ns,
)

__all__ = [
    "Environment", "Event", "Timeout", "Process", "Interrupt",
    "AllOf", "AnyOf", "Store", "Resource", "RandomTree", "derive_seed",
    "PRIORITY_URGENT", "PRIORITY_NORMAL", "PRIORITY_LAZY",
    "NANOSECOND", "MICROSECOND", "MILLISECOND", "SECOND",
    "NS", "US", "MS", "SEC",
    "ns_from_s", "ns_from_ms", "ns_from_us",
    "s_from_ns", "ms_from_ns", "us_from_ns",
    "hz_to_period_ns", "period_ns_to_hz",
]
