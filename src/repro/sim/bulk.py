"""Bulk-rank fast path: advance homogeneous ranks as numpy arrays.

The per-rank generator path costs O(P) Python frames *per round* of a
collective, which caps noise-amplification experiments near a few
hundred ranks.  When every rank runs the same program (the collective
microbenchmark), the machine is lightweight (no intrinsic kernel
activity, no host NIC processing), and the injected noise is strictly
periodic, the whole simulation state per rank collapses to a handful
of int64 scalars:

* ``t``          — the rank's CPU clock;
* ``tx_free``    — its NIC's next free transmit slot;
* ``rx_free``    — its NIC's next free receive slot;
* per-(src, dst) channel clearance for the FIFO guarantee.

:class:`BulkEngine` advances those arrays over an explicit *round
list* (the collective's dependency structure, built by
:mod:`repro.mpi.collectives.bulk`), replaying exactly the arithmetic
of the generator path — LogGP costs, NIC serialization, per-channel
FIFO bumps, the in-frame resume rule, and the noise wall-time fixed
point — so results are **byte-identical** to the per-rank simulation
wherever both run.  The equivalence tests enforce this; any change to
the message timeline in :mod:`repro.net` or :mod:`repro.mpi` must be
mirrored here.

The engine schedules no DES events, so an order-sensitive ``det_check``
checksum cannot exist for it; instead it emits a deterministic
timeline checksum over every rank's per-repetition start/end clocks
(:func:`timeline_checksum`), which the generator path can reproduce
from its recorded finish times for cross-path comparison.
"""

from __future__ import annotations

import hashlib
import typing as _t
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = ["BulkDivergence", "RoundSpec", "BulkEngine", "BulkTimeline",
           "timeline_checksum", "timelines_from_finish"]

#: Receive-slot history depth per rank.  An out-of-order arrival can
#: only be reconciled against slots still in the window; the deepest
#: realistic reorder spans the rounds of one repetition (noise delays a
#: subtree by at most a few events), far below this.
_HISTORY = 32

#: Iteration cap for the per-repetition arrival fixpoint.  Collision
#: cascades settle in 2–4 iterations in practice; hitting the cap means
#: the timing equations oscillate, which only the DES can resolve.
_MAX_FIXPOINT = 32

#: Per-receiver-group offset for the segmented running-max trick in the
#: slot sweep (large enough to dominate any clock value, small enough
#: that n_ranks * _BIG stays inside int64).
_BIG = 1 << 40


class BulkDivergence(SimulationError):
    """The bulk path's ordering assumptions broke for this workload.

    The one piece of DES state the engine cannot always reconstruct is
    the receive-NIC serialization order: the DES serves arrivals at a
    rank in *global time* order, the engine in *round* order.
    Out-of-order arrivals (a delayed subtree's message landing after a
    later round's) are handled exactly through the per-rank slot
    history — unless two arrivals at one rank either coincide to the
    nanosecond (the DES breaks that tie by event sequence number,
    which only the event simulation knows) or their NIC slots collide.
    Then this is raised; rerun with the generator path
    (``mode="generator"``).  The static shape gates in
    :func:`repro.mpi.collectives.bulk.unsupported_reason` exclude the
    configurations where such ties are structural.
    """


@dataclass(frozen=True)
class RoundSpec:
    """One dependency round of a collective.

    Every listed sender posts its receive (free), pays send overhead,
    and injects one message to its destination; every destination then
    completes its receive (at most one message per destination per
    round), pays receive overhead, and optionally the reduction cost.
    A rank appearing in both ``senders`` and ``dst`` models a
    ``sendrecv`` (send before receive, the generator's program order).
    """

    #: Ranks sending this round (int64, no duplicates).
    senders: np.ndarray
    #: senders[i] sends to dst[i] (int64; no rank appears twice).
    dst: np.ndarray
    #: Message size in bytes.
    size: int
    #: Reduction CPU ns each receiver pays after recv overhead (0 = none).
    combine_work: int = 0


@dataclass(frozen=True)
class BulkTimeline:
    """Per-rank clocks around each timed repetition."""

    #: (reps, P) rank clock when the rep's aligning barrier finished.
    starts: np.ndarray
    #: (reps, P) rank clock when the rep's collective finished.
    ends: np.ndarray

    @property
    def times_ns(self) -> np.ndarray:
        """Per-rep completion time: max end minus min start (ns)."""
        return (self.ends.max(axis=1) - self.starts.min(axis=1)).astype(np.int64)

    def checksum(self) -> int:
        return timeline_checksum(self.starts, self.ends)


def timeline_checksum(starts: np.ndarray, ends: np.ndarray) -> int:
    """Deterministic checksum of the full (reps, P) timeline pair."""
    h = hashlib.sha256()
    for arr in (starts, ends):
        h.update(np.ascontiguousarray(arr, dtype="<i8").tobytes())
    return int.from_bytes(h.digest()[:8], "little")


def timelines_from_finish(finish: _t.Sequence[_t.Mapping[int, tuple[int, int]]],
                          n_ranks: int) -> BulkTimeline:
    """Adapt the generator path's recorded finish times to arrays.

    ``finish[rep][rank] == (start, end)`` as the collective
    microbenchmark records it; used by the equivalence tests to
    compare both paths element-for-element.
    """
    reps = len(finish)
    starts = np.empty((reps, n_ranks), dtype=np.int64)
    ends = np.empty((reps, n_ranks), dtype=np.int64)
    for rep, per_rank in enumerate(finish):
        for rank in range(n_ranks):
            starts[rep, rank], ends[rep, rank] = per_rank[rank]
    return BulkTimeline(starts, ends)


@dataclass
class _CompiledRound:
    """A :class:`RoundSpec` bound to one engine's channel table."""

    spec: RoundSpec
    #: src * P + dst per message — stable identity of each channel.
    key: np.ndarray
    #: Positions of ``key`` in the engine's edge table, valid while
    #: ``version`` matches the engine's; rebound lazily after merges.
    eidx: np.ndarray
    version: int
    wire_const: int
    extra: np.ndarray
    order: np.ndarray


class _BulkNoise:
    """Vectorized mirror of the per-node noise sources.

    ``period == 0`` models the quiet machine (every node NullNoise);
    otherwise node ``i`` runs ``PeriodicNoise(period, duration,
    phase=phases[i])``.  :meth:`wall` reproduces
    :meth:`repro.noise.NoiseSource.wall_time` exactly: the same
    8-step fixed-point iteration, with the rare unconverged lanes
    delegated to the scalar implementation (which finishes with
    doubling + bisection).
    """

    def __init__(self, period: int, duration: int,
                 phases: np.ndarray | None) -> None:
        self.period = int(period)
        self.duration = int(duration)
        self.phases = phases

    def _stolen(self, phase: np.ndarray, start: np.ndarray,
                end: np.ndarray) -> np.ndarray:
        # PeriodicNoise.stolen_between's closed form, vectorized.
        # int64 floor division matches Python's for negative operands,
        # so every intermediate is bit-equal to the scalar path.
        period, duration = self.period, self.duration
        k_lo = -((phase - start) // period)
        k_hi = -((phase - end) // period) - 1
        n = k_hi - k_lo + 1
        last_start = phase + k_hi * period
        body = (n - 1) * duration + np.minimum(duration, end - last_start)
        total = np.where(n >= 1, body, 0)
        prev_end = phase + (k_lo - 1) * period + duration
        head = np.where(prev_end > start,
                        np.minimum(prev_end, end) - start, 0)
        return total + head

    def wall_cached(self, start: np.ndarray, work: int,
                    lanes: np.ndarray, cache: dict) -> np.ndarray:
        """:meth:`wall`, memoized on the previous call's inputs.

        The per-repetition fixpoint re-evaluates the same rounds with
        mostly-identical clocks; only lanes whose ``start`` changed
        since the cached evaluation are recomputed.
        """
        prev = cache.get(work)
        if prev is None or len(prev[0]) != len(start):
            out = self.wall(start, work, lanes)
            cache[work] = (start.copy(), out.copy())
            return out
        p_start, p_out = prev
        diff = p_start != start
        if not diff.any():
            return p_out.copy()
        out = p_out.copy()
        out[diff] = self.wall(start[diff], work, lanes[diff])
        p_start[:] = start
        p_out[:] = out
        return out

    def wall(self, start: np.ndarray, work: int,
             lanes: np.ndarray) -> np.ndarray:
        """Wall-clock ns for ``work`` ns of CPU on ranks ``lanes``
        starting at ``start`` (parallel arrays)."""
        if work == 0 or self.phases is None:
            return np.full(start.shape, work, dtype=np.int64)
        phase = self.phases[lanes]
        t = np.full(start.shape, work, dtype=np.int64)
        conv = np.zeros(start.shape, dtype=bool)
        for _ in range(8):
            new_t = work + self._stolen(phase, start, start + t)
            conv |= new_t == t
            t = new_t
            if conv.all():
                return t
        # A lane that is still moving after 8 steps sits inside (or
        # keeps hitting) events; finish with the scalar solver's exact
        # doubling + bisection (idle(T) = T - stolen is monotone), step
        # for step, vectorized over the stuck lanes.
        idx = np.nonzero(~conv)[0]
        ph, st = phase[idx], start[idx]
        hi = t[idx].copy()
        while True:
            need = hi - self._stolen(ph, st, st + hi) < work
            if not need.any():
                break
            hi[need] *= 2
        lo = np.full(len(idx), work, dtype=np.int64)
        while (lo < hi).any():
            mid = (lo + hi) // 2
            ok = mid - self._stolen(ph, st, st + mid) >= work
            hi = np.where(ok, mid, hi)
            lo = np.where(ok, lo, mid + 1)
        t[idx] = lo
        return t


class BulkEngine:
    """Array-at-a-time executor for homogeneous collective rounds.

    Parameters
    ----------
    n_ranks:
        World size (rank ``i`` lives on node ``i`` — COMM_WORLD only).
    params:
        :class:`repro.net.LogGPParams` (``jitter_ns`` must be 0).
    topology:
        Pair extra-cost provider (:meth:`Topology.extra_cost_vec`).
    noise:
        ``(period, duration, phases)`` from
        :meth:`repro.noise.InjectionPlan.periodic_profile`, or ``None``
        for a quiet machine.
    reduce_cost_per_byte:
        As on :class:`repro.core.MachineConfig`.
    """

    def __init__(self, n_ranks: int, params, topology,
                 noise: tuple | None = None, *,
                 reduce_cost_per_byte: float = 0.25,
                 tie_break: str = "strict") -> None:
        if n_ranks <= 0:
            raise SimulationError("bulk engine needs n_ranks > 0")
        if params.jitter_ns:
            raise SimulationError("bulk engine does not model wire jitter")
        if tie_break not in ("strict", "deterministic"):
            raise SimulationError(
                f"tie_break must be strict|deterministic, got {tie_break!r}")
        self.P = n_ranks
        #: ``"strict"`` raises on exact-nanosecond arrival ties whose
        #: DES order is unknowable; ``"deterministic"`` resolves them in
        #: round order (deterministic, but may deviate from the event
        #: path by up to ``g`` ns per tie — for scales the generator
        #: cannot reach).  :attr:`tie_breaks` counts such resolutions.
        self.tie_break = tie_break
        self.tie_breaks = 0
        #: Repetitions that needed the arrival-fixpoint rescue.
        self.fixpoint_reps = 0
        self._sticky_fixpoint = False
        self.params = params
        self.topology = topology
        self.reduce_cost_per_byte = reduce_cost_per_byte
        if noise is None or noise[2] is None and noise[0] == 0:
            period, duration, phases = (noise or (0, 0, None))
            self.noise = _BulkNoise(period, duration, None)
        else:
            self.noise = _BulkNoise(*noise)
        #: Rank CPU clocks.
        self.t = np.zeros(n_ranks, dtype=np.int64)
        #: NIC serialization state (NIC._tx_free_at / _rx_free_at).
        self.tx_free = np.zeros(n_ranks, dtype=np.int64)
        self.rx_free = np.zeros(n_ranks, dtype=np.int64)
        #: Latest (time-max) booked arrival per rank.
        self.rx_last = np.full(n_ranks, -1, dtype=np.int64)
        #: Recent receive slots per rank (circular, booking order):
        #: arrival and slot start.  Empty entries read as an arrival of
        #: -1 with slot end 0 — exactly the NIC's initial free time —
        #: so they act as the "no predecessor yet" boundary.
        self._hist_arr = np.full((n_ranks, _HISTORY), -1, dtype=np.int64)
        self._hist_start = np.full((n_ranks, _HISTORY), -params.g,
                                   dtype=np.int64)
        self._hist_resume = np.zeros((n_ranks, _HISTORY), dtype=np.int64)
        self._hist_ts = np.zeros((n_ranks, _HISTORY), dtype=np.int64)
        self._hist_sstart = np.zeros((n_ranks, _HISTORY), dtype=np.int64)
        self._hist_cur = np.zeros(n_ranks, dtype=np.intp)
        #: Channel FIFO clearance, keyed by compacted edge index.
        self._edge_keys: np.ndarray | None = None
        self._chan: np.ndarray | None = None
        #: Bumped whenever a prepare() merge re-indexes _edge_keys, so
        #: earlier compiled rounds rebind their edge slots before use.
        self._edge_version = 0

    # -- round preparation -------------------------------------------------
    def prepare(self, rounds: _t.Sequence[RoundSpec]) -> list["_CompiledRound"]:
        """Precompute per-round constants for a round list.

        Per round: the sender→edge-slot mapping for the FIFO state, the
        size-only wire constant, the per-pair extra cost vector, and
        the receive permutation.  The compiled form is reusable across
        repetitions (the rounds repeat; only the clocks move) and
        across later ``prepare`` calls — new edges re-index the channel
        table, and previously compiled rounds rebind lazily.
        """
        keys = [r.senders * self.P + r.dst for r in rounds]
        all_keys = (np.unique(np.concatenate(keys)) if keys
                    else np.empty(0, dtype=np.int64))
        if self._edge_keys is None:
            self._edge_keys = all_keys
            self._chan = np.full(len(all_keys), -1, dtype=np.int64)
        elif len(np.setdiff1d(all_keys, self._edge_keys, assume_unique=True)):
            # Merge newly seen edges, carrying existing clearances over.
            # Slot positions shift, so older compiled rounds must rebind.
            merged = np.unique(np.concatenate([self._edge_keys, all_keys]))
            chan = np.full(len(merged), -1, dtype=np.int64)
            chan[np.searchsorted(merged, self._edge_keys)] = self._chan
            self._edge_keys = merged
            self._chan = chan
            self._edge_version += 1
        compiled = []
        for r, key in zip(rounds, keys):
            if len(np.unique(r.dst)) != len(r.dst):
                raise SimulationError(
                    "bulk round has multiple messages to one destination")
            compiled.append(_CompiledRound(
                spec=r,
                key=key,
                eidx=np.searchsorted(self._edge_keys, key),
                version=self._edge_version,
                wire_const=self.params.wire_time(r.size, 0),
                extra=self.topology.extra_cost_vec(r.senders, r.dst, r.size),
                order=np.argsort(r.dst, kind="stable")))
        return compiled

    # -- execution ----------------------------------------------------------
    def _send_phase(self, cr: "_CompiledRound", wall_cache: dict | None = None):
        """Pay send overhead and inject every message of one round.

        Returns ``(arrival, ts, start)`` per message: wire arrival at
        the destination, the send instant (post-overhead clock), and
        the sender's pre-overhead clock — the two tie-break keys the
        receive side needs.
        """
        if cr.version != self._edge_version:
            cr.eidx = np.searchsorted(self._edge_keys, cr.key)
            cr.version = self._edge_version
        r, eidx = cr.spec, cr.eidx
        o = self.params.o
        g = self.params.g
        t, noise = self.t, self.noise
        s = r.senders

        # Pay LogGP o as CPU work (noise-stretched), then inject
        # through the tx NIC and the wire.
        start = t[s]
        if wall_cache is None:
            ts = start + noise.wall(start, o, s)
        else:
            ts = start + noise.wall_cached(start, o, s, wall_cache)
        departure = np.maximum(ts, self.tx_free[s])
        self.tx_free[s] = departure + g
        arrival = departure + cr.wire_const + cr.extra
        # FIFO per channel: strictly increasing arrivals (the DES bumps
        # a would-be tie to prev+1; max() is identical since clearances
        # only ever grow).
        arrival = np.maximum(arrival, self._chan[eidx] + 1)
        self._chan[eidx] = arrival
        t[s] = ts
        return arrival, ts, start

    def run_round(self, compiled_round: "_CompiledRound") -> None:
        """Advance the machine through one compiled round."""
        cr = compiled_round
        r = cr.spec
        order = cr.order
        g = self.params.g
        o = self.params.o
        t, noise = self.t, self.noise
        d = r.dst

        arrival, ts, start = self._send_phase(cr)

        # Receive side.  The DES serializes each rank's rx NIC in
        # *global arrival* order; this engine books slots in *round*
        # order.  The two agree directly while arrivals at a rank are
        # increasing (the common case — fully vectorized); an
        # out-of-order arrival (a noise-delayed subtree's message
        # landing after a later round's) is reconciled against the
        # rank's slot history, which either reproduces the DES slot
        # exactly or raises BulkDivergence when it genuinely depends on
        # the DES tie-break.
        arr = arrival[order]
        recvers = d[order]
        ts_m = ts[order]
        sstart_m = start[order]
        in_order = arr > self.rx_last[recvers]
        if in_order.all():
            rx_start = np.maximum(arr, self.rx_free[recvers])
            self._book(recvers, arr, rx_start,
                       np.maximum(t[recvers], rx_start), ts_m, sstart_m)
            self.rx_last[recvers] = arr
            self.rx_free[recvers] = rx_start + g
        else:
            rx_start = np.empty_like(arr)
            io = np.nonzero(in_order)[0]
            rio = recvers[io]
            rx_start[io] = np.maximum(arr[io], self.rx_free[rio])
            self._book(rio, arr[io], rx_start[io],
                       np.maximum(t[rio], rx_start[io]), ts_m[io],
                       sstart_m[io])
            self.rx_last[rio] = arr[io]
            self.rx_free[rio] = rx_start[io] + g
            for i in np.nonzero(~in_order)[0]:
                rx_start[i] = self._slot_out_of_order(
                    int(recvers[i]), int(arr[i]), int(ts_m[i]),
                    int(sstart_m[i]))
        # Handoff == rx_start (no host NIC processing on the machines
        # the bulk path admits); the receiver resumes at
        # max(own clock, handoff) — the in-frame resume rule — then
        # pays LogGP o, then any reduction work.
        resume = np.maximum(t[recvers], rx_start)
        done = resume + noise.wall(resume, o, recvers)
        if r.combine_work:
            done = done + noise.wall(done, r.combine_work, recvers)
        t[recvers] = done

    # -- rx NIC slot bookkeeping -------------------------------------------
    def _book(self, ranks: np.ndarray, arr: np.ndarray, rx_start: np.ndarray,
              resume: np.ndarray, ts: np.ndarray,
              sstart: np.ndarray) -> None:
        """Record slots in the per-rank circular history (ranks are
        unique within a round, so the fancy writes never collide)."""
        cur = self._hist_cur[ranks]
        self._hist_arr[ranks, cur] = arr
        self._hist_start[ranks, cur] = rx_start
        self._hist_resume[ranks, cur] = resume
        self._hist_ts[ranks, cur] = ts
        self._hist_sstart[ranks, cur] = sstart
        self._hist_cur[ranks] = (cur + 1) % _HISTORY

    def _book_one(self, dd: int, a: int, rx_start: int, resume: int,
                  ts: int, sstart: int) -> None:
        cur = int(self._hist_cur[dd])
        self._hist_arr[dd, cur] = a
        self._hist_start[dd, cur] = rx_start
        self._hist_resume[dd, cur] = resume
        self._hist_ts[dd, cur] = ts
        self._hist_sstart[dd, cur] = sstart
        self._hist_cur[dd] = (cur + 1) % _HISTORY

    def _slot_out_of_order(self, dd: int, a: int, ts: int,
                           sstart: int) -> int:
        """DES-exact rx slot for an arrival at or before ``rx_last[dd]``.

        In global time order the message slots between a predecessor
        and a successor that the engine has already booked.  Its slot
        start is ``max(a, predecessor end)`` — bit-equal to what the
        DES computed when it served this arrival — *provided* inserting
        it does not move any already-booked slot, i.e. the slot ends at
        or before the nearest successor's *arrival*.

        An exact-nanosecond tie with a booked arrival is served in DES
        event-sequence order, which equals arrival-event *creation*
        order: the chronological order of the two ``inject`` calls, a
        thing the engine knows (the send instants).  A tie is therefore
        resolvable when the partner was sent strictly first (the
        engine's booking order already matches the DES) — and even with
        the send order unknown or inverted it is still benign when
        neither resume depends on the slot assignment, because the slot
        *set* ``{s, s+g}`` is the same either way.  An inverted
        consequential tie arrives too late to fix (the partner's resume
        already propagated), and an equal-instant consequential tie is
        unknowable; both raise.
        """
        ha = self._hist_arr[dd]
        hs = self._hist_start[dd]
        g = self.params.g
        tie = np.nonzero(ha == a)[0]
        if len(tie) > 1:
            raise BulkDivergence(
                "three-way simultaneous arrival at one rank; the DES "
                "tie-break is only reproducible on the generator path")
        if len(tie) == 1:
            j = int(tie[0])
            s1 = int(hs[j])
            r1 = int(self._hist_resume[dd, j])
            ts1 = int(self._hist_ts[dd, j])
            sst1 = int(self._hist_sstart[dd, j])
            t_now = int(self.t[dd])
            # Benign iff swapping the two slots changes neither resume:
            # the partner's (r1) and this rank's clock (t_now) must both
            # already sit at/after the later slot s1 + g.
            benign = g == 0 or (r1 >= s1 + g and t_now >= s1 + g)
            # DES order for equal arrivals = arrival-event creation
            # order: the send instants, or — when those also tie — the
            # creation instants of the send-overhead compute events
            # (each sender's pre-overhead clock).
            des_first = ts1 < ts or (ts1 == ts and sst1 < sstart)
            if not (benign or des_first):
                raise BulkDivergence(
                    "consequential simultaneous arrivals at one rank "
                    "with no earlier-send order to break the tie; the "
                    "per-rank generator path reproduces the DES order")
            handoff = s1 + g
            succ = ha > a
            if succ.any() and handoff + g > int(ha[succ].min()):
                raise BulkDivergence(
                    "receive-NIC slot collision behind a tied arrival; "
                    "rerun with the per-rank generator path")
            if a == self.rx_last[dd]:
                # The partner held the latest slot; this one now does.
                self.rx_free[dd] = max(int(self.rx_free[dd]), handoff + g)
            self._book_one(dd, a, handoff, max(t_now, handoff), ts, sstart)
            return handoff

        if a == self.rx_last[dd]:
            raise BulkDivergence(
                "arrival ties a slot evicted from the rank's history; "
                "rerun with the per-rank generator path")
        pred = ha < a
        real = ha >= 0
        if real.all() and not (real & pred).any():
            raise BulkDivergence(
                "arrival reordered past the rank's retained slot "
                "history; rerun with the per-rank generator path")
        pred_end = int(hs[pred].max()) + g
        succ = ha > a
        succ_arr = int(ha[succ].min()) if succ.any() else int(self.rx_last[dd])
        handoff = max(a, pred_end)
        if handoff + g > succ_arr:
            raise BulkDivergence(
                "receive-NIC slot collision between reordered arrivals; "
                "rerun with the per-rank generator path")
        self._book_one(dd, a, handoff, max(int(self.t[dd]), handoff), ts,
                       sstart)
        return handoff

    # -- repetition-level arrival fixpoint -----------------------------------
    def _snapshot(self) -> dict:
        return {
            "t": self.t.copy(), "tx_free": self.tx_free.copy(),
            "rx_free": self.rx_free.copy(), "rx_last": self.rx_last.copy(),
            "chan": None if self._chan is None else self._chan.copy(),
            "hist": (self._hist_arr.copy(), self._hist_start.copy(),
                     self._hist_resume.copy(), self._hist_ts.copy(),
                     self._hist_sstart.copy(), self._hist_cur.copy()),
        }

    def _restore(self, snap: dict) -> None:
        self.t[:] = snap["t"]
        self.tx_free[:] = snap["tx_free"]
        self.rx_free[:] = snap["rx_free"]
        self.rx_last[:] = snap["rx_last"]
        if snap["chan"] is not None:
            self._chan[:] = snap["chan"]
        for dst, src in zip((self._hist_arr, self._hist_start,
                             self._hist_resume, self._hist_ts,
                             self._hist_sstart, self._hist_cur),
                            snap["hist"]):
            dst[:] = src

    def _sweep(self, m_recv: np.ndarray, table: np.ndarray,
               rx_free0: np.ndarray):
        """Serve a repetition's predicted arrivals in DES NIC order.

        Sorts every message by (receiver, arrival, send instant, send
        start) — the DES's receive-serialization order, with lexsort
        stability supplying round order for full ties — and computes
        each message's slot start ``h_i = max(a_i, h_{i-1} + g)`` per
        receiver via a segmented running max, seeded with the NIC's
        free time at repetition start.
        """
        a, ts, ss = table
        g = self.params.g
        if int(a.max()) < (1 << 44):
            # Pack (receiver, arrival) into one 63-bit key so a single
            # stable argsort replaces the 4-key lexsort (the dominant
            # fixpoint cost at 100k ranks); only the rare equal-arrival
            # runs then need the (ts, ss) refinement.
            comp = (m_recv << 44) + a
            order = np.argsort(comp, kind="stable")
            cs = comp[order]
            eq = cs[1:] == cs[:-1]
            if eq.any():
                dup = np.zeros(len(cs), dtype=bool)
                dup[1:] = eq
                dup[:-1] |= eq
                pos = np.nonzero(dup)[0]
                sel = order[pos]
                # Stable: equal (ts, ss) within a run keeps round order.
                sub = np.lexsort((ss[sel], ts[sel], cs[pos]))
                order[pos] = sel[sub]
                sel = order[pos]
                run = cs[pos][1:] == cs[pos][:-1]
                self._note_full_ties(run & (ts[sel][1:] == ts[sel][:-1])
                                     & (ss[sel][1:] == ss[sel][:-1]))
            ra = a[order]
            recv = m_recv[order]
            same = recv[1:] == recv[:-1]
        else:
            order = np.lexsort((ss, ts, a, m_recv))
            ra = a[order]
            recv = m_recv[order]
            same = recv[1:] == recv[:-1]
            self._note_full_ties(same & (ra[1:] == ra[:-1])
                                 & (ts[order][1:] == ts[order][:-1])
                                 & (ss[order][1:] == ss[order][:-1]))
        new_grp = np.empty(len(ra), dtype=bool)
        new_grp[0] = True
        new_grp[1:] = ~same
        gstart = np.nonzero(new_grp)[0]
        gid = np.cumsum(new_grp) - 1
        idx_in_g = np.arange(len(ra)) - gstart[gid]
        v = ra - idx_in_g * g
        v[gstart] = np.maximum(v[gstart], rx_free0[recv[gstart]])
        u = np.maximum.accumulate(v + gid * _BIG) - gid * _BIG
        h = u + idx_in_g * g
        return order, recv, ra, h, gstart, gid, idx_in_g

    def _note_full_ties(self, full_tie: np.ndarray) -> None:
        if full_tie.any():
            if self.tie_break == "strict":
                raise BulkDivergence(
                    "exact-nanosecond arrival tie with equal send "
                    "instants; the DES order is unknowable outside the "
                    "event path (tie_break='deterministic' resolves in "
                    "round order)")
            self.tie_breaks += int(full_tie.sum())

    def _rep_fixpoint(self, barrier_c: list, coll_c: list,
                      snap: dict) -> np.ndarray:
        """Run one repetition exactly by iterating arrivals to fixpoint.

        The strict pass books receive slots in round order and raises
        when the DES's *time*-order serving would differ in a way it
        cannot reconstruct (sub-``g`` slot collisions between reordered
        arrivals, reorders past the history window, three-way ties).
        This rescue path restarts the repetition from ``snap`` with the
        full arrival table of the previous attempt as a *prediction*:
        every receive slot is assigned by serving the predicted
        arrivals in global time order (:meth:`_sweep`), the repetition
        is re-run against those slots, and the produced arrivals are
        compared to the prediction.  When they agree the slot table is
        self-consistent with the true arrivals — byte-identical to the
        DES — and the state is committed.  Returns the per-rank clocks
        after the aligning barrier (the repetition's start stamps).
        """
        rounds = list(barrier_c) + list(coll_c)
        n_barrier = len(barrier_c)
        o = self.params.o
        g = self.params.g
        m_recv = np.concatenate([cr.spec.dst for cr in rounds])
        sizes = [len(cr.spec.dst) for cr in rounds]
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        n_msg = int(offsets[-1])
        predicted = None
        slot_h = None
        caches = [({}, {}) for _ in rounds]
        for _ in range(_MAX_FIXPOINT):
            self._restore(snap)
            actual = np.empty((3, n_msg), dtype=np.int64)
            res_flat = np.empty(n_msg, dtype=np.int64)
            mid = self.t.copy()
            for ri, cr in enumerate(rounds):
                send_cache, recv_cache = caches[ri]
                arrival, ts, start = self._send_phase(cr, send_cache)
                lo, hi = int(offsets[ri]), int(offsets[ri + 1])
                actual[0, lo:hi] = arrival
                actual[1, lo:hi] = ts
                actual[2, lo:hi] = start
                d = cr.spec.dst
                if slot_h is None:
                    # Seed iteration: crude round-order booking, only
                    # to produce a first arrival prediction.
                    rx_start = np.maximum(arrival, self.rx_free[d])
                    self.rx_free[d] = rx_start + g
                else:
                    rx_start = slot_h[lo:hi]
                resume = np.maximum(self.t[d], rx_start)
                done = resume + self.noise.wall_cached(resume, o, d,
                                                       recv_cache)
                if cr.spec.combine_work:
                    done = done + self.noise.wall_cached(
                        done, cr.spec.combine_work, d, recv_cache)
                self.t[d] = done
                res_flat[lo:hi] = resume
                if ri == n_barrier - 1:
                    mid = self.t.copy()
            if (slot_h is not None
                    and np.array_equal(actual, predicted)):
                self._commit_slots(m_recv, actual, res_flat,
                                   snap["rx_free"])
                return mid
            predicted = actual
            order, recv, ra, h, _, _, _ = self._sweep(
                m_recv, predicted, snap["rx_free"])
            slot_h = np.empty(n_msg, dtype=np.int64)
            slot_h[order] = h
        raise BulkDivergence(
            "arrival times failed to reach a fixpoint; the collision "
            "cascade only settles on the event path")

    def _commit_slots(self, m_recv: np.ndarray, table: np.ndarray,
                      res_flat: np.ndarray, rx_free0: np.ndarray) -> None:
        """Install a converged repetition's slots into the NIC state.

        Rebuilds ``rx_last``/``rx_free`` from each receiver's final
        slot and writes its most recent ``_HISTORY`` slots (in time
        order) into the circular history, so following repetitions can
        run the strict pass against them.
        """
        order, recv, ra, h, gstart, gid, idx_in_g = self._sweep(
            m_recv, table, rx_free0)
        g = self.params.g
        glen = np.diff(np.concatenate((gstart, [len(ra)])))
        last = np.concatenate((gstart[1:], [len(ra)])) - 1
        self.rx_last[recv[last]] = ra[last]
        self.rx_free[recv[last]] = h[last] + g
        from_end = glen[gid] - 1 - idx_in_g
        keep = from_end < _HISTORY
        rk = recv[keep]
        # Newest slot lands just before the (unchanged) write cursor,
        # so later strict-pass bookings overwrite oldest-first.
        ring = (self._hist_cur[rk] + (_HISTORY - 1 - from_end[keep])) % _HISTORY
        sel = order[keep]
        self._hist_arr[rk, ring] = ra[keep]
        self._hist_start[rk, ring] = h[keep]
        self._hist_resume[rk, ring] = res_flat[sel]
        self._hist_ts[rk, ring] = table[1][sel]
        self._hist_sstart[rk, ring] = table[2][sel]

    def run_benchmark(self, barrier_rounds: _t.Sequence[RoundSpec],
                      coll_rounds: _t.Sequence[RoundSpec], *,
                      repetitions: int, gap_ns: int) -> BulkTimeline:
        """The collective microbenchmark's rank program, vectorized.

        Per repetition: aligning barrier, timestamp, the collective,
        timestamp, idle gap — mirroring
        :meth:`repro.microbench.CollectiveBenchmark._program`.  A
        repetition whose strict round-order pass cannot reproduce the
        DES receive serialization is re-run through the exact arrival
        fixpoint (:meth:`_rep_fixpoint`); once one repetition needs it,
        later ones skip the doomed strict attempt.
        """
        barrier_c = self.prepare(barrier_rounds)
        coll_c = self.prepare(coll_rounds)
        starts = np.empty((repetitions, self.P), dtype=np.int64)
        ends = np.empty((repetitions, self.P), dtype=np.int64)
        for rep in range(repetitions):
            snap = self._snapshot()
            diverged = self._sticky_fixpoint
            if not diverged:
                try:
                    for rnd in barrier_c:
                        self.run_round(rnd)
                    starts[rep] = self.t
                    for rnd in coll_c:
                        self.run_round(rnd)
                except BulkDivergence:
                    diverged = True
                    self._restore(snap)
            if diverged:
                self._sticky_fixpoint = True
                self.fixpoint_reps += 1
                starts[rep] = self._rep_fixpoint(barrier_c, coll_c, snap)
            ends[rep] = self.t
            if gap_ns:
                self.t += gap_ns
        return BulkTimeline(starts, ends)
