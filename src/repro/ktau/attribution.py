"""Noise attribution: charging application delay to kernel activities.

The step that distinguishes *observation* from the indirect noise
benchmarks: for each instrumented application interval, work out how
much of its wall time each kernel activity stole, then explain the slow
intervals by naming the thief.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from .records import AppIntervalRecord, EventKind, classify_source
from .tracer import KtauTracer

__all__ = ["IntervalAttribution", "attribute_intervals", "AttributionSummary",
           "summarize_attribution", "explain_slow_intervals", "SlowInterval"]

#: Sources that are *observed kernel time* but not noise: the app asked
#: for syscalls; the observer's own cost is reported separately.
_NON_NOISE = {EventKind.SYSCALL}


@dataclass(frozen=True, slots=True)
class IntervalAttribution:
    """One application interval with its kernel-time breakdown."""

    interval: AppIntervalRecord
    stolen_by_source: dict[str, int]

    @property
    def duration_ns(self) -> int:
        return self.interval.duration

    @property
    def noise_ns(self) -> int:
        """Stolen time that is genuinely noise (excludes syscalls)."""
        return sum(ns for src, ns in self.stolen_by_source.items()
                   if classify_source(src) not in _NON_NOISE)

    @property
    def syscall_ns(self) -> int:
        return sum(ns for src, ns in self.stolen_by_source.items()
                   if classify_source(src) == EventKind.SYSCALL)

    @property
    def app_ns(self) -> int:
        """Wall time not accounted to any observed kernel activity
        (compute + communication wait)."""
        return self.duration_ns - sum(self.stolen_by_source.values())

    def top_thief(self) -> tuple[str, int] | None:
        """The noise source that stole the most, or None if quiet."""
        noise = {src: ns for src, ns in self.stolen_by_source.items()
                 if classify_source(src) not in _NON_NOISE and ns > 0}
        if not noise:
            return None
        src = max(noise, key=lambda s: noise[s])
        return src, noise[src]


def attribute_intervals(tracer: KtauTracer, node_id: int,
                        name: str | None = None) -> list[IntervalAttribution]:
    """Per-interval kernel breakdowns for one node's instrumented
    intervals (trace level required)."""
    out = []
    for interval in tracer.app_intervals(node_id, name):
        breakdown = tracer.stolen_breakdown(node_id, interval.start,
                                            interval.end)
        out.append(IntervalAttribution(interval, breakdown))
    return out


@dataclass(frozen=True, slots=True)
class AttributionSummary:
    """Aggregate attribution across a set of intervals."""

    n_intervals: int
    total_wall_ns: int
    total_noise_ns: int
    total_syscall_ns: int
    by_source: dict[str, int]

    @property
    def noise_fraction(self) -> float:
        return (self.total_noise_ns / self.total_wall_ns
                if self.total_wall_ns else 0.0)

    def fraction_of(self, source: str) -> float:
        return (self.by_source.get(source, 0) / self.total_wall_ns
                if self.total_wall_ns else 0.0)


def summarize_attribution(attributions: _t.Sequence[IntervalAttribution]
                          ) -> AttributionSummary:
    """Roll per-interval attributions up into one summary."""
    if not attributions:
        raise TraceError("no intervals to summarize")
    by_source: dict[str, int] = {}
    total_wall = total_noise = total_sys = 0
    for att in attributions:
        total_wall += att.duration_ns
        total_noise += att.noise_ns
        total_sys += att.syscall_ns
        for src, ns in att.stolen_by_source.items():
            by_source[src] = by_source.get(src, 0) + ns
    return AttributionSummary(len(attributions), total_wall, total_noise,
                              total_sys, by_source)


@dataclass(frozen=True, slots=True)
class SlowInterval:
    """One outlier interval and the observer's explanation of it."""

    attribution: IntervalAttribution
    slowdown_vs_median: float
    thief: str | None
    thief_ns: int


def explain_slow_intervals(attributions: _t.Sequence[IntervalAttribution],
                           *, threshold: float = 1.5) -> list[SlowInterval]:
    """Find intervals ≥ ``threshold`` × median duration and name the
    dominant noise source in each — the observer's "ghost sightings"."""
    if not attributions:
        return []
    durations = np.array([a.duration_ns for a in attributions], dtype=float)
    median = float(np.median(durations))
    if median <= 0:
        return []
    out = []
    for att in attributions:
        ratio = att.duration_ns / median
        if ratio >= threshold:
            thief = att.top_thief()
            out.append(SlowInterval(att, ratio,
                                    thief[0] if thief else None,
                                    thief[1] if thief else 0))
    out.sort(key=lambda s: s.slowdown_vs_median, reverse=True)
    return out
