"""Event records produced by the kernel observer.

Kernel activity is classified into the categories the paper's
methodology reports: hardware interrupts, softirq/bottom-half work,
scheduler activity, daemon/kernel-thread preemption, system calls
(application-requested kernel time — observed but *not* noise), and
synthetic injected noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EventKind", "classify_source", "KernelEventRecord",
           "AppIntervalRecord"]


class EventKind:
    """Kernel-activity categories (string constants, not an Enum, so
    user-defined sources can extend the set without registration)."""

    INTERRUPT = "interrupt"
    SOFTIRQ = "softirq"
    SCHEDULER = "scheduler"
    DAEMON = "daemon"
    SYSCALL = "syscall"
    INJECTED = "injected"
    OBSERVER = "observer"
    OTHER = "other"

    #: Reporting order for breakdown tables.
    ORDER = (INTERRUPT, SOFTIRQ, SCHEDULER, DAEMON, SYSCALL, INJECTED,
             OBSERVER, OTHER)


#: Exact source-name to kind mappings.
_EXACT = {
    "timer-irq": EventKind.INTERRUPT,
    "nic-rx": EventKind.SOFTIRQ,
    "sched": EventKind.SCHEDULER,
    "syscall": EventKind.SYSCALL,
    "ktau-overhead": EventKind.OBSERVER,
}

#: Well-known daemon names from the kernel presets.
_DAEMONS = {"kswapd", "pdflush", "cron-monitor", "ntpd"}


def classify_source(source: str) -> str:
    """Map a noise-source name to an :class:`EventKind` category."""
    if source in _EXACT:
        return _EXACT[source]
    if source in _DAEMONS:
        return EventKind.DAEMON
    if "pct@" in source or source.startswith(("periodic", "poisson", "burst",
                                              "trace", "injected")):
        return EventKind.INJECTED
    return EventKind.OTHER


@dataclass(frozen=True, slots=True)
class KernelEventRecord:
    """One observed kernel-activity occurrence on one node."""

    node: int
    source: str
    kind: str
    start: int
    duration: int

    @property
    def end(self) -> int:
        return self.start + self.duration


@dataclass(slots=True)
class AppIntervalRecord:
    """One instrumented application interval (iteration, phase, MPI op).

    ``meta`` carries free-form context (iteration number, message
    sizes) the analysis side may use.
    """

    node: int
    name: str
    start: int
    end: int
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return self.end - self.start
