"""Blind ghost hunting: inferring kernel activity from app timing alone.

The indirect path the pre-observation noise literature relied on: given
only an application-level timing series (FTQ samples or per-iteration
durations), detect periodic interference spectrally and match the
detected frequencies against the known population of kernel activities.
Comparing these blind inferences against the observer's direct records
is the methodological argument of the study.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..analysis.spectral import SpectralPeak, find_peaks, periodogram
from ..errors import ConfigError
from ..kernel.config import KernelConfig
from ..noise import NoiseSource

__all__ = ["Suspect", "GhostReport", "candidate_frequencies", "hunt"]


@dataclass(frozen=True, slots=True)
class Suspect:
    """One detected periodicity and its best-matching known activity."""

    frequency_hz: float
    power: float
    matched_source: str | None
    matched_frequency_hz: float | None

    @property
    def identified(self) -> bool:
        return self.matched_source is not None


@dataclass(frozen=True, slots=True)
class GhostReport:
    """Output of a blind hunt over one timing series."""

    suspects: tuple[Suspect, ...]

    @property
    def identified_sources(self) -> list[str]:
        """Distinct matched activity names, strongest first."""
        seen: list[str] = []
        for s in self.suspects:
            if s.matched_source and s.matched_source not in seen:
                seen.append(s.matched_source)
        return seen

    @property
    def unexplained(self) -> list[Suspect]:
        """Detected periodicities with no known counterpart — ghosts."""
        return [s for s in self.suspects if not s.identified]


def candidate_frequencies(kernel: KernelConfig | None = None,
                          sources: _t.Sequence[NoiseSource] = ()
                          ) -> dict[str, float]:
    """Known activity name -> fundamental frequency (Hz).

    Built from a kernel config (tick + periodic daemons) and/or
    explicit noise sources (injected patterns).
    """
    out: dict[str, float] = {}
    if kernel is not None:
        if kernel.hz > 0:
            out["timer-irq"] = float(kernel.hz)
        for d in kernel.daemons:
            out[d.name] = 1e9 / d.interval_ns
    for src in sources:
        rate = src.event_rate_hz
        if rate > 0:
            out[src.name] = rate
    return out


def hunt(series: _t.Sequence[float], sample_interval_ns: int,
         candidates: dict[str, float], *, top: int = 6,
         tolerance: float = 0.1) -> GhostReport:
    """Blind periodicity hunt over a uniformly sampled timing series.

    Each spectral peak is matched to the closest candidate whose
    fundamental (or a harmonic of it, up to the 4th) lies within
    ``tolerance`` (relative).  Unmatched peaks are reported as
    unexplained ghosts.
    """
    if tolerance <= 0:
        raise ConfigError("tolerance must be > 0")
    spectrum = periodogram(series, sample_interval_ns)
    peaks: list[SpectralPeak] = find_peaks(spectrum, top=top)
    suspects = []
    for peak in peaks:
        best: tuple[str, float] | None = None
        best_err = tolerance
        for name, fundamental in candidates.items():
            for harmonic in (1, 2, 3, 4):
                f = fundamental * harmonic
                if f <= 0:
                    continue
                err = abs(peak.frequency_hz - f) / f
                if err < best_err:
                    best_err = err
                    best = (name, fundamental)
        suspects.append(Suspect(
            frequency_hz=peak.frequency_hz, power=peak.power,
            matched_source=best[0] if best else None,
            matched_frequency_hz=best[1] if best else None))
    return GhostReport(tuple(suspects))
