"""The kernel observer: merged user/kernel measurement for a machine.

:class:`KtauTracer` plays the role of the paper's in-kernel
instrumentation integrated with application-level measurement:

* every **transient** kernel event (NIC rx processing, observer
  flushes) is recorded live through CPU steal listeners;
* every **background** kernel event (timer ticks, daemons, injected
  patterns) is available on demand — the simulator's noise streams are
  pure functions of time, so the tracer reconstructs exactly the
  events that occurred in any window (this is the simulation analogue
  of reading the kernel trace buffer);
* **application intervals** (iterations, phases, MPI calls) are
  recorded via :meth:`app_interval`, giving the merged user/kernel
  timeline the attribution engine consumes;
* **observation cost** is charged back to the observed CPUs per the
  :class:`~repro.ktau.overhead.OverheadModel`: live records cost CPU
  at record time (with buffer flushes every N events), and background
  instrumentation is modelled as a rate-matched periodic overhead
  source merged into each node's noise.

Levels: ``"profile"`` keeps only aggregate counters per source (cheap);
``"trace"`` also keeps every record (full timelines).
"""

from __future__ import annotations

import typing as _t
from collections import defaultdict

from ..errors import ConfigError, TraceError
from ..kernel.node import Node
from ..noise import PeriodicNoise
from .overhead import OverheadModel
from .records import AppIntervalRecord, KernelEventRecord, classify_source

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine

__all__ = ["KtauTracer"]

_LEVELS = ("profile", "trace")

#: Source name under which observation cost is charged.
OVERHEAD_SOURCE = "ktau-overhead"


class KtauTracer:
    """Observer for a set of nodes (usually a whole machine)."""

    def __init__(self, nodes: "_t.Sequence[Node] | Machine", *,
                 level: str = "trace",
                 overhead: OverheadModel | str | None = None) -> None:
        if hasattr(nodes, "nodes"):  # Machine duck-type
            nodes = nodes.nodes  # type: ignore[union-attr]
        self.nodes: list[Node] = list(_t.cast(_t.Sequence[Node], nodes))
        if not self.nodes:
            raise ConfigError("tracer needs at least one node")
        if level not in _LEVELS:
            raise ConfigError(f"level must be one of {_LEVELS}, got {level!r}")
        self.level = level
        if overhead is None:
            overhead = OverheadModel.free()
        elif isinstance(overhead, str):
            overhead = OverheadModel.preset(overhead)
        self.overhead = overhead
        self.env = self.nodes[0].env

        # Live storage -----------------------------------------------------
        self._transient: dict[int, list[KernelEventRecord]] = defaultdict(list)
        self._app: dict[int, list[AppIntervalRecord]] = defaultdict(list)
        #: (node, source) -> [count, total_ns] aggregates, live events only.
        self._agg: dict[tuple[int, str], list[int]] = defaultdict(lambda: [0, 0])
        self._events_since_flush: dict[int, int] = defaultdict(int)
        self._in_overhead = False
        #: Total ns of observation cost charged per node.
        self.overhead_charged_ns: dict[int, int] = defaultdict(int)

        self._attach()

    # -- wiring ------------------------------------------------------------
    def _attach(self) -> None:
        for node in self.nodes:
            if node.tracer is not None:
                raise ConfigError(f"node {node.node_id} already has a tracer")
            node.tracer = self
            node.cpu.add_steal_listener(self._make_listener(node))
            self._install_background_overhead(node)

    def _make_listener(self, node: Node) -> _t.Callable[[int, int, str], None]:
        def on_steal(start: int, duration: int, source: str) -> None:
            if self._in_overhead:
                return  # don't observe our own bookkeeping recursively
            self._record_kernel_event(node, start, duration, source)
        return on_steal

    def _install_background_overhead(self, node: Node) -> None:
        """Charge per-event instrumentation for background kernel events
        as a rate-matched periodic source (amortizing flush cost)."""
        per_event = self.overhead.per_kernel_event_ns
        if self.overhead.flush_every:
            per_event += self.overhead.flush_cost_ns // self.overhead.flush_every
        if per_event <= 0:
            return
        rate = node.noise.event_rate_hz
        if rate <= 0:
            return
        period = round(1e9 / rate)
        if per_event >= period:
            raise ConfigError(
                "observer overhead per event exceeds the kernel event "
                f"period on node {node.node_id}; the machine would livelock")
        node.add_noise_source(PeriodicNoise(
            period, per_event, phase=node.node_id * 97, name=OVERHEAD_SOURCE))

    # -- recording ------------------------------------------------------------
    def _record_kernel_event(self, node: Node, start: int, duration: int,
                             source: str) -> None:
        agg = self._agg[(node.node_id, source)]
        agg[0] += 1
        agg[1] += duration
        if self.level == "trace":
            self._transient[node.node_id].append(KernelEventRecord(
                node.node_id, source, classify_source(source), start, duration))
        self._charge(node, self.overhead.per_kernel_event_ns)

    def record_syscall(self, node_id: int, start: int, cost: int) -> None:
        """Called by :meth:`repro.kernel.Node.syscall`."""
        node = self.nodes[self._index_of(node_id)]
        self._record_kernel_event(node, start, cost, "syscall")

    def app_interval(self, node_id: int, name: str,
                     **meta: _t.Any) -> "_AppIntervalCM":
        """Context manager recording one application interval.

        Usable around ``yield from`` bodies inside rank generators::

            with tracer.app_interval(ctx.node_id, "iteration", i=i):
                yield from ctx.compute(work)
                yield from ctx.allreduce(size=8)
        """
        return _AppIntervalCM(self, self._index_of(node_id), name, meta)

    def _index_of(self, node_id: int) -> int:
        # Nodes are dense and in order for machines; fall back to scan.
        if 0 <= node_id < len(self.nodes) and self.nodes[node_id].node_id == node_id:
            return node_id
        for i, node in enumerate(self.nodes):
            if node.node_id == node_id:
                return i
        raise TraceError(f"node {node_id} is not observed by this tracer")

    def _charge(self, node: Node, cost: int) -> None:
        """Charge observation CPU cost, with flush batching."""
        if cost <= 0 and not self.overhead.flush_every:
            return
        total = cost
        if self.overhead.flush_every:
            n = self._events_since_flush[node.node_id] + 1
            if n >= self.overhead.flush_every:
                total += self.overhead.flush_cost_ns
                n = 0
            self._events_since_flush[node.node_id] = n
        if total <= 0:
            return
        self._in_overhead = True
        try:
            node.cpu.steal_transient(total, OVERHEAD_SOURCE)
        finally:
            self._in_overhead = False
        self.overhead_charged_ns[node.node_id] += total
        agg = self._agg[(node.node_id, OVERHEAD_SOURCE)]
        agg[0] += 1
        agg[1] += total

    # -- queries ---------------------------------------------------------------
    def app_intervals(self, node_id: int,
                      name: str | None = None) -> list[AppIntervalRecord]:
        """Recorded application intervals on one node (trace level only)."""
        self._require_trace("app_intervals")
        recs = self._app[node_id]
        if name is None:
            return list(recs)
        return [r for r in recs if r.name == name]

    def transient_events(self, node_id: int) -> list[KernelEventRecord]:
        """Live-recorded kernel events on one node (trace level only)."""
        self._require_trace("transient_events")
        return list(self._transient[node_id])

    def kernel_events_between(self, node_id: int, start: int,
                              end: int) -> list[KernelEventRecord]:
        """Every kernel event starting in ``[start, end)`` on one node.

        Merges live transient records with the reconstructed background
        stream, in time order.  Trace level only.
        """
        self._require_trace("kernel_events_between")
        node = self.nodes[self._index_of(node_id)]
        out = [KernelEventRecord(node_id, ev.source, classify_source(ev.source),
                                 ev.start, ev.duration)
               for ev in node.noise.events_in(start, end)]
        out.extend(r for r in self._transient[node_id]
                   if start <= r.start < end)
        out.sort(key=lambda r: (r.start, r.source))
        return out

    def stolen_breakdown(self, node_id: int, start: int,
                         end: int) -> dict[str, int]:
        """CPU ns stolen per source in a window: background + transient."""
        node = self.nodes[self._index_of(node_id)]
        out = dict(node.cpu.stolen_breakdown(start, end))
        for rec in self._transient.get(node_id, ()):
            if rec.start < end and rec.end > start:
                clipped = min(rec.end, end) - max(rec.start, start)
                out[rec.source] = out.get(rec.source, 0) + clipped
        return out

    def kind_breakdown(self, node_id: int, start: int,
                       end: int) -> dict[str, int]:
        """Stolen ns per :class:`EventKind` category in a window."""
        out: dict[str, int] = {}
        for source, ns in self.stolen_breakdown(node_id, start, end).items():
            kind = classify_source(source)
            out[kind] = out.get(kind, 0) + ns
        return out

    def aggregate_counters(self, node_id: int) -> dict[str, tuple[int, int]]:
        """Live (count, total ns) per source — available at every level."""
        return {src: (c, t) for (nid, src), (c, t) in self._agg.items()
                if nid == node_id}

    def _require_trace(self, what: str) -> None:
        if self.level != "trace":
            raise TraceError(
                f"{what} needs level='trace'; this tracer runs at "
                f"level={self.level!r}")


class _AppIntervalCM:
    """Context manager created by :meth:`KtauTracer.app_interval`."""

    __slots__ = ("_tracer", "_idx", "_name", "_meta", "_start")

    def __init__(self, tracer: KtauTracer, idx: int, name: str,
                 meta: dict) -> None:
        self._tracer = tracer
        self._idx = idx
        self._name = name
        self._meta = meta

    def __enter__(self) -> "_AppIntervalCM":
        tr = self._tracer
        node = tr.nodes[self._idx]
        self._start = tr.env.now
        tr._charge(node, tr.overhead.per_app_event_ns)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tr = self._tracer
        node = tr.nodes[self._idx]
        tr._charge(node, tr.overhead.per_app_event_ns)
        if exc_type is None and tr.level == "trace":
            tr._app[node.node_id].append(AppIntervalRecord(
                node.node_id, self._name, self._start, tr.env.now,
                dict(self._meta)))
