"""Profile differencing: before/after kernel-tuning comparisons.

Operators tune kernels (lower HZ, fewer daemons, IRQ steering) and need
to see what changed.  :func:`diff_profiles` compares two
:class:`~repro.ktau.profile.NodeKernelProfile` objects — typically the
same workload on two kernel configurations — normalizing by window
length so runs of different durations compare fairly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .profile import NodeKernelProfile

__all__ = ["SourceDelta", "ProfileDiff", "diff_profiles"]


@dataclass(frozen=True, slots=True)
class SourceDelta:
    """Change in one kernel activity between two profiles.

    Rates are per second of window (counts/s and stolen ns per second,
    i.e. stolen ppb == utilization * 1e9).
    """

    source: str
    kind: str
    before_rate_hz: float
    after_rate_hz: float
    before_utilization: float
    after_utilization: float

    @property
    def utilization_delta(self) -> float:
        """Positive = the activity got *more* expensive."""
        return self.after_utilization - self.before_utilization

    @property
    def appeared(self) -> bool:
        return self.before_utilization == 0 and self.after_utilization > 0

    @property
    def vanished(self) -> bool:
        return self.before_utilization > 0 and self.after_utilization == 0


@dataclass(frozen=True)
class ProfileDiff:
    """Full before/after comparison."""

    node: int
    deltas: tuple[SourceDelta, ...]
    before_utilization: float
    after_utilization: float

    @property
    def utilization_delta(self) -> float:
        return self.after_utilization - self.before_utilization

    def regressions(self) -> list[SourceDelta]:
        """Activities that got more expensive, worst first."""
        worse = [d for d in self.deltas if d.utilization_delta > 0]
        return sorted(worse, key=lambda d: d.utilization_delta, reverse=True)

    def improvements(self) -> list[SourceDelta]:
        """Activities that got cheaper, best first."""
        better = [d for d in self.deltas if d.utilization_delta < 0]
        return sorted(better, key=lambda d: d.utilization_delta)


def diff_profiles(before: NodeKernelProfile,
                  after: NodeKernelProfile) -> ProfileDiff:
    """Compare two kernel profiles source-by-source.

    The profiles may come from different nodes/machines; ``node`` in
    the result is taken from ``after``.
    """
    def rates(profile: NodeKernelProfile) -> dict[str, tuple[str, float, float]]:
        window_s = profile.window_ns / 1e9
        out = {}
        for e in profile.entries:
            out[e.source] = (e.kind, e.count / window_s if window_s else 0.0,
                             e.total_ns / profile.window_ns
                             if profile.window_ns else 0.0)
        return out

    b = rates(before)
    a = rates(after)
    deltas = []
    for source in sorted(set(b) | set(a)):
        kind = (a.get(source) or b[source])[0]
        _, b_rate, b_util = b.get(source, (kind, 0.0, 0.0))
        _, a_rate, a_util = a.get(source, (kind, 0.0, 0.0))
        deltas.append(SourceDelta(source, kind, b_rate, a_rate,
                                  b_util, a_util))
    return ProfileDiff(node=after.node, deltas=tuple(deltas),
                       before_utilization=before.utilization,
                       after_utilization=after.utilization)
