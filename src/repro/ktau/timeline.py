"""Merged user/kernel timelines — the trace-viewer view.

Produces a single time-ordered sequence of entries for one node over a
window: application intervals opening and closing, and kernel events
with durations.  This is the data a trace visualizer (Vampir/Jumpshot
style) would render, and the simulation analogue of the merged
kernel+user traces the original study's toolchain produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from .records import AppIntervalRecord, KernelEventRecord
from .tracer import KtauTracer

__all__ = ["TimelineEntry", "merged_timeline", "timeline_text"]


@dataclass(frozen=True, slots=True)
class TimelineEntry:
    """One row of the merged timeline.

    ``kind`` is ``"app"`` (an application interval, with duration) or a
    kernel :class:`~repro.ktau.records.EventKind` value.
    """

    time: int
    kind: str
    label: str
    duration: int
    depth: int  # nesting depth of app intervals at this instant


def merged_timeline(tracer: KtauTracer, node_id: int, start: int,
                    end: int) -> list[TimelineEntry]:
    """Time-ordered app + kernel entries for ``[start, end)``.

    App intervals are emitted at their start instant with their full
    duration and a nesting depth (intervals that contain one another
    nest, e.g. ``pop:iteration`` around ``pop:barotropic``).
    """
    app: list[AppIntervalRecord] = [
        r for r in tracer.app_intervals(node_id)
        if r.start < end and r.end > start]
    kernel: list[KernelEventRecord] = tracer.kernel_events_between(
        node_id, start, end)

    entries: list[TimelineEntry] = []
    # Depth computation: sort app intervals by (start, -end) so outer
    # intervals come first; depth = number of open ancestors.
    app.sort(key=lambda r: (r.start, -r.end))
    open_stack: list[AppIntervalRecord] = []
    for rec in app:
        while open_stack and open_stack[-1].end <= rec.start:
            open_stack.pop()
        entries.append(TimelineEntry(rec.start, "app", rec.name,
                                     rec.duration, len(open_stack)))
        open_stack.append(rec)
    for ev in kernel:
        entries.append(TimelineEntry(ev.start, ev.kind, ev.source,
                                     ev.duration, 0))
    # Same-instant ordering: app intervals before kernel events, outer
    # (lower-depth) intervals before the intervals they contain.
    entries.sort(key=lambda e: (e.time, e.kind != "app", e.depth, e.label))
    return entries


def timeline_text(tracer: KtauTracer, node_id: int, start: int, end: int,
                  *, max_rows: int | None = 60) -> str:
    """Human-readable rendering of :func:`merged_timeline`."""
    entries = merged_timeline(tracer, node_id, start, end)
    total = len(entries)
    if max_rows is not None:
        entries = entries[:max_rows]
    lines = [f"timeline node {node_id}  [{start} ns, {end} ns)"]
    for e in entries:
        indent = "  " * e.depth
        if e.kind == "app":
            lines.append(f"{e.time:>14} ns  {indent}[{e.label}] "
                         f"({e.duration / 1e3:.1f} us)")
        else:
            lines.append(f"{e.time:>14} ns  {indent}  ~ {e.label} "
                         f"({e.kind}, {e.duration / 1e3:.1f} us)")
    if max_rows is not None and total > max_rows:
        lines.append(f"... {total - max_rows} more entries")
    return "\n".join(lines) + "\n"
