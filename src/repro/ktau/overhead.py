"""Observer-overhead model.

Measurement is not free: real kernel tracing pays per-event
instrumentation cost and periodic buffer flushes.  The observer charges
these costs back to the node CPUs it watches, so the framework can
quantify its own perturbation (experiment E7) — a methodological point
the original study had to address to claim its observations were
faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["OverheadModel"]


@dataclass(frozen=True, slots=True)
class OverheadModel:
    """Per-event costs of the observation framework, in ns.

    Attributes
    ----------
    per_kernel_event_ns:
        Instrumentation cost added for every kernel event observed
        (timestamp capture + counter update).
    per_app_event_ns:
        Cost of an application-side interval marker.
    flush_every:
        After this many recorded events the trace buffer flushes...
    flush_cost_ns:
        ...costing this much CPU.
    """

    per_kernel_event_ns: int = 0
    per_app_event_ns: int = 0
    flush_every: int = 0
    flush_cost_ns: int = 0

    def __post_init__(self) -> None:
        if min(self.per_kernel_event_ns, self.per_app_event_ns,
               self.flush_every, self.flush_cost_ns) < 0:
            raise ConfigError("overhead parameters must be >= 0")
        if (self.flush_every == 0) != (self.flush_cost_ns == 0):
            raise ConfigError("flush_every and flush_cost_ns go together")

    # -- presets -----------------------------------------------------------
    @classmethod
    def free(cls) -> "OverheadModel":
        """Idealized zero-cost observer (the simulator's god's-eye view)."""
        return cls()

    @classmethod
    def profile_level(cls) -> "OverheadModel":
        """Counter-only instrumentation: tens of ns per event."""
        return cls(per_kernel_event_ns=25, per_app_event_ns=40)

    @classmethod
    def trace_level(cls) -> "OverheadModel":
        """Full timestamped tracing with buffer flushes."""
        return cls(per_kernel_event_ns=120, per_app_event_ns=150,
                   flush_every=4096, flush_cost_ns=200_000)

    @classmethod
    def preset(cls, name: str) -> "OverheadModel":
        presets = {"free": cls.free, "profile": cls.profile_level,
                   "trace": cls.trace_level}
        if name not in presets:
            raise ConfigError(
                f"unknown overhead preset {name!r}; choose from {sorted(presets)}")
        return presets[name]()
