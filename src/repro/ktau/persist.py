"""Trace persistence: save observer data to JSONL, reload for replay.

The measure → store → re-inject loop across *processes*: one run
captures a node's kernel-event trace to a file; a later run loads it as
a :class:`~repro.noise.TraceNoise` source, or reloads app intervals for
offline analysis.  Format: one JSON object per line with a leading
header line, so files stream and concatenate trivially.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TraceError
from ..noise import TraceNoise
from .records import AppIntervalRecord, KernelEventRecord
from .tracer import KtauTracer

__all__ = ["save_kernel_trace", "load_kernel_trace", "load_trace_noise",
           "save_app_intervals", "load_app_intervals"]

_KERNEL_KIND = "repro-kernel-trace-v1"
_APP_KIND = "repro-app-intervals-v1"


def save_kernel_trace(tracer: KtauTracer, node_id: int, start: int, end: int,
                      path: str | Path) -> int:
    """Write one node's merged kernel events for a window; returns count."""
    events = tracer.kernel_events_between(node_id, start, end)
    with open(path, "w") as f:
        f.write(json.dumps({"kind": _KERNEL_KIND, "node": node_id,
                            "window": [start, end]}) + "\n")
        for ev in events:
            f.write(json.dumps({"t": ev.start, "d": ev.duration,
                                "src": ev.source, "k": ev.kind}) + "\n")
    return len(events)


def _read_lines(path: str | Path, expected_kind: str) -> tuple[dict, list[dict]]:
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("kind") != expected_kind:
        raise TraceError(
            f"{path}: expected {expected_kind!r}, got {header.get('kind')!r}")
    return header, [json.loads(line) for line in lines[1:]]


def load_kernel_trace(path: str | Path) -> list[KernelEventRecord]:
    """Reload a saved kernel trace as records."""
    header, rows = _read_lines(path, _KERNEL_KIND)
    node = header["node"]
    return [KernelEventRecord(node, r["src"], r["k"], r["t"], r["d"])
            for r in rows]


def load_trace_noise(path: str | Path, *, repeat: bool = True,
                     name: str = "trace-file") -> TraceNoise:
    """Reload a saved kernel trace as an injectable noise source.

    Event start times are rebased to the capture window's origin.  With
    ``repeat=True`` the trace tiles time with the capture window length.
    """
    header, rows = _read_lines(path, _KERNEL_KIND)
    start, end = header["window"]
    events = [(r["t"] - start, r["d"]) for r in rows]
    if not events:
        raise TraceError(f"{path}: trace has no events to replay")
    max_dur = max(d for _t0, d in events)
    repeat_every = (end - start) + max_dur if repeat else None
    return TraceNoise(events, repeat_every=repeat_every, name=name)


def save_app_intervals(tracer: KtauTracer, node_id: int, path: str | Path,
                       name: str | None = None) -> int:
    """Write one node's app intervals (with meta); returns count."""
    intervals = tracer.app_intervals(node_id, name)
    with open(path, "w") as f:
        f.write(json.dumps({"kind": _APP_KIND, "node": node_id}) + "\n")
        for rec in intervals:
            f.write(json.dumps({"n": rec.name, "s": rec.start, "e": rec.end,
                                "m": rec.meta}) + "\n")
    return len(intervals)


def load_app_intervals(path: str | Path) -> list[AppIntervalRecord]:
    """Reload saved app intervals."""
    header, rows = _read_lines(path, _APP_KIND)
    node = header["node"]
    return [AppIntervalRecord(node, r["n"], r["s"], r["e"], dict(r["m"]))
            for r in rows]
