"""Export observer data to plain dict/CSV forms.

Keeps the analysis layer decoupled from observer internals and gives
examples/benchmarks a stable serialization for offline inspection.
"""

from __future__ import annotations

import typing as _t

from ..analysis.tables import format_csv
from .profile import NodeKernelProfile
from .tracer import KtauTracer

__all__ = ["profile_to_rows", "profile_to_csv", "intervals_to_rows",
           "trace_to_rows"]

#: Column order shared by :func:`profile_to_rows` (dict key order) and
#: :func:`profile_to_csv` (header row, including the empty-profile
#: header-only case) — one definition so they cannot drift apart.
_PROFILE_COLUMNS = ("node", "source", "kind", "count", "total_ns",
                    "mean_ns", "min_ns", "max_ns", "pct_of_window")


def profile_to_rows(profile: NodeKernelProfile) -> list[dict[str, _t.Any]]:
    """One dict per profile entry, with derived percentages.

    A non-positive observation window makes ``pct_of_window``
    meaningless; it is reported as 0.0 rather than dividing by zero
    (or by a negative span from a reversed window).
    """
    window = profile.window_ns
    rows = []
    for e in profile.entries:
        pct = round(100 * e.total_ns / window, 4) if window > 0 else 0.0
        rows.append({
            "node": profile.node, "source": e.source, "kind": e.kind,
            "count": e.count, "total_ns": e.total_ns,
            "mean_ns": round(e.mean_ns, 1), "min_ns": e.min_ns,
            "max_ns": e.max_ns,
            "pct_of_window": pct,
        })
    return rows


def profile_to_csv(profile: NodeKernelProfile) -> str:
    """CSV rendering of :func:`profile_to_rows`.

    An empty profile (quiet node, or a window with no kernel events)
    yields a header-only CSV with the same columns as the populated
    form, so downstream parsers see a stable schema either way.
    """
    rows = profile_to_rows(profile)
    headers = list(_PROFILE_COLUMNS)
    return format_csv(headers, [[r[h] for h in headers] for r in rows])


def intervals_to_rows(tracer: KtauTracer, node_id: int,
                      name: str | None = None) -> list[dict[str, _t.Any]]:
    """App intervals with their per-kind stolen breakdown."""
    rows = []
    for interval in tracer.app_intervals(node_id, name):
        row: dict[str, _t.Any] = {
            "node": node_id, "name": interval.name,
            "start_ns": interval.start, "end_ns": interval.end,
            "duration_ns": interval.duration,
        }
        for kind, ns in tracer.kind_breakdown(node_id, interval.start,
                                              interval.end).items():
            row[f"stolen_{kind}_ns"] = ns
        row.update({f"meta_{k}": v for k, v in interval.meta.items()})
        rows.append(row)
    return rows


def trace_to_rows(tracer: KtauTracer, node_id: int, start: int,
                  end: int) -> list[dict[str, _t.Any]]:
    """Raw merged kernel event list for a window.

    An empty or reversed window (``end <= start``) contains no events;
    it short-circuits to ``[]`` instead of asking the background-noise
    reconstruction to enumerate a negative span.
    """
    if end <= start:
        return []
    return [{"node": r.node, "source": r.source, "kind": r.kind,
             "start_ns": r.start, "duration_ns": r.duration}
            for r in tracer.kernel_events_between(node_id, start, end)]
