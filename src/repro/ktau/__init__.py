"""The kernel observation framework (the paper's core contribution).

:class:`KtauTracer` merges kernel-event and application-interval
timelines per node, with modelled observation overhead
(:class:`OverheadModel`).  On top of the tracer:

* :mod:`repro.ktau.profile` — TAU-style kernel and app-phase profiles;
* :mod:`repro.ktau.attribution` — per-interval noise attribution and
  slow-interval explanation;
* :mod:`repro.ktau.ghost` — blind spectral inference for comparison
  against direct observation;
* :mod:`repro.ktau.export` — dict/CSV serialization.
"""

from .attribution import (
    AttributionSummary,
    IntervalAttribution,
    SlowInterval,
    attribute_intervals,
    explain_slow_intervals,
    summarize_attribution,
)
from .diff import ProfileDiff, SourceDelta, diff_profiles
from .ghost import GhostReport, Suspect, candidate_frequencies, hunt
from .overhead import OverheadModel
from .persist import (
    load_app_intervals,
    load_kernel_trace,
    load_trace_noise,
    save_app_intervals,
    save_kernel_trace,
)
from .profile import (
    AppPhaseProfile,
    NodeKernelProfile,
    ProfileEntry,
    build_app_profile,
    build_kernel_profile,
)
from .records import AppIntervalRecord, EventKind, KernelEventRecord, classify_source
from .timeline import TimelineEntry, merged_timeline, timeline_text
from .tracer import OVERHEAD_SOURCE, KtauTracer

__all__ = [
    "KtauTracer", "OverheadModel", "OVERHEAD_SOURCE",
    "EventKind", "KernelEventRecord", "AppIntervalRecord", "classify_source",
    "ProfileEntry", "NodeKernelProfile", "build_kernel_profile",
    "AppPhaseProfile", "build_app_profile",
    "IntervalAttribution", "attribute_intervals",
    "AttributionSummary", "summarize_attribution",
    "SlowInterval", "explain_slow_intervals",
    "GhostReport", "Suspect", "candidate_frequencies", "hunt",
    "ProfileDiff", "SourceDelta", "diff_profiles",
    "TimelineEntry", "merged_timeline", "timeline_text",
    "save_kernel_trace", "load_kernel_trace", "load_trace_noise",
    "save_app_intervals", "load_app_intervals",
]
