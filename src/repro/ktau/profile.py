"""TAU-style profiles built from observer data.

A *kernel profile* answers "where did this node's kernel time go?"
(per-source and per-kind counts and totals over a window); an *app
profile* answers "where did the application's wall time go?" (per
instrumented interval name: wall time, and how much of it the kernel
stole, by category).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TraceError
from .records import EventKind, classify_source
from .tracer import KtauTracer

__all__ = ["ProfileEntry", "NodeKernelProfile", "build_kernel_profile",
           "AppPhaseProfile", "build_app_profile"]


@dataclass(frozen=True, slots=True)
class ProfileEntry:
    """Aggregate for one kernel activity on one node."""

    source: str
    kind: str
    count: int
    total_ns: int
    min_ns: int
    max_ns: int

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


@dataclass(frozen=True, slots=True)
class NodeKernelProfile:
    """Per-activity kernel profile of one node over a window."""

    node: int
    window_start: int
    window_end: int
    entries: tuple[ProfileEntry, ...]

    @property
    def window_ns(self) -> int:
        return self.window_end - self.window_start

    @property
    def total_stolen_ns(self) -> int:
        """Sum of per-source totals (overlaps counted per source)."""
        return sum(e.total_ns for e in self.entries)

    @property
    def utilization(self) -> float:
        return self.total_stolen_ns / self.window_ns if self.window_ns else 0.0

    def by_kind(self) -> dict[str, int]:
        """Stolen ns per :class:`EventKind`, in reporting order."""
        out: dict[str, int] = {}
        for entry in self.entries:
            out[entry.kind] = out.get(entry.kind, 0) + entry.total_ns
        return {k: out[k] for k in EventKind.ORDER if k in out}

    def entry(self, source: str) -> ProfileEntry:
        for e in self.entries:
            if e.source == source:
                return e
        raise TraceError(f"no profile entry for source {source!r}")


def build_kernel_profile(tracer: KtauTracer, node_id: int,
                         start: int, end: int) -> NodeKernelProfile:
    """Profile one node's kernel activity over ``[start, end)``.

    Requires a trace-level tracer (per-event detail).  Event counts
    include events *starting* in the window; totals are the stolen time
    clipped to the window, so ``utilization`` is exact.
    """
    if end <= start:
        raise TraceError(f"empty profile window [{start}, {end})")
    events = tracer.kernel_events_between(node_id, start, end)
    per_source: dict[str, list[int]] = {}
    for ev in events:
        acc = per_source.setdefault(ev.source, [0, 0, ev.duration, ev.duration])
        acc[0] += 1
        acc[1] += ev.duration
        acc[2] = min(acc[2], ev.duration)
        acc[3] = max(acc[3], ev.duration)
    # Clip totals to the window (head/tail truncation) via the exact
    # per-source stolen accounting.
    clipped = tracer.stolen_breakdown(node_id, start, end)
    entries = []
    for source, (count, _total, mn, mx) in sorted(per_source.items()):
        entries.append(ProfileEntry(
            source=source, kind=classify_source(source), count=count,
            total_ns=clipped.get(source, 0), min_ns=mn, max_ns=mx))
    # Sources that only contribute clipped tails (event started before
    # the window) still deserve an entry.
    for source, ns in sorted(clipped.items()):
        if source not in per_source and ns > 0:
            entries.append(ProfileEntry(source=source,
                                        kind=classify_source(source),
                                        count=0, total_ns=ns, min_ns=0,
                                        max_ns=0))
    return NodeKernelProfile(node_id, start, end, tuple(entries))


@dataclass(slots=True)
class AppPhaseProfile:
    """Aggregate over all intervals sharing one name on one node."""

    node: int
    name: str
    count: int = 0
    total_wall_ns: int = 0
    max_wall_ns: int = 0
    min_wall_ns: int = 0
    stolen_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def mean_wall_ns(self) -> float:
        return self.total_wall_ns / self.count if self.count else 0.0

    @property
    def total_stolen_ns(self) -> int:
        return sum(self.stolen_by_kind.values())

    @property
    def noise_fraction(self) -> float:
        """Share of this phase's wall time the kernel stole."""
        return (self.total_stolen_ns / self.total_wall_ns
                if self.total_wall_ns else 0.0)


def build_app_profile(tracer: KtauTracer, node_id: int,
                      name: str | None = None) -> dict[str, AppPhaseProfile]:
    """App-phase profiles for one node (keyed by interval name)."""
    profiles: dict[str, AppPhaseProfile] = {}
    for interval in tracer.app_intervals(node_id, name):
        prof = profiles.get(interval.name)
        if prof is None:
            prof = AppPhaseProfile(node=node_id, name=interval.name,
                                   min_wall_ns=interval.duration)
            profiles[interval.name] = prof
        prof.count += 1
        prof.total_wall_ns += interval.duration
        prof.max_wall_ns = max(prof.max_wall_ns, interval.duration)
        prof.min_wall_ns = min(prof.min_wall_ns, interval.duration)
        for kind, ns in tracer.kind_breakdown(node_id, interval.start,
                                              interval.end).items():
            prof.stolen_by_kind[kind] = prof.stolen_by_kind.get(kind, 0) + ns
    return profiles
