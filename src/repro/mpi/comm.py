"""Communicators and the per-rank messaging API.

The shape mirrors mpi4py (lower-case object-passing API), adapted to the
simulator's generator style: every potentially blocking call is a
generator you drive with ``yield from``::

    def rank_program(ctx):                 # ctx: RankComm
        yield from ctx.compute(work_ns=1_000_000)
        msg = yield from ctx.sendrecv(dest=right, source=left, size=8192)
        total = yield from ctx.allreduce(size=8)

Costs charged per operation:

* send: LogGP ``o`` + NIC descriptor post, as sender CPU work;
* recv: LogGP ``o`` at completion, as receiver CPU work;
* wire and receiver packet processing: handled by :mod:`repro.net`;
* reductions: ``reduce_cost_per_byte`` ns of CPU per combined byte.

All of that CPU work runs on the node CPU and is therefore stretched by
kernel noise — which is how noise gets *into* the communication path.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import MPIError
from ..kernel.node import Node
from ..net.message import Message
from ..net.network import Network
from ..sim import Environment, Event
from .constants import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_OPS,
    COLLECTIVE_TAG_BASE,
    COLLECTIVE_TAG_WINDOW,
)
from .matching import MessageRouter
from .request import Request

__all__ = ["Communicator", "MPIWorld", "RankComm"]

#: Stable per-operation offsets inside the collective tag space (the
#: table lives in :mod:`repro.mpi.constants` so tag consumers — the
#: critical-path recorder's :func:`~repro.mpi.constants.op_from_tag` —
#: can invert the layout without importing this module).
_COLL_OPS = COLLECTIVE_OPS
#: Tag sub-slots one collective invocation may use for internal phases.
_PHASES_PER_CALL = 8

#: Machine-wide default algorithm per collective operation.  A
#: :class:`MPIWorld` built with ``collectives={op: name}`` overrides
#: entries; a per-call ``algorithm=`` argument overrides both.
_DEFAULT_ALGORITHMS: dict[str, str] = {
    "barrier": "dissemination",
    "bcast": "binomial",
    "reduce": "binomial",
    "allreduce": "recursive-doubling",
    "gather": "binomial",
    "scatter": "binomial",
    "allgather": "ring",
    "alltoall": "pairwise",
    "scan": "binomial",
    "exscan": "binomial",
    "reduce_scatter": "pairwise",
}


@dataclass(frozen=True)
class Communicator:
    """A process group: mapping from rank to physical node id."""

    comm_id: int
    node_of_rank: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.node_of_rank:
            raise MPIError("communicator must contain at least one rank")
        if len(set(self.node_of_rank)) != len(self.node_of_rank):
            raise MPIError("a node may appear at most once per communicator")

    @property
    def size(self) -> int:
        return len(self.node_of_rank)

    def node(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range [0, {self.size})")
        return self.node_of_rank[rank]


class MPIWorld:
    """Machine-wide MPI state: router, communicator registry, defaults.

    When ``faults`` is a plan that can lose messages, point-to-point
    traffic is routed through a
    :class:`~repro.faults.ReliableTransport` (ack/timeout/retry with
    exponential backoff) instead of straight onto the wire; otherwise
    the classic zero-overhead connectionless path is wired, bit-
    identical to a fault-free build.
    """

    def __init__(self, env: Environment, network: Network, *,
                 reduce_cost_per_byte: float = 0.25,
                 faults: _t.Any = None, metrics: bool = False,
                 tracer: _t.Any = None, critpath: _t.Any = None,
                 shape: _t.Any = None,
                 collectives: _t.Mapping[str, str] | None = None) -> None:
        self.env = env
        self.network = network
        self.nodes: list[Node] = network.nodes
        self.router = MessageRouter(env, len(self.nodes))
        #: Telemetry gate for :attr:`op_totals` (set from
        #: :mod:`repro.obs` by the machine builder).
        self.metrics = bool(metrics)
        #: Machine-wide op counts (send/recv/collectives by name),
        #: harvested into ``mpi.ops_total`` by :mod:`repro.obs`.
        self.op_totals: dict[str, int] = {}
        #: Span tracer for collective phases (``mpi`` category).
        self.tracer = (tracer if tracer is not None
                       and tracer.enabled("mpi") else None)
        #: Cross-node dependency recorder
        #: (:class:`repro.obs.DependencyRecorder`) — ``None`` unless
        #: critical-path recording is enabled for this machine.
        self.critpath = critpath
        self.transport = None
        if faults is not None and faults.needs_protocol:
            from ..faults import ReliableTransport
            self.transport = ReliableTransport(
                env, network, faults,
                tracer=(tracer if tracer is not None
                        and tracer.enabled("faults") else None),
                recorder=critpath)
            self.transport.attach(self.router.deliver)
        else:
            network.on_deliver(self.router.deliver)
        if reduce_cost_per_byte < 0:
            raise MPIError("reduce_cost_per_byte must be >= 0")
        self.reduce_cost_per_byte = reduce_cost_per_byte
        #: Machine packaging hierarchy (:class:`repro.net.MachineShape`
        #: or ``None``); the two-level collective algorithms group
        #: ranks by it.
        self.shape = shape
        #: Per-operation algorithm overrides (validated eagerly so a
        #: typo fails at machine build, not mid-run).
        self.collectives = dict(collectives) if collectives else {}
        if self.collectives:
            from .collectives import ALGORITHMS, algorithms_for
            for op, name in self.collectives.items():
                if op not in _DEFAULT_ALGORITHMS:
                    raise MPIError(
                        f"unknown collective operation {op!r}; expected one "
                        f"of {sorted(_DEFAULT_ALGORITHMS)}")
                if (op, name) not in ALGORITHMS:
                    raise MPIError(
                        f"unknown {op} algorithm {name!r}; available: "
                        f"{algorithms_for(op)}")
        self._next_comm_id = 1
        #: COMM_WORLD: rank i lives on node i.
        self.world = Communicator(0, tuple(range(len(self.nodes))))

    def algorithm_for(self, op: str) -> str:
        """The algorithm ``op`` runs with when the call site names none."""
        try:
            default = _DEFAULT_ALGORITHMS[op]
        except KeyError:
            raise MPIError(f"unknown collective operation {op!r}") from None
        return self.collectives.get(op, default)

    def send_message(self, msg: Message) -> None:
        """Put one point-to-point message on the wire (via the reliable
        transport when faults demand it)."""
        if self.transport is not None:
            self.transport.send(msg)
        else:
            self.network.inject(msg)

    # -- communicator management ------------------------------------------------
    def create_comm(self, node_ids: _t.Sequence[int]) -> Communicator:
        """A new communicator over the given nodes (rank = list order)."""
        for nid in node_ids:
            if not 0 <= nid < len(self.nodes):
                raise MPIError(f"node id {nid} out of range")
        comm = Communicator(self._next_comm_id, tuple(node_ids))
        self._next_comm_id += 1
        return comm

    def split(self, comm: Communicator, colors: _t.Sequence[int],
              keys: _t.Sequence[int] | None = None) -> dict[int, Communicator]:
        """MPI_Comm_split semantics: one new communicator per color.

        ``colors[r]`` assigns rank ``r`` of ``comm`` to a group
        (negative = rank excluded, as with ``MPI_UNDEFINED``); within a
        group ranks order by ``(keys[r], r)``.  Returns
        ``color -> Communicator``.
        """
        if len(colors) != comm.size:
            raise MPIError(f"need one color per rank ({comm.size}), "
                           f"got {len(colors)}")
        if keys is not None and len(keys) != comm.size:
            raise MPIError("keys must match communicator size")
        groups: dict[int, list[tuple[int, int]]] = {}
        for rank, color in enumerate(colors):
            if color < 0:
                continue
            key = keys[rank] if keys is not None else rank
            groups.setdefault(color, []).append((key, rank))
        out = {}
        for color, members in groups.items():
            members.sort()
            out[color] = self.create_comm(
                [comm.node(rank) for _key, rank in members])
        return out

    def dup(self, comm: Communicator) -> Communicator:
        """A new communicator with the same group but a fresh matching
        scope (messages never cross between the two)."""
        return self.create_comm(list(comm.node_of_rank))

    def rank_context(self, rank: int, comm: Communicator | None = None) -> "RankComm":
        """The messaging handle rank ``rank`` of ``comm`` programs against."""
        comm = comm or self.world
        return RankComm(self, comm, rank)

    def all_contexts(self, comm: Communicator | None = None) -> list["RankComm"]:
        """One context per rank, in rank order."""
        comm = comm or self.world
        return [self.rank_context(r, comm) for r in range(comm.size)]


class RankComm:
    """One rank's view of a communicator (the object rank code uses)."""

    def __init__(self, world: MPIWorld, comm: Communicator, rank: int) -> None:
        if not 0 <= rank < comm.size:
            raise MPIError(f"rank {rank} out of range [0, {comm.size})")
        self.world = world
        self.comm = comm
        self.rank = rank
        self.node_id = comm.node(rank)
        self.node: Node = world.nodes[self.node_id]
        self._coll_counts: dict[str, int] = {}
        #: Per-rank op statistics (sends, recvs, collectives by name).
        self.op_counts: dict[str, int] = {}

    # -- conveniences ------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def env(self) -> Environment:
        return self.world.env

    def compute(self, work_ns: int) -> _t.Generator[Event, object, None]:
        """Application CPU work on this rank's node."""
        return self.node.compute(work_ns)

    def _count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if self.world.metrics:
            totals = self.world.op_totals
            totals[op] = totals.get(op, 0) + 1

    # -- point-to-point -------------------------------------------------------------
    def send(self, dest: int, size: int, *, tag: int = 0,
             payload: _t.Any = None) -> _t.Generator[Event, object, None]:
        """Blocking-but-eager send: returns once the message is injected."""
        req = yield from self.isend(dest, size, tag=tag, payload=payload)
        yield from req.wait()

    def isend(self, dest: int, size: int, *, tag: int = 0,
              payload: _t.Any = None) -> _t.Generator[Event, object, Request]:
        """Non-blocking send; the returned request is already complete
        (eager protocol — the simulator models no rendezvous)."""
        self._validate_tag(tag)
        dst_node = self.comm.node(dest)
        self._count("send")
        yield from self.node.cpu.compute(
            self.world.network.send_overhead_work(self.node_id))
        msg = Message(src=self.node_id, dst=dst_node, tag=tag, size=size,
                      comm_id=self.comm.comm_id, src_rank=self.rank,
                      payload=payload)
        self.world.send_message(msg)
        done = Event(self.env)
        done.succeed(None)
        return Request(self.env, done, kind="send")

    def recv(self, source: int = ANY_SOURCE, *,
             tag: int = ANY_TAG) -> _t.Generator[Event, object, Message]:
        """Blocking receive; returns the matched message."""
        req = self.irecv(source, tag=tag)
        msg = yield from req.wait()
        return _t.cast(Message, msg)

    def irecv(self, source: int = ANY_SOURCE, *, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive (posts immediately, no CPU cost yet)."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise MPIError(f"recv source {source} out of range")
        self._count("recv")
        ev = self.world.router.post_recv(self.node_id, self.comm.comm_id,
                                         source, tag)
        recorder = self.world.critpath
        if recorder is None:
            return Request(
                self.env, ev, cpu=self.node.cpu,
                completion_work=self.world.network.recv_overhead_work(),
                kind="recv")
        return Request(self.env, ev, cpu=self.node.cpu,
                       completion_work=self.world.network.recv_overhead_work(),
                       kind="recv", recorder=recorder, node_id=self.node_id)

    def sendrecv(self, dest: int, source: int, size: int, *,
                 recv_size: int | None = None, tag: int = 0,
                 payload: _t.Any = None) -> _t.Generator[Event, object, Message]:
        """Simultaneous exchange: post the receive, send, then complete."""
        del recv_size  # symmetry hint only; the sender's size governs
        rreq = self.irecv(source, tag=tag)
        yield from self.send(dest, size, tag=tag, payload=payload)
        msg = yield from rreq.wait()
        return _t.cast(Message, msg)

    # -- collectives (dispatch into repro.mpi.collectives) ---------------------------
    def _collective(self, opname: str, algorithm: str | None,
                    **kwargs: _t.Any):
        """Count, tag, and dispatch one collective invocation.

        ``algorithm=None`` (every call site's default) resolves through
        the machine-wide table: per-op ``MachineConfig.collectives``
        overrides, else the built-in default.

        When an ``mpi``-category tracer is active the returned
        generator is wrapped so the invocation appears as one span per
        rank (entry to completion, in simulated time) in the Chrome
        trace.
        """
        from . import collectives
        if algorithm is None:
            algorithm = self.world.algorithm_for(opname)
        self._count(opname)
        gen = collectives.run(opname, algorithm, self,
                              self._coll_tag(opname), **kwargs)
        tracer = self.world.tracer
        if tracer is None:
            return gen
        return self._traced_collective(tracer, opname, gen)

    def _traced_collective(self, tracer: _t.Any, opname: str, gen):
        start = self.env.now
        result = yield from gen
        tracer.complete("mpi", opname, start, self.env.now - start,
                        tid=self.node_id, args=("rank", self.rank))
        return result

    def barrier(self, *, algorithm: str | None = None):
        """Synchronize all ranks of the communicator."""
        return self._collective("barrier", algorithm)

    def bcast(self, size: int, *, root: int = 0, payload: _t.Any = None,
              algorithm: str | None = None):
        """Broadcast ``size`` bytes from ``root``; returns the payload."""
        return self._collective("bcast", algorithm, size=size, root=root,
                                payload=payload)

    def reduce(self, size: int, *, root: int = 0, payload: _t.Any = None,
               op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
               algorithm: str | None = None):
        """Reduce to ``root``; non-roots return ``None``."""
        return self._collective("reduce", algorithm, size=size, root=root,
                                payload=payload, op=op)

    def allreduce(self, size: int, *, payload: _t.Any = None,
                  op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
                  algorithm: str | None = None):
        """Reduce + distribute; every rank returns the combined payload."""
        return self._collective("allreduce", algorithm, size=size,
                                payload=payload, op=op)

    def gather(self, size: int, *, root: int = 0, payload: _t.Any = None,
               algorithm: str | None = None):
        """Gather per-rank payloads to ``root`` (rank-ordered list)."""
        return self._collective("gather", algorithm, size=size, root=root,
                                payload=payload)

    def scatter(self, size: int, *, root: int = 0,
                payloads: _t.Sequence[_t.Any] | None = None,
                algorithm: str | None = None):
        """Scatter one ``size``-byte block from ``root`` to each rank."""
        return self._collective("scatter", algorithm, size=size, root=root,
                                payloads=payloads)

    def allgather(self, size: int, *, payload: _t.Any = None,
                  algorithm: str | None = None):
        """All ranks end with every rank's block (rank-ordered list)."""
        return self._collective("allgather", algorithm, size=size,
                                payload=payload)

    def alltoall(self, size: int, *, payloads: _t.Sequence[_t.Any] | None = None,
                 algorithm: str | None = None):
        """Personalized exchange: block ``i`` goes to rank ``i``."""
        return self._collective("alltoall", algorithm, size=size,
                                payloads=payloads)

    def scan(self, size: int, *, payload: _t.Any = None,
             op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
             algorithm: str | None = None):
        """Inclusive prefix reduction: rank r returns op over ranks 0..r."""
        return self._collective("scan", algorithm, size=size,
                                payload=payload, op=op)

    def exscan(self, size: int, *, payload: _t.Any = None,
               op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
               algorithm: str | None = None):
        """Exclusive prefix reduction (rank 0 returns ``None``)."""
        return self._collective("exscan", algorithm, size=size,
                                payload=payload, op=op)

    def reduce_scatter(self, size: int, *,
                       payloads: _t.Sequence[_t.Any] | None = None,
                       op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
                       algorithm: str | None = None):
        """Equal-block reduce-scatter: rank i returns the reduction of
        everyone's block i (``size`` = bytes per block)."""
        return self._collective("reduce_scatter", algorithm, size=size,
                                payloads=payloads, op=op)

    # -- internals -----------------------------------------------------------------------
    def _coll_tag(self, op: str) -> int:
        """Base tag for this invocation (each call gets a block of
        :data:`_PHASES_PER_CALL` tags for its internal phases).

        Correct because MPI requires every rank to invoke collectives
        on a communicator in the same order, so per-rank counters agree.
        """
        count = self._coll_counts.get(op, 0)
        self._coll_counts[op] = count + 1
        slot = count % (COLLECTIVE_TAG_WINDOW // _PHASES_PER_CALL)
        op_base = _COLL_OPS.index(op) * COLLECTIVE_TAG_WINDOW
        return COLLECTIVE_TAG_BASE + op_base + slot * _PHASES_PER_CALL

    def _validate_tag(self, tag: int) -> None:
        # Tags at/above COLLECTIVE_TAG_BASE are reserved for collective
        # internals (which reuse this same send path); application code
        # must stay below it, but that is a documented convention — the
        # only hard error is a negative tag, which would collide with
        # the ANY_TAG wildcard.
        if tag < 0:
            raise MPIError(f"send tags must be >= 0, got {tag}")

    def reduce_work(self, size: int) -> int:
        """CPU ns to combine two ``size``-byte buffers."""
        return round(self.world.reduce_cost_per_byte * size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankComm rank={self.rank}/{self.size} comm={self.comm.comm_id}>"
