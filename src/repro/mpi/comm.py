"""Communicators and the per-rank messaging API.

The shape mirrors mpi4py (lower-case object-passing API), adapted to the
simulator's generator style: every potentially blocking call is a
generator you drive with ``yield from``::

    def rank_program(ctx):                 # ctx: RankComm
        yield from ctx.compute(work_ns=1_000_000)
        msg = yield from ctx.sendrecv(dest=right, source=left, size=8192)
        total = yield from ctx.allreduce(size=8)

Costs charged per operation:

* send: LogGP ``o`` + NIC descriptor post, as sender CPU work;
* recv: LogGP ``o`` at completion, as receiver CPU work;
* wire and receiver packet processing: handled by :mod:`repro.net`;
* reductions: ``reduce_cost_per_byte`` ns of CPU per combined byte.

All of that CPU work runs on the node CPU and is therefore stretched by
kernel noise — which is how noise gets *into* the communication path.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import MPIError
from ..kernel.node import Node
from ..net.message import Message
from ..net.network import Network
from ..sim import Environment, Event
from .constants import ANY_SOURCE, ANY_TAG, COLLECTIVE_TAG_BASE, COLLECTIVE_TAG_WINDOW
from .matching import MessageRouter
from .request import Request

__all__ = ["Communicator", "MPIWorld", "RankComm"]

#: Stable per-operation offsets inside the collective tag space.
_COLL_OPS = ("barrier", "bcast", "reduce", "allreduce", "gather",
             "scatter", "allgather", "alltoall", "scan", "exscan",
             "reduce_scatter")
#: Tag sub-slots one collective invocation may use for internal phases.
_PHASES_PER_CALL = 8


@dataclass(frozen=True)
class Communicator:
    """A process group: mapping from rank to physical node id."""

    comm_id: int
    node_of_rank: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.node_of_rank:
            raise MPIError("communicator must contain at least one rank")
        if len(set(self.node_of_rank)) != len(self.node_of_rank):
            raise MPIError("a node may appear at most once per communicator")

    @property
    def size(self) -> int:
        return len(self.node_of_rank)

    def node(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range [0, {self.size})")
        return self.node_of_rank[rank]


class MPIWorld:
    """Machine-wide MPI state: router, communicator registry, defaults.

    When ``faults`` is a plan that can lose messages, point-to-point
    traffic is routed through a
    :class:`~repro.faults.ReliableTransport` (ack/timeout/retry with
    exponential backoff) instead of straight onto the wire; otherwise
    the classic zero-overhead connectionless path is wired, bit-
    identical to a fault-free build.
    """

    def __init__(self, env: Environment, network: Network, *,
                 reduce_cost_per_byte: float = 0.25,
                 faults: _t.Any = None) -> None:
        self.env = env
        self.network = network
        self.nodes: list[Node] = network.nodes
        self.router = MessageRouter(env, len(self.nodes))
        self.transport = None
        if faults is not None and faults.needs_protocol:
            from ..faults import ReliableTransport
            self.transport = ReliableTransport(env, network, faults)
            self.transport.attach(self.router.deliver)
        else:
            network.on_deliver(self.router.deliver)
        if reduce_cost_per_byte < 0:
            raise MPIError("reduce_cost_per_byte must be >= 0")
        self.reduce_cost_per_byte = reduce_cost_per_byte
        self._next_comm_id = 1
        #: COMM_WORLD: rank i lives on node i.
        self.world = Communicator(0, tuple(range(len(self.nodes))))

    def send_message(self, msg: Message) -> None:
        """Put one point-to-point message on the wire (via the reliable
        transport when faults demand it)."""
        if self.transport is not None:
            self.transport.send(msg)
        else:
            self.network.inject(msg)

    # -- communicator management ------------------------------------------------
    def create_comm(self, node_ids: _t.Sequence[int]) -> Communicator:
        """A new communicator over the given nodes (rank = list order)."""
        for nid in node_ids:
            if not 0 <= nid < len(self.nodes):
                raise MPIError(f"node id {nid} out of range")
        comm = Communicator(self._next_comm_id, tuple(node_ids))
        self._next_comm_id += 1
        return comm

    def split(self, comm: Communicator, colors: _t.Sequence[int],
              keys: _t.Sequence[int] | None = None) -> dict[int, Communicator]:
        """MPI_Comm_split semantics: one new communicator per color.

        ``colors[r]`` assigns rank ``r`` of ``comm`` to a group
        (negative = rank excluded, as with ``MPI_UNDEFINED``); within a
        group ranks order by ``(keys[r], r)``.  Returns
        ``color -> Communicator``.
        """
        if len(colors) != comm.size:
            raise MPIError(f"need one color per rank ({comm.size}), "
                           f"got {len(colors)}")
        if keys is not None and len(keys) != comm.size:
            raise MPIError("keys must match communicator size")
        groups: dict[int, list[tuple[int, int]]] = {}
        for rank, color in enumerate(colors):
            if color < 0:
                continue
            key = keys[rank] if keys is not None else rank
            groups.setdefault(color, []).append((key, rank))
        out = {}
        for color, members in groups.items():
            members.sort()
            out[color] = self.create_comm(
                [comm.node(rank) for _key, rank in members])
        return out

    def dup(self, comm: Communicator) -> Communicator:
        """A new communicator with the same group but a fresh matching
        scope (messages never cross between the two)."""
        return self.create_comm(list(comm.node_of_rank))

    def rank_context(self, rank: int, comm: Communicator | None = None) -> "RankComm":
        """The messaging handle rank ``rank`` of ``comm`` programs against."""
        comm = comm or self.world
        return RankComm(self, comm, rank)

    def all_contexts(self, comm: Communicator | None = None) -> list["RankComm"]:
        """One context per rank, in rank order."""
        comm = comm or self.world
        return [self.rank_context(r, comm) for r in range(comm.size)]


class RankComm:
    """One rank's view of a communicator (the object rank code uses)."""

    def __init__(self, world: MPIWorld, comm: Communicator, rank: int) -> None:
        if not 0 <= rank < comm.size:
            raise MPIError(f"rank {rank} out of range [0, {comm.size})")
        self.world = world
        self.comm = comm
        self.rank = rank
        self.node_id = comm.node(rank)
        self.node: Node = world.nodes[self.node_id]
        self._coll_counts: dict[str, int] = {}
        #: Per-rank op statistics (sends, recvs, collectives by name).
        self.op_counts: dict[str, int] = {}

    # -- conveniences ------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def env(self) -> Environment:
        return self.world.env

    def compute(self, work_ns: int) -> _t.Generator[Event, object, None]:
        """Application CPU work on this rank's node."""
        return self.node.compute(work_ns)

    def _count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    # -- point-to-point -------------------------------------------------------------
    def send(self, dest: int, size: int, *, tag: int = 0,
             payload: _t.Any = None) -> _t.Generator[Event, object, None]:
        """Blocking-but-eager send: returns once the message is injected."""
        req = yield from self.isend(dest, size, tag=tag, payload=payload)
        yield from req.wait()

    def isend(self, dest: int, size: int, *, tag: int = 0,
              payload: _t.Any = None) -> _t.Generator[Event, object, Request]:
        """Non-blocking send; the returned request is already complete
        (eager protocol — the simulator models no rendezvous)."""
        self._validate_tag(tag)
        dst_node = self.comm.node(dest)
        self._count("send")
        yield from self.node.cpu.compute(
            self.world.network.send_overhead_work(self.node_id))
        msg = Message(src=self.node_id, dst=dst_node, tag=tag, size=size,
                      comm_id=self.comm.comm_id, src_rank=self.rank,
                      payload=payload)
        self.world.send_message(msg)
        done = Event(self.env)
        done.succeed(None)
        return Request(self.env, done, kind="send")

    def recv(self, source: int = ANY_SOURCE, *,
             tag: int = ANY_TAG) -> _t.Generator[Event, object, Message]:
        """Blocking receive; returns the matched message."""
        req = self.irecv(source, tag=tag)
        msg = yield from req.wait()
        return _t.cast(Message, msg)

    def irecv(self, source: int = ANY_SOURCE, *, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive (posts immediately, no CPU cost yet)."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise MPIError(f"recv source {source} out of range")
        self._count("recv")
        ev = self.world.router.post_recv(self.node_id, self.comm.comm_id,
                                         source, tag)
        return Request(self.env, ev, cpu=self.node.cpu,
                       completion_work=self.world.network.recv_overhead_work(),
                       kind="recv")

    def sendrecv(self, dest: int, source: int, size: int, *,
                 recv_size: int | None = None, tag: int = 0,
                 payload: _t.Any = None) -> _t.Generator[Event, object, Message]:
        """Simultaneous exchange: post the receive, send, then complete."""
        del recv_size  # symmetry hint only; the sender's size governs
        rreq = self.irecv(source, tag=tag)
        yield from self.send(dest, size, tag=tag, payload=payload)
        msg = yield from rreq.wait()
        return _t.cast(Message, msg)

    # -- collectives (dispatch into repro.mpi.collectives) ---------------------------
    def barrier(self, *, algorithm: str = "dissemination"):
        """Synchronize all ranks of the communicator."""
        from . import collectives
        self._count("barrier")
        return collectives.run("barrier", algorithm, self,
                               self._coll_tag("barrier"))

    def bcast(self, size: int, *, root: int = 0, payload: _t.Any = None,
              algorithm: str = "binomial"):
        """Broadcast ``size`` bytes from ``root``; returns the payload."""
        from . import collectives
        self._count("bcast")
        return collectives.run("bcast", algorithm, self,
                               self._coll_tag("bcast"), size=size, root=root,
                               payload=payload)

    def reduce(self, size: int, *, root: int = 0, payload: _t.Any = None,
               op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
               algorithm: str = "binomial"):
        """Reduce to ``root``; non-roots return ``None``."""
        from . import collectives
        self._count("reduce")
        return collectives.run("reduce", algorithm, self,
                               self._coll_tag("reduce"), size=size, root=root,
                               payload=payload, op=op)

    def allreduce(self, size: int, *, payload: _t.Any = None,
                  op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
                  algorithm: str = "recursive-doubling"):
        """Reduce + distribute; every rank returns the combined payload."""
        from . import collectives
        self._count("allreduce")
        return collectives.run("allreduce", algorithm, self,
                               self._coll_tag("allreduce"), size=size,
                               payload=payload, op=op)

    def gather(self, size: int, *, root: int = 0, payload: _t.Any = None,
               algorithm: str = "binomial"):
        """Gather per-rank payloads to ``root`` (rank-ordered list)."""
        from . import collectives
        self._count("gather")
        return collectives.run("gather", algorithm, self,
                               self._coll_tag("gather"), size=size, root=root,
                               payload=payload)

    def scatter(self, size: int, *, root: int = 0,
                payloads: _t.Sequence[_t.Any] | None = None,
                algorithm: str = "binomial"):
        """Scatter one ``size``-byte block from ``root`` to each rank."""
        from . import collectives
        self._count("scatter")
        return collectives.run("scatter", algorithm, self,
                               self._coll_tag("scatter"), size=size, root=root,
                               payloads=payloads)

    def allgather(self, size: int, *, payload: _t.Any = None,
                  algorithm: str = "ring"):
        """All ranks end with every rank's block (rank-ordered list)."""
        from . import collectives
        self._count("allgather")
        return collectives.run("allgather", algorithm, self,
                               self._coll_tag("allgather"), size=size,
                               payload=payload)

    def alltoall(self, size: int, *, payloads: _t.Sequence[_t.Any] | None = None,
                 algorithm: str = "pairwise"):
        """Personalized exchange: block ``i`` goes to rank ``i``."""
        from . import collectives
        self._count("alltoall")
        return collectives.run("alltoall", algorithm, self,
                               self._coll_tag("alltoall"), size=size,
                               payloads=payloads)

    def scan(self, size: int, *, payload: _t.Any = None,
             op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
             algorithm: str = "binomial"):
        """Inclusive prefix reduction: rank r returns op over ranks 0..r."""
        from . import collectives
        self._count("scan")
        return collectives.run("scan", algorithm, self,
                               self._coll_tag("scan"), size=size,
                               payload=payload, op=op)

    def exscan(self, size: int, *, payload: _t.Any = None,
               op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
               algorithm: str = "binomial"):
        """Exclusive prefix reduction (rank 0 returns ``None``)."""
        from . import collectives
        self._count("exscan")
        return collectives.run("exscan", algorithm, self,
                               self._coll_tag("exscan"), size=size,
                               payload=payload, op=op)

    def reduce_scatter(self, size: int, *,
                       payloads: _t.Sequence[_t.Any] | None = None,
                       op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None = None,
                       algorithm: str = "pairwise"):
        """Equal-block reduce-scatter: rank i returns the reduction of
        everyone's block i (``size`` = bytes per block)."""
        from . import collectives
        self._count("reduce_scatter")
        return collectives.run("reduce_scatter", algorithm, self,
                               self._coll_tag("reduce_scatter"), size=size,
                               payloads=payloads, op=op)

    # -- internals -----------------------------------------------------------------------
    def _coll_tag(self, op: str) -> int:
        """Base tag for this invocation (each call gets a block of
        :data:`_PHASES_PER_CALL` tags for its internal phases).

        Correct because MPI requires every rank to invoke collectives
        on a communicator in the same order, so per-rank counters agree.
        """
        count = self._coll_counts.get(op, 0)
        self._coll_counts[op] = count + 1
        slot = count % (COLLECTIVE_TAG_WINDOW // _PHASES_PER_CALL)
        op_base = _COLL_OPS.index(op) * COLLECTIVE_TAG_WINDOW
        return COLLECTIVE_TAG_BASE + op_base + slot * _PHASES_PER_CALL

    def _validate_tag(self, tag: int) -> None:
        # Tags at/above COLLECTIVE_TAG_BASE are reserved for collective
        # internals (which reuse this same send path); application code
        # must stay below it, but that is a documented convention — the
        # only hard error is a negative tag, which would collide with
        # the ANY_TAG wildcard.
        if tag < 0:
            raise MPIError(f"send tags must be >= 0, got {tag}")

    def reduce_work(self, size: int) -> int:
        """CPU ns to combine two ``size``-byte buffers."""
        return round(self.world.reduce_cost_per_byte * size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankComm rank={self.rank}/{self.size} comm={self.comm.comm_id}>"
