"""Receive matching: posted-receive and unexpected-message queues.

Implements MPI matching semantics per destination node:

* an arriving message first scans the **posted queue** for the oldest
  matching receive (exact ``(comm, src_rank, tag)`` with
  ``ANY_SOURCE`` / ``ANY_TAG`` wildcards);
* a receive first scans the **unexpected queue** for the oldest
  matching already-arrived message;
* otherwise each parks in its queue.

Non-overtaking holds because both queues are FIFO and simulated
delivery between a node pair is FIFO.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..net.message import Message
from ..sim import Environment, Event
from .constants import ANY_SOURCE, ANY_TAG

__all__ = ["MessageRouter", "PostedRecv"]


@dataclass(slots=True)
class PostedRecv:
    """One outstanding receive posted at a node."""

    comm_id: int
    src_rank: int
    tag: int
    event: Event

    def matches(self, msg: Message) -> bool:
        if msg.comm_id != self.comm_id:
            return False
        if self.src_rank != ANY_SOURCE and msg.src_rank != self.src_rank:
            return False
        if self.tag != ANY_TAG and msg.tag != self.tag:
            return False
        return True


class MessageRouter:
    """Per-node matching queues for the whole machine."""

    def __init__(self, env: Environment, n_nodes: int) -> None:
        self.env = env
        self.n_nodes = n_nodes
        self._posted: list[deque[PostedRecv]] = [deque() for _ in range(n_nodes)]
        self._unexpected: list[deque[Message]] = [deque() for _ in range(n_nodes)]
        #: Diagnostics: how many arrivals found no posted receive.
        self.unexpected_arrivals = 0

    # -- network side -------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        """Network handoff: complete a posted receive or park the message."""
        posted = self._posted[msg.dst]
        for i, pr in enumerate(posted):
            if pr.matches(msg):
                del posted[i]
                pr.event.succeed(msg)
                return
        self.unexpected_arrivals += 1
        self._unexpected[msg.dst].append(msg)

    # -- application side --------------------------------------------------------
    def post_recv(self, dst_node: int, comm_id: int, src_rank: int,
                  tag: int) -> Event:
        """Post a receive; the event's value is the matched Message."""
        ev = Event(self.env)
        unexpected = self._unexpected[dst_node]
        probe = PostedRecv(comm_id, src_rank, tag, ev)
        for i, msg in enumerate(unexpected):
            if probe.matches(msg):
                del unexpected[i]
                ev.succeed(msg)
                return ev
        self._posted[dst_node].append(probe)
        return ev

    # -- introspection ---------------------------------------------------------------
    def pending_counts(self, node: int) -> tuple[int, int]:
        """(posted receives, unexpected messages) waiting at ``node``."""
        return len(self._posted[node]), len(self._unexpected[node])

    def quiescent(self) -> bool:
        """True when no receive or message is parked anywhere."""
        return (all(not q for q in self._posted)
                and all(not q for q in self._unexpected))
