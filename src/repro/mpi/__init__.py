"""MPI-like messaging layer over the simulated network.

API shape follows mpi4py, adapted to simulation generators: blocking
calls are generators driven with ``yield from``.  Collectives are real
algorithms over point-to-point messages (binomial trees, recursive
doubling, dissemination, rings) so noise propagates through the same
dependency structure as on real machines.

Minimal usage::

    world = MPIWorld(env, network)
    ctx = world.rank_context(rank)           # inside rank process
    yield from ctx.send(dest=1, size=8)
    msg = yield from ctx.recv(source=0)
    total = yield from ctx.allreduce(size=8, payload=x)
"""

from .comm import Communicator, MPIWorld, RankComm
from .constants import ANY_SOURCE, ANY_TAG, COLLECTIVE_TAG_BASE
from .matching import MessageRouter, PostedRecv
from .request import Request, wait_all

__all__ = [
    "MPIWorld", "Communicator", "RankComm",
    "Request", "wait_all",
    "MessageRouter", "PostedRecv",
    "ANY_SOURCE", "ANY_TAG", "COLLECTIVE_TAG_BASE",
]
