"""MPI-layer constants (wildcards and reserved tag space)."""

from __future__ import annotations

#: Receive from any rank.
ANY_SOURCE: int = -1
#: Receive any tag.
ANY_TAG: int = -1

#: Application tags must stay below this; collectives use tags at and
#: above it so internal traffic can never match a user receive.
COLLECTIVE_TAG_BASE: int = 1 << 20

#: Collective tags cycle within this window per operation type, which
#: bounds the tag space while keeping back-to-back collectives distinct.
COLLECTIVE_TAG_WINDOW: int = 1 << 10

#: Stable per-operation offsets inside the collective tag space (the
#: tag layout is ``BASE + index(op) * WINDOW + phase slots``).
COLLECTIVE_OPS: tuple[str, ...] = (
    "barrier", "bcast", "reduce", "allreduce", "gather",
    "scatter", "allgather", "alltoall", "scan", "exscan",
    "reduce_scatter")


def op_from_tag(tag: int) -> str:
    """Operation label encoded in a wire tag (``"p2p"`` for app tags).

    Inverts :meth:`RankComm._coll_tag`'s layout, so consumers (the
    critical-path recorder above all) can label traffic without any
    per-call bookkeeping on the send/recv hot path.
    """
    if tag < COLLECTIVE_TAG_BASE:
        return "p2p"
    index = (tag - COLLECTIVE_TAG_BASE) // COLLECTIVE_TAG_WINDOW
    if 0 <= index < len(COLLECTIVE_OPS):
        return COLLECTIVE_OPS[index]
    return "collective"  # out-of-table tag: still reserved space
