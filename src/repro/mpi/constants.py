"""MPI-layer constants (wildcards and reserved tag space)."""

from __future__ import annotations

#: Receive from any rank.
ANY_SOURCE: int = -1
#: Receive any tag.
ANY_TAG: int = -1

#: Application tags must stay below this; collectives use tags at and
#: above it so internal traffic can never match a user receive.
COLLECTIVE_TAG_BASE: int = 1 << 20

#: Collective tags cycle within this window per operation type, which
#: bounds the tag space while keeping back-to-back collectives distinct.
COLLECTIVE_TAG_WINDOW: int = 1 << 10
