"""Non-blocking communication requests.

A :class:`Request` wraps the completion event of an ``isend``/``irecv``
plus the receiver-side CPU overhead still owed at completion.  Wait on
one with ``yield from req.wait()`` (returns the matched
:class:`~repro.net.Message` for receives, ``None`` for sends) or poll
with :meth:`Request.test`.  :func:`wait_all` completes a batch.
"""

from __future__ import annotations

import typing as _t

from ..errors import MPIError
from ..net.message import Message
from ..sim import Environment, Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["Request", "wait_all"]


class Request:
    """Handle for an in-flight non-blocking operation.

    ``recorder``/``node_id``/``op`` plumb the cross-node dependency
    recorder (:class:`repro.obs.DependencyRecorder`) into the wait
    path: every completed receive is a causal edge from the sender's
    injection to this rank's resumption.  ``recorder`` is ``None``
    unless critical-path recording is enabled, so the default path
    pays one ``is None`` test.
    """

    def __init__(self, env: Environment, event: Event, *,
                 cpu: "CPU | None" = None, completion_work: int = 0,
                 kind: str = "recv", recorder: _t.Any = None,
                 node_id: int = -1) -> None:
        self.env = env
        self.event = event
        self._cpu = cpu
        self._completion_work = completion_work
        self.kind = kind
        self._consumed = False
        self._recorder = recorder
        self._node_id = node_id

    def test(self) -> bool:
        """True if the operation has completed (wait() will not block
        on the transfer itself, only on any completion-side CPU work)."""
        return self.event.processed or self.event.triggered

    def wait(self) -> _t.Generator[Event, object, Message | None]:
        """Block until complete; pays completion-side CPU overhead.

        Returns the message for receives, ``None`` for sends.  A
        request may be waited exactly once (matching MPI semantics,
        where completion releases the request object).
        """
        if self._consumed:
            raise MPIError("request waited twice")
        self._consumed = True
        if self._recorder is not None and self.kind == "recv":
            start = self.env.now
            value = yield self.event
            self._recorder.record_wait(self._node_id, start, self.env.now,
                                       _t.cast(Message, value))
        else:
            value = yield self.event
        if self._completion_work and self._cpu is not None:
            yield from self._cpu.compute(self._completion_work)
        if self.kind == "recv":
            return _t.cast(Message, value)
        return None


def wait_all(requests: _t.Sequence[Request]) -> _t.Generator[Event, object, list[Message | None]]:
    """Complete every request, returning their results in order.

    Waits sequentially — once all events have fired the extra yields
    cost zero simulated time, so order does not affect timing beyond
    the serialized completion work, matching real ``MPI_Waitall``
    semantics where completion processing is serialized on the host.
    """
    results: list[Message | None] = []
    for req in requests:
        results.append((yield from req.wait()))
    return results
