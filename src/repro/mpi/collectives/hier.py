"""Two-level (hierarchy-aware) collective algorithms.

The machine's :class:`~repro.net.MachineShape` partitions ranks into
contiguous *groups* (one physical node when nodes are multi-core, one
leaf switch otherwise — :meth:`MachineShape.collective_group_size`).
Each collective then runs in phases that keep most traffic inside a
group and send only one rank per group (its *leader*, the lowest rank)
across the expensive levels — chainermn's intra-/inter-node
communicator split:

* ``allreduce two-level`` — intra-group binomial fan-in to the leader,
  recursive-doubling allreduce among leaders, intra-group binomial
  broadcast of the result.
* ``allreduce two-level-ring`` — same, with a bandwidth-optimal ring
  among the leaders instead of recursive doubling.
* ``bcast two-level`` — root hands to its leader, binomial bcast among
  leaders, intra-group binomial bcast.
* ``barrier two-level`` — intra-group fan-in, dissemination among
  leaders, intra-group release.

All phases are real point-to-point rounds, so noise amplification
emerges from the (shallower, mostly-local) dependency tree exactly as
in the flat algorithms.  Every algorithm here has a round-for-round
mirror in :mod:`repro.mpi.collectives.bulk`; changes must be made in
both places (the equivalence tests enforce it).
"""

from __future__ import annotations

import typing as _t

from ...errors import MPIError
from ...sim import Event
from .common import combine

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["two_level_allreduce", "two_level_ring_allreduce",
           "two_level_bcast", "two_level_barrier", "group_geometry"]

_Op = _t.Callable[[_t.Any, _t.Any], _t.Any]


def group_geometry(ctx: "RankComm") -> tuple[int, int, int, int, int]:
    """This rank's place in the shape's group partition.

    Returns ``(group_size, gid, base, gsize, n_groups)`` where ranks
    ``base .. base+gsize-1`` form this rank's group and rank ``base``
    is its leader.  Raises when the machine has no configured shape.
    """
    shape = ctx.world.shape
    if shape is None:
        raise MPIError(
            "two-level collectives need a machine shape; set "
            "MachineConfig(shape=...) or a 'hier:...' topology")
    g = shape.collective_group_size()
    P = ctx.size
    gid = ctx.rank // g
    base = gid * g
    gsize = min(g, P - base)
    n_groups = (P + g - 1) // g
    return g, gid, base, gsize, n_groups


# -- intra-group building blocks ---------------------------------------------

def _intra_fanin(ctx: "RankComm", tag: int, base: int, gsize: int, *,
                 size: int, acc: _t.Any, op: _Op | None, reduce_data: bool
                 ) -> _t.Generator[Event, object, _t.Any]:
    """Binomial fan-in to the group leader (``base``).

    Non-leaders send once and stop participating; the leader (and
    interior tree ranks) receive from children at ascending bit
    offsets, combining when ``reduce_data`` is set.
    """
    vrank = ctx.rank - base
    mask = 1
    while mask < gsize:
        if vrank & mask:
            yield from ctx.send(base + (vrank - mask), size, tag=tag,
                                payload=acc if reduce_data else None)
            break
        partner = vrank + mask
        if partner < gsize:
            msg = yield from ctx.recv(base + partner, tag=tag)
            if reduce_data:
                acc = yield from combine(ctx, op, acc, msg.payload, size)
        mask <<= 1
    return acc


def _intra_bcast(ctx: "RankComm", tag: int, base: int, gsize: int, *,
                 size: int, payload: _t.Any
                 ) -> _t.Generator[Event, object, _t.Any]:
    """Binomial broadcast from the group leader (``base``)."""
    vrank = ctx.rank - base
    mask = 1
    while mask < gsize:
        if vrank & mask:
            msg = yield from ctx.recv(base + (vrank & ~mask), tag=tag)
            payload = msg.payload
            break
        mask <<= 1
    mask >>= 1
    while mask >= 1:
        if vrank + mask < gsize:
            yield from ctx.send(base + vrank + mask, size, tag=tag,
                                payload=payload)
        mask >>= 1
    return payload


# -- leader-phase building blocks --------------------------------------------

def _allreduce_over(ctx: "RankComm", tag: int, ranks: _t.Sequence[int],
                    idx: int, *, size: int, acc: _t.Any, op: _Op | None
                    ) -> _t.Generator[Event, object, _t.Any]:
    """MPICH recursive doubling over an explicit participant list.

    ``ranks[idx] == ctx.rank``; tags ``tag .. tag+2`` (fold /
    exchange / unfold), mirroring the flat algorithm.
    """
    n = len(ranks)
    if n == 1:
        return acc
    pof2 = 1 << (n.bit_length() - 1)
    rem = n - pof2

    if idx < 2 * rem:
        if idx % 2 == 0:
            yield from ctx.send(ranks[idx + 1], size, tag=tag, payload=acc)
            newidx = -1
        else:
            msg = yield from ctx.recv(ranks[idx - 1], tag=tag)
            acc = yield from combine(ctx, op, acc, msg.payload, size)
            newidx = idx // 2
    else:
        newidx = idx - rem

    if newidx != -1:
        mask = 1
        while mask < pof2:
            partner_new = newidx ^ mask
            partner = (partner_new * 2 + 1 if partner_new < rem
                       else partner_new + rem)
            msg = yield from ctx.sendrecv(ranks[partner], ranks[partner],
                                          size, tag=tag + 1, payload=acc)
            acc = yield from combine(ctx, op, acc, msg.payload, size)
            mask <<= 1

    if idx < 2 * rem:
        if idx % 2 == 1:
            yield from ctx.send(ranks[idx - 1], size, tag=tag + 2, payload=acc)
        else:
            msg = yield from ctx.recv(ranks[idx + 1], tag=tag + 2)
            acc = msg.payload
    return acc


def _ring_over(ctx: "RankComm", tag: int, ranks: _t.Sequence[int],
               idx: int, *, size: int, acc: _t.Any, op: _Op | None
               ) -> _t.Generator[Event, object, _t.Any]:
    """Ring allreduce over an explicit participant list (scalar path).

    Reduce-scatter rounds on ``tag`` (each contribution combined
    exactly once as it passes), allgather rounds on ``tag+1`` for
    their timing cost — the flat ring's scalar mode.
    """
    n = len(ranks)
    if n == 1:
        return acc
    block = max(1, size // n)
    right = ranks[(idx + 1) % n]
    left = ranks[(idx - 1) % n]
    carry = acc
    for _ in range(n - 1):
        msg = yield from ctx.sendrecv(right, left, block, tag=tag,
                                      payload=carry)
        carry = msg.payload
        acc = yield from combine(ctx, op, acc, carry, block)
    for _ in range(n - 1):
        yield from ctx.sendrecv(right, left, block, tag=tag + 1, payload=None)
    return acc


# -- registered algorithms ----------------------------------------------------

def _two_level_allreduce(ctx: "RankComm", tag: int, *, size: int,
                         payload: _t.Any, op: _Op | None, leader_kind: str
                         ) -> _t.Generator[Event, object, _t.Any]:
    g, gid, base, gsize, n_groups = group_geometry(ctx)
    if ctx.size == 1:
        return payload
    acc = yield from _intra_fanin(ctx, tag, base, gsize, size=size,
                                  acc=payload, op=op, reduce_data=True)
    if ctx.rank == base:
        leaders = [i * g for i in range(n_groups)]
        if leader_kind == "ring":
            acc = yield from _ring_over(ctx, tag + 1, leaders, gid,
                                        size=size, acc=acc, op=op)
        else:
            acc = yield from _allreduce_over(ctx, tag + 1, leaders, gid,
                                             size=size, acc=acc, op=op)
    return (yield from _intra_bcast(ctx, tag + 4, base, gsize, size=size,
                                    payload=acc))


def two_level_allreduce(ctx: "RankComm", tag: int, *, size: int,
                        payload: _t.Any, op: _Op | None
                        ) -> _t.Generator[Event, object, _t.Any]:
    """Fan-in → recursive doubling among leaders → intra bcast."""
    return (yield from _two_level_allreduce(ctx, tag, size=size,
                                            payload=payload, op=op,
                                            leader_kind="rd"))


def two_level_ring_allreduce(ctx: "RankComm", tag: int, *, size: int,
                             payload: _t.Any, op: _Op | None
                             ) -> _t.Generator[Event, object, _t.Any]:
    """Fan-in → ring among leaders → intra bcast."""
    return (yield from _two_level_allreduce(ctx, tag, size=size,
                                            payload=payload, op=op,
                                            leader_kind="ring"))


def two_level_bcast(ctx: "RankComm", tag: int, *, size: int, root: int,
                    payload: _t.Any) -> _t.Generator[Event, object, _t.Any]:
    """Root → its leader → binomial over leaders → intra bcast."""
    g, gid, base, gsize, n_groups = group_geometry(ctx)
    if ctx.size == 1:
        return payload
    root_gid = root // g
    root_leader = root_gid * g
    # Phase 1: the root hands its data to its group leader.
    if root != root_leader:
        if ctx.rank == root:
            yield from ctx.send(root_leader, size, tag=tag, payload=payload)
        elif ctx.rank == root_leader:
            msg = yield from ctx.recv(root, tag=tag)
            payload = msg.payload
    # Phase 2: binomial bcast over the leaders, rooted at root's group.
    if ctx.rank == base:
        vg = (gid - root_gid) % n_groups
        mask = 1
        while mask < n_groups:
            if vg & mask:
                parent = (((vg & ~mask) + root_gid) % n_groups) * g
                msg = yield from ctx.recv(parent, tag=tag + 1)
                payload = msg.payload
                break
            mask <<= 1
        mask >>= 1
        while mask >= 1:
            if vg + mask < n_groups:
                child = (((vg + mask) + root_gid) % n_groups) * g
                yield from ctx.send(child, size, tag=tag + 1, payload=payload)
            mask >>= 1
    # Phase 3: every leader broadcasts within its group (the original
    # root receives its own data back — one extra local hop, by design:
    # the tree stays uniform).
    return (yield from _intra_bcast(ctx, tag + 2, base, gsize, size=size,
                                    payload=payload))


def two_level_barrier(ctx: "RankComm", tag: int
                      ) -> _t.Generator[Event, object, None]:
    """Fan-in → dissemination among leaders → intra release."""
    g, gid, base, gsize, n_groups = group_geometry(ctx)
    if ctx.size == 1:
        return
    yield from _intra_fanin(ctx, tag, base, gsize, size=0, acc=None,
                            op=None, reduce_data=False)
    if ctx.rank == base:
        dist = 1
        while dist < n_groups:
            dest = ((gid + dist) % n_groups) * g
            src = ((gid - dist) % n_groups) * g
            yield from ctx.sendrecv(dest, src, size=0, tag=tag + 1)
            dist <<= 1
    yield from _intra_bcast(ctx, tag + 2, base, gsize, size=0, payload=None)
