"""Shared helpers for collective algorithm implementations."""

from __future__ import annotations

import typing as _t

from ...errors import MPIError
from ...sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["combine", "default_op", "lowest_set_bit", "floor_pow2"]


def default_op(a: _t.Any, b: _t.Any) -> _t.Any:
    """Element-wise/arithmetic sum; identity-tolerant of ``None``.

    ``None`` models "timing-only" collectives where callers did not
    pass data: combining anything with ``None`` keeps the other value.
    """
    if a is None:
        return b
    if b is None:
        return a
    return a + b


def combine(ctx: "RankComm", op: _t.Callable[[_t.Any, _t.Any], _t.Any] | None,
            a: _t.Any, b: _t.Any, size: int) -> _t.Generator[Event, object, _t.Any]:
    """Combine two buffers, paying the reduction CPU cost."""
    work = ctx.reduce_work(size)
    if work:
        yield from ctx.compute(work)
    return (op or default_op)(a, b)


def lowest_set_bit(x: int) -> int:
    """The value of ``x``'s lowest set bit (``x`` must be > 0)."""
    if x <= 0:
        raise MPIError(f"lowest_set_bit needs x > 0, got {x}")
    return x & -x


def floor_pow2(x: int) -> int:
    """Largest power of two <= ``x`` (``x`` must be > 0)."""
    if x <= 0:
        raise MPIError(f"floor_pow2 needs x > 0, got {x}")
    return 1 << (x.bit_length() - 1)
