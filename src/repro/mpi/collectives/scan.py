"""Prefix-reduction (scan) and reduce-scatter algorithms."""

from __future__ import annotations

import typing as _t

from ...errors import MPIError
from ...sim import Event
from .common import combine

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["scan_binomial", "exscan_binomial", "reduce_scatter_pairwise"]

_Op = _t.Callable[[_t.Any, _t.Any], _t.Any]


def scan_binomial(ctx: "RankComm", tag: int, *, size: int, payload: _t.Any,
                  op: _Op | None) -> _t.Generator[Event, object, _t.Any]:
    """Inclusive prefix sum in ceil(log2 P) rounds (Hillis–Steele).

    After round ``k`` each rank holds the reduction of the ``2^(k+1)``
    ranks ending at itself; rank ``r`` finishes with
    ``payload[0] op ... op payload[r]``.
    """
    P, rank = ctx.size, ctx.rank
    acc = payload
    dist = 1
    while dist < P:
        send_to = rank + dist if rank + dist < P else None
        recv_from = rank - dist if rank - dist >= 0 else None
        if send_to is not None and recv_from is not None:
            msg = yield from ctx.sendrecv(send_to, recv_from, size,
                                          tag=tag, payload=acc)
            acc = yield from combine(ctx, op, msg.payload, acc, size)
        elif send_to is not None:
            yield from ctx.send(send_to, size, tag=tag, payload=acc)
        elif recv_from is not None:
            msg = yield from ctx.recv(recv_from, tag=tag)
            acc = yield from combine(ctx, op, msg.payload, acc, size)
        dist <<= 1
    return acc


def exscan_binomial(ctx: "RankComm", tag: int, *, size: int, payload: _t.Any,
                    op: _Op | None) -> _t.Generator[Event, object, _t.Any]:
    """Exclusive prefix sum: rank ``r`` gets the reduction of ranks
    ``< r`` (``None`` at rank 0, matching MPI_Exscan's undefined slot).

    Implemented as inclusive scan of the *previous* rank's contribution:
    each rank first shifts its payload right by one, then runs the
    inclusive algorithm on the shifted values.
    """
    P, rank = ctx.size, ctx.rank
    # Shift contributions one rank to the right.
    if rank + 1 < P:
        yield from ctx.send(rank + 1, size, tag=tag, payload=payload)
    shifted = None
    if rank > 0:
        msg = yield from ctx.recv(rank - 1, tag=tag)
        shifted = msg.payload
    result = yield from scan_binomial(ctx, tag + 1, size=size,
                                      payload=shifted, op=op)
    return result if rank > 0 else None


def reduce_scatter_pairwise(ctx: "RankComm", tag: int, *, size: int,
                            payloads: _t.Sequence[_t.Any] | None,
                            op: _Op | None
                            ) -> _t.Generator[Event, object, _t.Any]:
    """Reduce-scatter with equal blocks: rank ``i`` ends with the
    reduction of everyone's block ``i``.

    Pairwise-exchange algorithm: P−1 rounds; in round ``s`` rank ``r``
    sends its block for ``(r+s) mod P`` and receives (and folds in) a
    contribution to its own block.  ``size`` is the per-block byte
    count.
    """
    P, rank = ctx.size, ctx.rank
    if payloads is not None and len(payloads) != P:
        raise MPIError(f"reduce_scatter payloads must have {P} entries, "
                       f"got {len(payloads)}")
    own = payloads[rank] if payloads is not None else None
    if P == 1:
        return own
    for step in range(1, P):
        dest = (rank + step) % P
        src = (rank - step) % P
        out = payloads[dest] if payloads is not None else None
        msg = yield from ctx.sendrecv(dest, src, size, tag=tag, payload=out)
        own = yield from combine(ctx, op, own, msg.payload, size)
    return own
