"""Allgather algorithms."""

from __future__ import annotations

import typing as _t

from ...sim import Event
from . import bcast as _bcast
from . import gather as _gather

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["ring", "gather_bcast"]


def ring(ctx: "RankComm", tag: int, *, size: int,
         payload: _t.Any) -> _t.Generator[Event, object, list]:
    """Ring allgather: P−1 steps, each forwarding the newest block."""
    P, rank = ctx.size, ctx.rank
    entries: dict[int, _t.Any] = {rank: payload}
    if P == 1:
        return [payload]
    right = (rank + 1) % P
    left = (rank - 1) % P
    owner = rank
    for _ in range(P - 1):
        msg = yield from ctx.sendrecv(right, left, size, tag=tag,
                                      payload=(owner, entries[owner]))
        owner, value = msg.payload
        entries[owner] = value
    return [entries[r] for r in range(P)]


def gather_bcast(ctx: "RankComm", tag: int, *, size: int,
                 payload: _t.Any) -> _t.Generator[Event, object, list]:
    """Binomial gather to rank 0 followed by binomial bcast of the list."""
    gathered = yield from _gather.gather_binomial(ctx, tag, size=size,
                                                  root=0, payload=payload)
    return (yield from _bcast.binomial(ctx, tag + 4, size=size * ctx.size,
                                       root=0, payload=gathered))
