"""All-to-all personalized exchange algorithms."""

from __future__ import annotations

import typing as _t

from ...errors import MPIError
from ...sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["pairwise", "linear"]


def _check_payloads(ctx: "RankComm",
                    payloads: _t.Sequence[_t.Any] | None) -> _t.Sequence[_t.Any]:
    if payloads is None:
        return [None] * ctx.size
    if len(payloads) != ctx.size:
        raise MPIError(f"alltoall payloads must have {ctx.size} entries, "
                       f"got {len(payloads)}")
    return payloads


def pairwise(ctx: "RankComm", tag: int, *, size: int,
             payloads: _t.Sequence[_t.Any] | None
             ) -> _t.Generator[Event, object, list]:
    """Pairwise exchange: P−1 rounds.

    With a power-of-two P each round is a perfect matching
    (``partner = rank XOR round``); otherwise a shifted schedule
    (send to ``rank+round``, receive from ``rank−round``) keeps every
    round conflict-free.
    """
    P, rank = ctx.size, ctx.rank
    payloads = _check_payloads(ctx, payloads)
    result: list[_t.Any] = [None] * P
    result[rank] = payloads[rank]
    if P == 1:
        return result
    pow2 = (P & (P - 1)) == 0
    for step in range(1, P):
        if pow2:
            dest = src = rank ^ step
        else:
            dest = (rank + step) % P
            src = (rank - step) % P
        msg = yield from ctx.sendrecv(dest, src, size, tag=tag,
                                      payload=payloads[dest])
        result[src] = msg.payload
    return result


def linear(ctx: "RankComm", tag: int, *, size: int,
           payloads: _t.Sequence[_t.Any] | None
           ) -> _t.Generator[Event, object, list]:
    """Post all receives, then blast all sends, then complete.

    The naive algorithm: correct, but all P−1 messages converge on
    every node at once (incast) — kept as an ablation comparator.
    """
    P, rank = ctx.size, ctx.rank
    payloads = _check_payloads(ctx, payloads)
    result: list[_t.Any] = [None] * P
    result[rank] = payloads[rank]
    if P == 1:
        return result
    reqs = {}
    for src in range(P):
        if src != rank:
            reqs[src] = ctx.irecv(src, tag=tag)
    for dest in range(P):
        if dest != rank:
            yield from ctx.send(dest, size, tag=tag, payload=payloads[dest])
    for src, req in reqs.items():
        msg = yield from req.wait()
        result[src] = msg.payload
    return result
