"""Allreduce algorithms — the operation the paper's most noise-sensitive
applications (frequent small global sums) live and die by.

Three algorithms with different dependency structures, hence different
noise amplification profiles:

* ``recursive-doubling`` — log2(P) rounds of pairwise exchange; every
  round is a global synchronization point for its pair graph.  The
  latency-optimal choice for small messages (what a barotropic ocean
  solver issues thousands of times per simulated day).
* ``reduce-bcast`` — binomial reduce then binomial bcast: 2·log2(P)
  depth through a single root.
* ``ring`` — reduce-scatter + allgather over a ring: bandwidth-optimal
  for large messages, 2(P−1) rounds of nearest-neighbour exchange.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ...sim import Event
from . import bcast as _bcast
from . import reduce as _reduce
from .common import combine, floor_pow2

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["recursive_doubling", "reduce_bcast", "ring"]

_Op = _t.Callable[[_t.Any, _t.Any], _t.Any]


def recursive_doubling(ctx: "RankComm", tag: int, *, size: int,
                       payload: _t.Any, op: _Op | None
                       ) -> _t.Generator[Event, object, _t.Any]:
    """MPICH-style recursive doubling with non-power-of-two fold/unfold.

    Phase A folds the ``rem = P - 2^k`` extra ranks into their even
    neighbours; phase B runs k rounds of pairwise exchange-and-combine
    among the surviving power-of-two group; phase C unfolds results
    back out.  Tag usage: ``tag`` for fold, ``tag+1`` for exchanges
    (partners differ per round), ``tag+2`` for unfold.
    """
    P, rank = ctx.size, ctx.rank
    if P == 1:
        return payload
    pof2 = floor_pow2(P)
    rem = P - pof2
    acc = payload

    # Phase A: fold extras. Ranks < 2*rem pair up (even sends to odd).
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from ctx.send(rank + 1, size, tag=tag, payload=acc)
            newrank = -1  # parked until phase C
        else:
            msg = yield from ctx.recv(rank - 1, tag=tag)
            acc = yield from combine(ctx, op, acc, msg.payload, size)
            newrank = rank // 2
    else:
        newrank = rank - rem

    # Phase B: recursive doubling among the pof2 survivors.
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (partner_new * 2 + 1 if partner_new < rem
                       else partner_new + rem)
            msg = yield from ctx.sendrecv(partner, partner, size,
                                          tag=tag + 1, payload=acc)
            acc = yield from combine(ctx, op, acc, msg.payload, size)
            mask <<= 1

    # Phase C: unfold results to the parked even ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from ctx.send(rank - 1, size, tag=tag + 2, payload=acc)
        else:
            msg = yield from ctx.recv(rank + 1, tag=tag + 2)
            acc = msg.payload
    return acc


def reduce_bcast(ctx: "RankComm", tag: int, *, size: int, payload: _t.Any,
                 op: _Op | None) -> _t.Generator[Event, object, _t.Any]:
    """Binomial reduce to rank 0, then binomial broadcast of the result."""
    reduced = yield from _reduce.binomial(ctx, tag, size=size, root=0,
                                          payload=payload, op=op)
    return (yield from _bcast.binomial(ctx, tag + 4, size=size, root=0,
                                       payload=reduced))


def ring(ctx: "RankComm", tag: int, *, size: int, payload: _t.Any,
         op: _Op | None) -> _t.Generator[Event, object, _t.Any]:
    """Ring allreduce: reduce-scatter then allgather, 2(P−1) steps.

    Timing models ``size/P``-byte blocks circulating the ring.  Data
    semantics: NumPy-array payloads are genuinely chunked along axis 0
    and reduced block-wise (exact result); other payloads are combined
    with the scalar path of :func:`combine` as blocks pass through.
    """
    P, rank = ctx.size, ctx.rank
    if P == 1:
        return payload
    block = max(1, size // P)
    right = (rank + 1) % P
    left = (rank - 1) % P

    if isinstance(payload, np.ndarray):
        # Faithful chunked algorithm: exact data and exact timing.
        chunks: list[_t.Any] = [c.copy() for c in np.array_split(payload, P)]
        # Reduce-scatter: after P-1 steps chunk (rank+1)%P is complete here.
        send_idx = rank
        for _ in range(P - 1):
            msg = yield from ctx.sendrecv(right, left, block, tag=tag,
                                          payload=(send_idx, chunks[send_idx]))
            idx, data = msg.payload
            chunks[idx] = yield from combine(ctx, op, chunks[idx], data, block)
            send_idx = idx
        # Allgather the completed chunks around the ring.
        send_idx = (rank + 1) % P
        for _ in range(P - 1):
            msg = yield from ctx.sendrecv(right, left, block, tag=tag + 1,
                                          payload=(send_idx, chunks[send_idx]))
            idx, data = msg.payload
            chunks[idx] = data
            send_idx = idx
        return np.concatenate(chunks)

    # Scalar / timing-only mode: circulate the original contributions
    # (each value is combined into the accumulator exactly once), then
    # run the allgather-phase exchanges for their timing cost.
    acc = payload
    carry = payload
    for _ in range(P - 1):
        msg = yield from ctx.sendrecv(right, left, block, tag=tag,
                                      payload=carry)
        carry = msg.payload
        acc = yield from combine(ctx, op, acc, carry, block)
    for _ in range(P - 1):
        yield from ctx.sendrecv(right, left, block, tag=tag + 1, payload=None)
    return acc
