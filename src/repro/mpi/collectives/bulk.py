"""Round builders + gating for the bulk-rank fast path.

Translates the generator collectives that the bulk engine supports
into explicit :class:`~repro.sim.bulk.RoundSpec` lists — the same
messages, in the same per-rank program order, with the same reduction
costs.  Each builder is a round-for-round mirror of the corresponding
generator in :mod:`repro.mpi.collectives`; the equivalence tests pin
the two together byte-for-byte, so any change to a generator algorithm
must be replayed here.

:func:`unsupported_reason` is the single gate deciding whether a
``(MachineConfig, CollectiveBenchmark)`` pair may take the fast path;
:func:`run_bulk` executes it.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ...errors import ConfigError
from ...sim.bulk import BulkEngine, BulkTimeline, RoundSpec

if _t.TYPE_CHECKING:  # pragma: no cover
    from ...core.machine import MachineConfig
    from ...microbench.collective_bench import CollectiveBenchmark

__all__ = ["rounds_for", "unsupported_reason", "run_bulk",
           "SUPPORTED_ALGORITHMS"]

#: Operation -> algorithms with a bulk round builder.
SUPPORTED_ALGORITHMS: dict[str, frozenset[str]] = {
    "barrier": frozenset({"dissemination", "two-level"}),
    "bcast": frozenset({"binomial", "two-level"}),
    "allreduce": frozenset({"recursive-doubling", "two-level",
                            "two-level-ring"}),
}


# -- flat building blocks ----------------------------------------------------

def _dissemination_rounds(ranks: np.ndarray, size: int = 0) -> list[RoundSpec]:
    """``barrier.dissemination`` over an explicit participant list."""
    n = len(ranks)
    rounds = []
    dist = 1
    while dist < n:
        rounds.append(RoundSpec(ranks, ranks[(np.arange(n) + dist) % n],
                                size, 0))
        dist <<= 1
    return rounds


def _binomial_bcast_rounds(ranks: np.ndarray, vroot: int, size: int
                           ) -> list[RoundSpec]:
    """``bcast.binomial`` over a participant list, rooted at logical
    index ``vroot`` — rounds by descending mask, matching each rank's
    receive-at-lsb-then-send program order."""
    n = len(ranks)
    if n <= 1:
        return []
    v = np.arange(n)
    phys = ranks[(v + vroot) % n]
    rounds = []
    mask = 1
    while mask * 2 < n:
        mask <<= 1
    while mask >= 1:
        sel = (v % (2 * mask) == 0) & (v + mask < n)
        rounds.append(RoundSpec(phys[sel], phys[v[sel] + mask], size, 0))
        mask >>= 1
    return rounds


def _rd_allreduce_rounds(ranks: np.ndarray, size: int, combine_work: int
                         ) -> list[RoundSpec]:
    """``allreduce.recursive_doubling`` (MPICH fold/exchange/unfold)
    over a participant list."""
    n = len(ranks)
    if n <= 1:
        return []
    pof2 = 1 << (n.bit_length() - 1)
    rem = n - pof2
    rounds = []
    if rem:
        evens = np.arange(0, 2 * rem, 2)
        rounds.append(RoundSpec(ranks[evens], ranks[evens + 1],
                                size, combine_work))
    new = np.arange(pof2)
    phys_of_new = ranks[np.where(new < rem, new * 2 + 1, new + rem)]
    mask = 1
    while mask < pof2:
        rounds.append(RoundSpec(phys_of_new, phys_of_new[new ^ mask],
                                size, combine_work))
        mask <<= 1
    if rem:
        odds = np.arange(1, 2 * rem, 2)
        rounds.append(RoundSpec(ranks[odds], ranks[odds - 1], size, 0))
    return rounds


def _ring_allreduce_rounds(ranks: np.ndarray, size: int,
                           reduce_cost_per_byte: float) -> list[RoundSpec]:
    """``hier._ring_over`` (scalar-path ring allreduce) over a list."""
    n = len(ranks)
    if n <= 1:
        return []
    block = max(1, size // n)
    combine_work = round(reduce_cost_per_byte * block)
    right = np.roll(ranks, -1)
    rounds = [RoundSpec(ranks, right, block, combine_work)] * (n - 1)
    rounds += [RoundSpec(ranks, right, block, 0)] * (n - 1)
    return rounds


# -- hierarchical building blocks --------------------------------------------

def _group_vectors(P: int, g: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    r = np.arange(P)
    base = (r // g) * g
    v = r - base
    gsize = np.minimum(g, P - base)
    return r, v, gsize


def _intra_fanin_rounds(P: int, g: int, size: int, combine_work: int
                        ) -> list[RoundSpec]:
    """``hier._intra_fanin`` across every group at once: each rank
    sends at its in-group lsb; rounds by ascending mask."""
    r, v, _gsize = _group_vectors(P, g)
    rounds = []
    mask = 1
    while mask < g:
        sel = v % (2 * mask) == mask
        if sel.any():
            rounds.append(RoundSpec(r[sel], r[sel] - mask, size, combine_work))
        mask <<= 1
    return rounds


def _intra_bcast_rounds(P: int, g: int, size: int) -> list[RoundSpec]:
    """``hier._intra_bcast`` across every group: descending mask."""
    r, v, gsize = _group_vectors(P, g)
    rounds = []
    mask = 1
    while mask * 2 < g:
        mask <<= 1
    while mask >= 1:
        sel = (v % (2 * mask) == 0) & (v + mask < gsize)
        if sel.any():
            rounds.append(RoundSpec(r[sel], r[sel] + mask, size, 0))
        mask >>= 1
    return rounds


def _leaders(P: int, g: int) -> np.ndarray:
    n_groups = (P + g - 1) // g
    return np.arange(n_groups, dtype=np.int64) * g


# -- per-(op, algorithm) round lists ------------------------------------------

def rounds_for(operation: str, algorithm: str, P: int, *, size: int,
               reduce_cost_per_byte: float, shape=None, root: int = 0
               ) -> list[RoundSpec]:
    """The bulk round list for one collective invocation.

    Raises :class:`ConfigError` for unsupported pairs (callers gate on
    :func:`unsupported_reason` first) and for two-level algorithms
    without a shape.
    """
    if algorithm not in SUPPORTED_ALGORITHMS.get(operation, frozenset()):
        raise ConfigError(
            f"no bulk rounds for {operation}/{algorithm}")
    two_level = algorithm.startswith("two-level")
    if two_level:
        if shape is None:
            raise ConfigError("two-level collectives need a machine shape")
        g = shape.collective_group_size()
        leaders = _leaders(P, g)
    combine_work = round(reduce_cost_per_byte * size)
    world = np.arange(P, dtype=np.int64)

    if P == 1:
        return []
    if operation == "barrier":
        if algorithm == "dissemination":
            return _dissemination_rounds(world)
        return (_intra_fanin_rounds(P, g, 0, 0)
                + _dissemination_rounds(leaders)
                + _intra_bcast_rounds(P, g, 0))
    if operation == "bcast":
        if algorithm == "binomial":
            return _binomial_bcast_rounds(world, root, size)
        root_gid = root // g
        root_leader = root_gid * g
        rounds = []
        if root != root_leader:
            rounds.append(RoundSpec(np.array([root], dtype=np.int64),
                                    np.array([root_leader], dtype=np.int64),
                                    size, 0))
        rounds += _binomial_bcast_rounds(leaders, root_gid, size)
        rounds += _intra_bcast_rounds(P, g, size)
        return rounds
    # allreduce
    if algorithm == "recursive-doubling":
        return _rd_allreduce_rounds(world, size, combine_work)
    rounds = _intra_fanin_rounds(P, g, size, combine_work)
    if algorithm == "two-level":
        rounds += _rd_allreduce_rounds(leaders, size, combine_work)
    else:  # two-level-ring
        rounds += _ring_allreduce_rounds(leaders, size, reduce_cost_per_byte)
    rounds += _intra_bcast_rounds(P, g, size)
    return rounds


# -- gating -------------------------------------------------------------------

def _resolved_algorithm(config: "MachineConfig", op: str,
                        override: str | None) -> str:
    from ..comm import _DEFAULT_ALGORITHMS
    if override:
        return override
    return (config.collectives or {}).get(op, _DEFAULT_ALGORITHMS[op])


def _pow2(x: int) -> bool:
    return x > 0 and not (x & (x - 1))


def _tie_reason(op: str, algo: str, P: int, shape) -> str | None:
    """Shapes where a quiet machine produces *structural* arrival ties.

    When some ranks sit out a round while others act (the MPICH fold
    phase, a ragged binomial tree), equal-clock senders from different
    rounds hit one receiver at the same nanosecond, and the DES breaks
    that tie by event sequence number — unknowable outside the event
    simulation (:class:`repro.sim.bulk.BulkDivergence`).  Power-of-two
    trees have no idle/active asymmetry, so these shapes are excluded
    statically rather than discovered at runtime.
    """
    if P == 1:
        return None
    if algo == "recursive-doubling" and not _pow2(P):
        return ("recursive-doubling at a non-power-of-two rank count "
                "ties fold and exchange arrivals")
    if algo.startswith("two-level"):
        g = shape.collective_group_size()
        if not _pow2(g):
            return (f"two-level group size {g} is not a power of two; "
                    "the intra-group fan-in tree would be ragged")
        rem = P % g
        if rem and not _pow2(rem):
            return (f"partial group of {rem} ranks is not a power of "
                    "two; the intra-group fan-in tree would be ragged")
        n_leaders = -(-P // g)
        if op == "allreduce" and algo == "two-level" \
                and not _pow2(n_leaders):
            return (f"two-level allreduce over {n_leaders} leaders ties "
                    "in the fold phase; use two-level-ring")
    return None


def unsupported_reason(config: "MachineConfig",
                       bench: "CollectiveBenchmark") -> str | None:
    """Why this (machine, benchmark) pair cannot take the bulk path.

    ``None`` means the fast path applies and is byte-identical to the
    generator path.  Every condition here marks machine behaviour the
    engine does not model (host kernel activity, stochastic noise,
    faults, heterogeneous nodes) or telemetry that only the per-rank
    path can produce (metrics, traces, ``det_check``, critical path).
    """
    from ...obs import runtime as _obs

    op = bench.operation
    if op not in SUPPORTED_ALGORITHMS:
        return f"no bulk round builder for operation {op!r}"
    algo = _resolved_algorithm(config, op, bench.algorithm)
    if algo not in SUPPORTED_ALGORITHMS[op]:
        return f"no bulk round builder for {op}/{algo}"
    barrier_algo = _resolved_algorithm(config, "barrier", None)
    if barrier_algo not in SUPPORTED_ALGORITHMS["barrier"]:
        return f"aligning barrier uses unsupported algorithm {barrier_algo!r}"
    needs_shape = algo.startswith("two-level") \
        or barrier_algo.startswith("two-level")
    shape = config.resolved_shape()
    if needs_shape and shape is None:
        return "two-level algorithms need a machine shape"
    reason = (_tie_reason(op, algo, config.n_nodes, shape)
              or _tie_reason("barrier", barrier_algo, config.n_nodes, shape))
    if reason is not None:
        return reason
    kcfg = config.kernel_config()
    if kcfg.hz or kcfg.daemons:
        return "kernel has intrinsic noise (tick or daemons)"
    if kcfg.nic is not None:
        return "host NIC processing couples messages to the CPU"
    if config.network_params().jitter_ns:
        return "wire jitter is not modelled in bulk"
    if config.faults is not None and config.faults.injects_faults:
        return "fault injection needs the protocol machinery"
    if config.slow_nodes:
        return "heterogeneous node speeds are not vectorized"
    if config.isolate_noise:
        return "core specialization changes the noise path"
    if config.critical_path or _obs.critpath_enabled():
        return "critical-path recording needs per-rank events"
    if _obs.metrics_enabled() or _obs.tracer() is not None \
            or _obs.det_check_enabled():
        return "telemetry (metrics/trace/det_check) needs the DES"
    if config.injection is not None \
            and config.injection.periodic_profile(config.n_nodes) is None:
        return "injected noise is not strictly periodic"
    return None


def run_bulk(config: "MachineConfig", bench: "CollectiveBenchmark", *,
             tie_break: str = "strict",
             stats_out: dict | None = None) -> tuple["_t.Any", BulkTimeline]:
    """Run the benchmark on the fast path.

    Returns ``(CollectiveBenchResult, BulkTimeline)``; the result is
    byte-identical (times and metadata) to ``bench.run(Machine(config))``
    with the default ``tie_break="strict"``.  ``"deterministic"``
    additionally resolves exact-nanosecond arrival ties (whose DES
    order is unknowable outside the event path) in round order — still
    seed-deterministic, intended for scales the generator cannot reach.
    ``stats_out``, when given, accumulates the engine's diagnostic
    counters (``fixpoint_reps`` repetitions rescued by the arrival
    fixpoint, ``tie_breaks`` resolved ties).
    """
    from ...microbench.collective_bench import CollectiveBenchResult

    reason = unsupported_reason(config, bench)
    if reason is not None:
        raise ConfigError(f"bulk fast path unavailable: {reason}")
    P = config.n_nodes
    params = config.network_params()
    topology = config.build_topology()
    profile = (config.injection.periodic_profile(P)
               if config.injection is not None else None)
    engine = BulkEngine(P, params, topology, profile,
                        reduce_cost_per_byte=config.reduce_cost_per_byte,
                        tie_break=tie_break)
    shape = config.resolved_shape()
    barrier_rounds = rounds_for(
        "barrier", _resolved_algorithm(config, "barrier", None), P,
        size=0, reduce_cost_per_byte=config.reduce_cost_per_byte,
        shape=shape)
    coll_rounds = rounds_for(
        bench.operation, _resolved_algorithm(config, bench.operation,
                                             bench.algorithm),
        P, size=bench.message_size,
        reduce_cost_per_byte=config.reduce_cost_per_byte, shape=shape)
    timeline = engine.run_benchmark(barrier_rounds, coll_rounds,
                                    repetitions=bench.repetitions,
                                    gap_ns=bench.gap_ns)
    result = CollectiveBenchResult(bench.operation, bench.algorithm, P,
                                   bench.message_size, timeline.times_ns)
    if stats_out is not None:
        stats_out["fixpoint_reps"] = (stats_out.get("fixpoint_reps", 0)
                                      + engine.fixpoint_reps)
        stats_out["tie_breaks"] = (stats_out.get("tie_breaks", 0)
                                   + engine.tie_breaks)
    return result, timeline
