"""Barrier algorithms.

The barrier is the purest noise amplifier: it completes only when the
*slowest* rank arrives, so any one node's detour delays everyone.
"""

from __future__ import annotations

import typing as _t

from ...sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["dissemination", "linear"]


def dissemination(ctx: "RankComm", tag: int) -> _t.Generator[Event, object, None]:
    """Dissemination barrier: ceil(log2 P) rounds of shifted exchange.

    In round ``k`` every rank sends to ``(rank + 2^k) mod P`` and
    receives from ``(rank - 2^k) mod P``; after the last round all
    ranks have transitively heard from everyone.
    """
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return
    dist = 1
    while dist < size:
        dest = (rank + dist) % size
        src = (rank - dist) % size
        yield from ctx.sendrecv(dest, src, size=0, tag=tag)
        dist <<= 1


def linear(ctx: "RankComm", tag: int) -> _t.Generator[Event, object, None]:
    """Central-coordinator barrier: gather-to-0 then release.

    The O(P) baseline algorithm — included as an ablation comparator
    to show how algorithm choice changes noise sensitivity.
    """
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return
    if rank == 0:
        for _ in range(size - 1):
            yield from ctx.recv(tag=tag)
        for r in range(1, size):
            yield from ctx.send(r, size=0, tag=tag + 1)
    else:
        yield from ctx.send(0, size=0, tag=tag)
        yield from ctx.recv(0, tag=tag + 1)
