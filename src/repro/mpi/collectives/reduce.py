"""Reduce-to-root algorithms."""

from __future__ import annotations

import typing as _t

from ...sim import Event
from .common import combine

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["binomial", "linear"]

_Op = _t.Callable[[_t.Any, _t.Any], _t.Any]


def binomial(ctx: "RankComm", tag: int, *, size: int, root: int,
             payload: _t.Any, op: _Op | None) -> _t.Generator[Event, object, _t.Any]:
    """Binomial-tree reduction (the mirror image of binomial bcast)."""
    P, rank = ctx.size, ctx.rank
    vrank = (rank - root) % P
    acc = payload
    mask = 1
    while mask < P:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % P
            yield from ctx.send(parent, size, tag=tag, payload=acc)
            break
        partner = vrank | mask
        if partner < P:
            msg = yield from ctx.recv((partner + root) % P, tag=tag)
            acc = yield from combine(ctx, op, acc, msg.payload, size)
        mask <<= 1
    return acc if rank == root else None


def linear(ctx: "RankComm", tag: int, *, size: int, root: int,
           payload: _t.Any, op: _Op | None) -> _t.Generator[Event, object, _t.Any]:
    """Every rank sends to the root, which combines serially."""
    P, rank = ctx.size, ctx.rank
    if P == 1:
        return payload
    if rank != root:
        yield from ctx.send(root, size, tag=tag, payload=payload)
        return None
    acc = payload
    for _ in range(P - 1):
        msg = yield from ctx.recv(tag=tag)
        acc = yield from combine(ctx, op, acc, msg.payload, size)
    return acc
