"""Collective algorithm registry.

Every collective is implemented as real rounds of point-to-point
messages — never as a magic single event — so noise amplification
emerges from the dependency structure of the algorithm, exactly as on
the physical machine.  Multiple algorithms per operation support the
ablation benchmarks (e.g. recursive-doubling vs ring allreduce under
identical noise).
"""

from __future__ import annotations

import typing as _t

from ...errors import MPIError
from . import allgather as _allgather
from . import allreduce as _allreduce
from . import alltoall as _alltoall
from . import barrier as _barrier
from . import bcast as _bcast
from . import gather as _gather
from . import hier as _hier
from . import reduce as _reduce
from . import scan as _scan

__all__ = ["ALGORITHMS", "run", "algorithms_for"]

#: (operation, algorithm-name) -> generator function.
ALGORITHMS: dict[tuple[str, str], _t.Callable[..., _t.Any]] = {
    ("barrier", "dissemination"): _barrier.dissemination,
    ("barrier", "linear"): _barrier.linear,
    ("barrier", "two-level"): _hier.two_level_barrier,
    ("bcast", "binomial"): _bcast.binomial,
    ("bcast", "linear"): _bcast.linear,
    ("bcast", "two-level"): _hier.two_level_bcast,
    ("reduce", "binomial"): _reduce.binomial,
    ("reduce", "linear"): _reduce.linear,
    ("allreduce", "recursive-doubling"): _allreduce.recursive_doubling,
    ("allreduce", "reduce-bcast"): _allreduce.reduce_bcast,
    ("allreduce", "ring"): _allreduce.ring,
    ("allreduce", "two-level"): _hier.two_level_allreduce,
    ("allreduce", "two-level-ring"): _hier.two_level_ring_allreduce,
    ("gather", "binomial"): _gather.gather_binomial,
    ("gather", "linear"): _gather.gather_linear,
    ("scatter", "binomial"): _gather.scatter_binomial,
    ("scatter", "linear"): _gather.scatter_linear,
    ("allgather", "ring"): _allgather.ring,
    ("allgather", "gather-bcast"): _allgather.gather_bcast,
    ("alltoall", "pairwise"): _alltoall.pairwise,
    ("alltoall", "linear"): _alltoall.linear,
    ("scan", "binomial"): _scan.scan_binomial,
    ("exscan", "binomial"): _scan.exscan_binomial,
    ("reduce_scatter", "pairwise"): _scan.reduce_scatter_pairwise,
}


def algorithms_for(op: str) -> list[str]:
    """Registered algorithm names for one operation."""
    names = [alg for (o, alg) in ALGORITHMS if o == op]
    if not names:
        raise MPIError(f"unknown collective operation {op!r}")
    return sorted(names)


def run(operation: str, algorithm: str, ctx, tag: int, **kwargs):
    """Instantiate the chosen algorithm's generator for one rank.

    (The positional name is ``operation``, not ``op`` — reductions pass
    their combining function as an ``op=`` keyword.)
    """
    try:
        fn = ALGORITHMS[(operation, algorithm)]
    except KeyError:
        raise MPIError(
            f"no algorithm {algorithm!r} for {operation!r}; available: "
            f"{algorithms_for(operation)}") from None
    return fn(ctx, tag, **kwargs)
