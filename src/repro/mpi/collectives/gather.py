"""Gather and scatter algorithms (binomial trees with growing blocks)."""

from __future__ import annotations

import typing as _t

from ...errors import MPIError
from ...sim import Event
from .common import lowest_set_bit

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["gather_binomial", "gather_linear", "scatter_binomial",
           "scatter_linear"]


def gather_binomial(ctx: "RankComm", tag: int, *, size: int, root: int,
                    payload: _t.Any) -> _t.Generator[Event, object, _t.Any]:
    """Binomial gather: subtree contributions merge on the way up.

    Message sizes grow with subtree size (``size`` bytes per
    contributing rank), as in real tree gathers.
    """
    P, rank = ctx.size, ctx.rank
    vrank = (rank - root) % P
    entries: dict[int, _t.Any] = {rank: payload}
    mask = 1
    while mask < P:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % P
            yield from ctx.send(parent, size * len(entries), tag=tag,
                                payload=entries)
            break
        partner = vrank | mask
        if partner < P:
            msg = yield from ctx.recv((partner + root) % P, tag=tag)
            entries.update(msg.payload)
        mask <<= 1
    if rank == root:
        return [entries[r] for r in range(P)]
    return None


def gather_linear(ctx: "RankComm", tag: int, *, size: int, root: int,
                  payload: _t.Any) -> _t.Generator[Event, object, _t.Any]:
    """Everyone sends straight to the root."""
    P, rank = ctx.size, ctx.rank
    if P == 1:
        return [payload]
    if rank != root:
        yield from ctx.send(root, size, tag=tag, payload=(rank, payload))
        return None
    entries = {rank: payload}
    for _ in range(P - 1):
        msg = yield from ctx.recv(tag=tag)
        r, value = msg.payload
        entries[r] = value
    return [entries[r] for r in range(P)]


def scatter_binomial(ctx: "RankComm", tag: int, *, size: int, root: int,
                     payloads: _t.Sequence[_t.Any] | None
                     ) -> _t.Generator[Event, object, _t.Any]:
    """Binomial scatter: the root's blocks split down the tree.

    The mirror of binomial bcast, except each edge carries only the
    receiving subtree's blocks, so message sizes shrink going down.
    Block bookkeeping is done in vrank space.
    """
    P, rank = ctx.size, ctx.rank
    if payloads is not None and rank == root and len(payloads) != P:
        raise MPIError(f"scatter payloads must have {P} entries, "
                       f"got {len(payloads)}")
    vrank = (rank - root) % P
    if vrank == 0:
        blocks: dict[int, _t.Any] = {
            v: (payloads[(v + root) % P] if payloads is not None else None)
            for v in range(P)}
        mask = 1
        while mask < P:
            mask <<= 1
        mask >>= 1  # highest power of two < P (or == P when P is pow2)
    else:
        parent = ((vrank & ~lowest_set_bit(vrank)) + root) % P
        msg = yield from ctx.recv(parent, tag=tag)
        blocks = msg.payload
        mask = lowest_set_bit(vrank) >> 1

    while mask >= 1:
        child_v = vrank + mask
        if child_v < P:
            child_blocks = {v: blocks[v] for v in blocks
                            if child_v <= v < child_v + mask}
            yield from ctx.send(((child_v + root) % P),
                                size * len(child_blocks), tag=tag,
                                payload=child_blocks)
        mask >>= 1
    return blocks[vrank]


def scatter_linear(ctx: "RankComm", tag: int, *, size: int, root: int,
                   payloads: _t.Sequence[_t.Any] | None
                   ) -> _t.Generator[Event, object, _t.Any]:
    """Root sends each rank its block directly."""
    P, rank = ctx.size, ctx.rank
    if payloads is not None and rank == root and len(payloads) != P:
        raise MPIError(f"scatter payloads must have {P} entries, "
                       f"got {len(payloads)}")
    if P == 1:
        return payloads[0] if payloads is not None else None
    if rank == root:
        for r in range(P):
            if r != root:
                yield from ctx.send(r, size, tag=tag,
                                    payload=(payloads[r] if payloads is not None
                                             else None))
        return payloads[root] if payloads is not None else None
    msg = yield from ctx.recv(root, tag=tag)
    return msg.payload
