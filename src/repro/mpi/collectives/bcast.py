"""Broadcast algorithms."""

from __future__ import annotations

import typing as _t

from ...sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..comm import RankComm

__all__ = ["binomial", "linear"]


def binomial(ctx: "RankComm", tag: int, *, size: int, root: int,
             payload: _t.Any) -> _t.Generator[Event, object, _t.Any]:
    """Binomial-tree broadcast: ceil(log2 P) depth.

    Ranks are renumbered relative to ``root`` (vrank); each rank
    receives from the parent given by clearing its lowest set bit, then
    forwards to children at decreasing bit offsets.
    """
    P, rank = ctx.size, ctx.rank
    vrank = (rank - root) % P
    mask = 1
    while mask < P:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % P
            msg = yield from ctx.recv(parent, tag=tag)
            payload = msg.payload
            break
        mask <<= 1
    # `mask` is now the lowest set bit of vrank (or >= P at the root);
    # children sit below it.
    mask >>= 1
    while mask >= 1:
        if vrank + mask < P:
            child = ((vrank + mask) + root) % P
            yield from ctx.send(child, size, tag=tag, payload=payload)
        mask >>= 1
    return payload


def linear(ctx: "RankComm", tag: int, *, size: int, root: int,
           payload: _t.Any) -> _t.Generator[Event, object, _t.Any]:
    """Root sends to every rank individually (O(P) at the root)."""
    P, rank = ctx.size, ctx.rank
    if P == 1:
        return payload
    if rank == root:
        for r in range(P):
            if r != root:
                yield from ctx.send(r, size, tag=tag, payload=payload)
        return payload
    msg = yield from ctx.recv(root, tag=tag)
    return msg.payload
