"""Trace-playback noise.

Replays a recorded noise trace — either one captured by the ktau
observer in a previous simulated run, or an externally supplied
``(start, duration)`` series (e.g. digitized from a real FTQ run).
This closes the loop the original study needed: *measure* noise on one
system, then *inject* the measured signature elsewhere.
"""

from __future__ import annotations

import bisect
import typing as _t

import numpy as np

from ..errors import ConfigError
from .base import NoiseEvent, NoiseSource

__all__ = ["TraceNoise"]


class TraceNoise(NoiseSource):
    """A finite recorded event list, optionally repeated cyclically.

    Parameters
    ----------
    events:
        Iterable of ``(start, duration)`` pairs or :class:`NoiseEvent`.
        Starts must be non-negative; the list is sorted internally.
    repeat_every:
        If given, the trace tiles time with this period: an event at
        ``t`` also occurs at ``t + k*repeat_every`` for all k >= 0.
        Must exceed the last event's end.  If ``None`` the trace plays
        once.
    """

    def __init__(self, events: _t.Iterable[tuple[int, int] | NoiseEvent],
                 *, repeat_every: int | None = None, name: str = "trace") -> None:
        super().__init__(name)
        starts: list[int] = []
        durations: list[int] = []
        for item in events:
            if isinstance(item, NoiseEvent):
                s, d = item.start, item.duration
            else:
                s, d = item
            if s < 0:
                raise ConfigError(f"trace event start must be >= 0, got {s}")
            if d <= 0:
                raise ConfigError(f"trace event duration must be > 0, got {d}")
            starts.append(int(s))
            durations.append(int(d))
        if not starts:
            raise ConfigError("trace must contain at least one event "
                              "(use NullNoise for silence)")
        order = np.argsort(np.asarray(starts, dtype=np.int64), kind="stable")
        self._starts = [starts[i] for i in order]
        self._durations = [durations[i] for i in order]
        self._max_dur = max(self._durations)
        last_end = self._starts[-1] + self._durations[-1]
        if repeat_every is not None:
            if repeat_every < last_end:
                raise ConfigError(
                    f"repeat_every ({repeat_every}) must cover the trace "
                    f"(last event ends at {last_end})")
        self.repeat_every = repeat_every
        self._span = repeat_every if repeat_every is not None else last_end
        self._busy_total = self._one_pass_busy()

    def _one_pass_busy(self) -> int:
        """Busy ns in one pass of the trace, with overlaps merged."""
        from .base import merge_busy_time
        evs = [NoiseEvent(s, d, self.name)
               for s, d in zip(self._starts, self._durations)]
        return merge_busy_time(evs, 0, self._starts[-1] + self._max_dur + 1)

    @property
    def utilization(self) -> float:
        return self._busy_total / self._span

    @property
    def event_rate_hz(self) -> float:
        if self.repeat_every is None:
            return 0.0  # a finite trace has no long-run rate
        return len(self._starts) * 1e9 / self.repeat_every

    def max_event_duration(self) -> int:
        return self._max_dur

    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        if end <= start:
            return []
        out: list[NoiseEvent] = []
        if self.repeat_every is None:
            lo = bisect.bisect_left(self._starts, start)
            hi = bisect.bisect_left(self._starts, end)
            for i in range(lo, hi):
                out.append(NoiseEvent(self._starts[i], self._durations[i], self.name))
            return out
        period = self.repeat_every
        first_cycle = max(0, start // period)
        last_cycle = (end - 1) // period
        for cycle in range(first_cycle, last_cycle + 1):
            base = cycle * period
            lo = bisect.bisect_left(self._starts, start - base)
            hi = bisect.bisect_left(self._starts, end - base)
            for i in range(lo, hi):
                out.append(NoiseEvent(base + self._starts[i],
                                      self._durations[i], self.name))
        return out

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(n_events=len(self._starts), repeat_every_ns=self.repeat_every)
        return d
