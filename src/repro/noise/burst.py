"""Bursty periodic noise.

Some kernel activity arrives in trains: a daemon wakes every ``period``
and performs ``burst_count`` back-to-back slices of work separated by
``burst_gap`` (e.g. a flush daemon writing back several dirty pages, or
an interrupt storm when a NIC ring fills).  The net utilization can be
identical to a smooth periodic source while the *granularity* — and
hence the application impact at scale — differs, which is exactly the
comparison the paper's methodology draws.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import NoiseEvent, NoiseSource

__all__ = ["BurstNoise"]


class BurstNoise(NoiseSource):
    """``burst_count`` events of ``duration`` ns, ``burst_gap`` apart,
    repeating every ``period`` ns.

    Event ``(k, j)`` (burst ``k``, slice ``j``) starts at
    ``phase + k*period + j*(duration + burst_gap)``.
    """

    def __init__(self, period: int, duration: int, burst_count: int,
                 burst_gap: int, *, phase: int = 0, name: str = "burst") -> None:
        super().__init__(name)
        if period <= 0 or duration <= 0:
            raise ConfigError("period and duration must be > 0 ns")
        if burst_count < 1:
            raise ConfigError(f"burst_count must be >= 1, got {burst_count}")
        if burst_gap < 0:
            raise ConfigError(f"burst_gap must be >= 0 ns, got {burst_gap}")
        train = burst_count * duration + (burst_count - 1) * burst_gap
        if train >= period:
            raise ConfigError(
                f"burst train ({train} ns) must fit inside the period ({period} ns)")
        self.period = int(period)
        self.duration = int(duration)
        self.burst_count = int(burst_count)
        self.burst_gap = int(burst_gap)
        self.phase = int(phase)
        self._train_span = train

    @property
    def utilization(self) -> float:
        return self.burst_count * self.duration / self.period

    @property
    def event_rate_hz(self) -> float:
        return self.burst_count * 1e9 / self.period

    def max_event_duration(self) -> int:
        # With burst_gap == 0 the slices coalesce into one long steal.
        if self.burst_gap == 0:
            return self.burst_count * self.duration
        return self.duration

    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        if end <= start:
            return []
        # First burst whose train could still emit events at/after start.
        first_k = (start - self.phase - self._train_span) // self.period
        out = []
        k = first_k
        while True:
            burst_start = self.phase + k * self.period
            if burst_start >= end:
                break
            for j in range(self.burst_count):
                t = burst_start + j * (self.duration + self.burst_gap)
                if start <= t < end:
                    out.append(NoiseEvent(t, self.duration, self.name))
            k += 1
        return out

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(period_ns=self.period, duration_ns=self.duration,
                 burst_count=self.burst_count, burst_gap_ns=self.burst_gap,
                 phase_ns=self.phase)
        return d
