"""A single, one-shot CPU steal — the idle-wave probe.

Afzal, Hager & Wellein (arXiv:1905.10603) study what happens when *one*
rank is delayed *once*: the delay travels through the communication
dependency graph as an "idle wave" whose speed is set by the collective
structure and whose decay length shrinks with background noise.  The
probe that experiment needs is the simplest possible noise source: a
single event of known start and duration on a known node, injected
nowhere else and never again.

:class:`OneOffNoise` is that probe.  Its long-run utilization is zero
(one event amortized over infinite time), so it never perturbs the
analytic model's utilization bookkeeping; its entire effect is the one
planted event, which the wall-time fixed point absorbs exactly like any
other steal.  It is materialized by :class:`~repro.core.Machine` from
:attr:`repro.faults.FaultPlan.one_off` entries and shows up in
critical-path attribution under its source name
(:data:`ONE_OFF_SOURCE`), which is what lets E20 track the planted
delay through the machine.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import NoiseEvent, NoiseSource

__all__ = ["OneOffNoise", "ONE_OFF_SOURCE"]

#: Default source name for planted one-off delays; the critical-path
#: and wavefront layers attribute by this label.
ONE_OFF_SOURCE = "one-off-delay"


class OneOffNoise(NoiseSource):
    """Exactly one CPU steal of ``duration`` ns starting at ``start``.

    Both views of the :class:`~repro.noise.NoiseSource` contract are
    closed-form: the event view is a one-element list when the window
    covers ``start``, and the aggregate view is the window/event
    overlap.
    """

    def __init__(self, start: int, duration: int, *,
                 name: str = ONE_OFF_SOURCE) -> None:
        super().__init__(name)
        if start < 0:
            raise ConfigError(f"one-off start must be >= 0 ns, got {start}")
        if duration <= 0:
            raise ConfigError(
                f"one-off duration must be > 0 ns, got {duration}")
        self.start = int(start)
        self.duration = int(duration)

    @property
    def end(self) -> int:
        """First instant after the delay (``start + duration``)."""
        return self.start + self.duration

    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        if start <= self.start < end:
            return [NoiseEvent(self.start, self.duration, self.name)]
        return []

    def max_event_duration(self) -> int:
        return self.duration

    @property
    def utilization(self) -> float:
        # One event over unbounded time: the long-run fraction is zero.
        return 0.0

    @property
    def event_rate_hz(self) -> float:
        return 0.0

    def stolen_between(self, start: int, end: int) -> int:
        """Closed-form overlap of ``[start, end)`` with the one event."""
        return max(0, min(end, self.end) - max(start, self.start))

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(start_ns=self.start, duration_ns=self.duration)
        return d
