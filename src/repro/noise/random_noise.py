"""Randomized noise sources with window-stable sampling.

The difficulty with random noise in a dual-fidelity simulator is that
``events_in`` must be a *pure function of the time window*: the sampled
inflation path and the traced path must see the same events, and
overlapping queries must agree.  We achieve this by slicing time into
fixed **chunks**; the events inside chunk *i* are generated from an RNG
seeded by ``(seed, source-name, i)`` and memoised.  Any query simply
concatenates the chunks it covers.

Two concrete sources:

* :class:`PoissonNoise` — events arrive as a Poisson process (the
  classic model for asynchronous kernel daemons and interrupt
  coalescing effects), with constant or exponentially distributed
  durations.
* :class:`BernoulliTickNoise` — a strict tick grid (like the timer
  interrupt) where each tick independently does extended work with
  probability ``p`` (models occasionally-expensive ticks: run queue
  rebalancing, RCU callbacks, timer wheel cascades).
"""

from __future__ import annotations

import bisect
from functools import lru_cache

import numpy as np

from ..errors import ConfigError
from ..sim.rng import derive_seed
from ..sim.timebase import MILLISECOND
from .base import NoiseEvent, NoiseSource

__all__ = ["ChunkedRandomNoise", "PoissonNoise", "BernoulliTickNoise"]

#: Default chunk width.  Large enough to amortize RNG setup, small
#: enough that typical queries touch few chunks.
DEFAULT_CHUNK_NS = 10 * MILLISECOND


class ChunkedRandomNoise(NoiseSource):
    """Base class implementing the chunk-frozen sampling scheme.

    Subclasses implement :meth:`_generate_chunk`, returning the events
    of one chunk given that chunk's private RNG.  Events must start
    inside the chunk; they may *end* beyond it.
    """

    def __init__(self, name: str, seed: int, *, chunk_ns: int = DEFAULT_CHUNK_NS,
                 cache_chunks: int = 256) -> None:
        super().__init__(name)
        if chunk_ns <= 0:
            raise ConfigError(f"chunk_ns must be > 0, got {chunk_ns}")
        self.seed = int(seed)
        self.chunk_ns = int(chunk_ns)
        # Per-instance memoised chunk generator (an instance-level
        # lru_cache would keep `self` alive; binding it here is fine
        # because the cache dies with the instance).
        self._chunk_events = lru_cache(maxsize=cache_chunks)(self._build_chunk)

    # -- subclass hook -------------------------------------------------------
    def _generate_chunk(self, chunk_start: int, chunk_end: int,
                        rng: np.random.Generator) -> list[NoiseEvent]:
        raise NotImplementedError

    # -- plumbing --------------------------------------------------------------
    def _build_chunk(self, index: int) -> tuple[list[int], tuple[NoiseEvent, ...]]:
        chunk_start = index * self.chunk_ns
        chunk_end = chunk_start + self.chunk_ns
        rng = np.random.Generator(np.random.PCG64(
            derive_seed(self.seed, f"{self.name}:chunk:{index}")))
        events = self._generate_chunk(chunk_start, chunk_end, rng)
        for ev in events:
            if not (chunk_start <= ev.start < chunk_end):
                raise ConfigError(
                    f"{type(self).__name__} produced an event outside its chunk")
        ordered = tuple(sorted(events, key=lambda e: e.start))
        # Parallel starts list for O(log n) window queries via bisect.
        return [ev.start for ev in ordered], ordered

    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        if end <= start:
            return []
        lo = start // self.chunk_ns
        hi = (end - 1) // self.chunk_ns
        out: list[NoiseEvent] = []
        for index in range(lo, hi + 1):
            starts, events = self._chunk_events(index)
            i = bisect.bisect_left(starts, start)
            j = bisect.bisect_left(starts, end)
            out.extend(events[i:j])
        return out


class PoissonNoise(ChunkedRandomNoise):
    """Poisson-arrival noise with constant or exponential durations.

    Parameters
    ----------
    rate_hz:
        Mean arrival rate in events per second.
    mean_duration:
        Mean CPU stolen per event, ns.
    duration_dist:
        ``"constant"`` (every event steals exactly ``mean_duration``)
        or ``"exponential"`` (durations drawn i.i.d. exponential with
        that mean, capped at ``max_duration``).
    max_duration:
        Hard cap on any one event, ns (default ``10 * mean_duration``).
        Needed so window-widening in ``stolen_between`` stays bounded.
    seed:
        Stream seed; two sources with different seeds are independent.
    """

    def __init__(self, rate_hz: float, mean_duration: int, *, seed: int = 0,
                 duration_dist: str = "constant", max_duration: int | None = None,
                 name: str = "poisson", chunk_ns: int = DEFAULT_CHUNK_NS) -> None:
        if rate_hz <= 0:
            raise ConfigError(f"rate_hz must be > 0, got {rate_hz}")
        if mean_duration <= 0:
            raise ConfigError(f"mean_duration must be > 0 ns, got {mean_duration}")
        if duration_dist not in ("constant", "exponential"):
            raise ConfigError(f"unknown duration_dist {duration_dist!r}")
        self.rate_hz = float(rate_hz)
        self.mean_duration = int(mean_duration)
        self.duration_dist = duration_dist
        self._max_duration = int(max_duration if max_duration is not None
                                 else 10 * mean_duration)
        if self._max_duration < mean_duration:
            raise ConfigError("max_duration must be >= mean_duration")
        util = rate_hz * mean_duration / 1e9
        if util >= 1.0:
            raise ConfigError(f"Poisson noise utilization {util:.2f} >= 1")
        super().__init__(name, seed, chunk_ns=chunk_ns)

    @property
    def utilization(self) -> float:
        return self.rate_hz * self.mean_duration / 1e9

    @property
    def event_rate_hz(self) -> float:
        return self.rate_hz

    def max_event_duration(self) -> int:
        return self._max_duration

    def _generate_chunk(self, chunk_start: int, chunk_end: int,
                        rng: np.random.Generator) -> list[NoiseEvent]:
        span = chunk_end - chunk_start
        n = rng.poisson(self.rate_hz * span / 1e9)
        if n == 0:
            return []
        starts = chunk_start + np.sort(rng.integers(0, span, size=n))
        if self.duration_dist == "constant":
            durations = np.full(n, self.mean_duration, dtype=np.int64)
        else:
            draws = rng.exponential(self.mean_duration, size=n)
            durations = np.clip(np.rint(draws), 1, self._max_duration).astype(np.int64)
        return [NoiseEvent(int(s), int(d), self.name)
                for s, d in zip(starts, durations)]

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(rate_hz=self.rate_hz, mean_duration_ns=self.mean_duration,
                 duration_dist=self.duration_dist, seed=self.seed)
        return d


class BernoulliTickNoise(ChunkedRandomNoise):
    """Tick-grid noise: each tick fires a long event with probability p.

    Models the Linux timer interrupt whose cost is usually tiny but
    occasionally large (timer-wheel cascade, scheduler rebalance).
    Every tick steals ``base_duration``; with probability
    ``heavy_probability`` it steals ``heavy_duration`` instead.

    Ticks are aligned to multiples of ``period`` plus ``phase``.
    """

    def __init__(self, period: int, base_duration: int, heavy_duration: int,
                 heavy_probability: float, *, phase: int = 0, seed: int = 0,
                 name: str = "tick", chunk_ns: int | None = None) -> None:
        if period <= 0:
            raise ConfigError(f"period must be > 0 ns, got {period}")
        if not 0 <= heavy_probability <= 1:
            raise ConfigError(f"heavy_probability must be in [0,1], got {heavy_probability}")
        if base_duration < 0 or heavy_duration <= 0:
            raise ConfigError("durations must be positive")
        if heavy_duration >= period or base_duration >= period:
            raise ConfigError("tick durations must be < period")
        if heavy_duration < base_duration:
            raise ConfigError("heavy_duration must be >= base_duration")
        self.period = int(period)
        self.base_duration = int(base_duration)
        self.heavy_duration = int(heavy_duration)
        self.heavy_probability = float(heavy_probability)
        self.phase = int(phase) % int(period)
        if chunk_ns is None:
            # At least 64 ticks per chunk keeps chunk counts low.
            chunk_ns = max(DEFAULT_CHUNK_NS, 64 * period)
        super().__init__(name, seed, chunk_ns=chunk_ns)

    @property
    def utilization(self) -> float:
        mean = (self.base_duration * (1 - self.heavy_probability)
                + self.heavy_duration * self.heavy_probability)
        return mean / self.period

    @property
    def event_rate_hz(self) -> float:
        return 1e9 / self.period

    def max_event_duration(self) -> int:
        return self.heavy_duration

    def _generate_chunk(self, chunk_start: int, chunk_end: int,
                        rng: np.random.Generator) -> list[NoiseEvent]:
        first_k = -((self.phase - chunk_start) // self.period)
        starts = []
        t = self.phase + first_k * self.period
        while t < chunk_end:
            starts.append(t)
            t += self.period
        if not starts:
            return []
        heavy = rng.random(len(starts)) < self.heavy_probability
        events = []
        for s, h in zip(starts, heavy):
            dur = self.heavy_duration if h else self.base_duration
            if dur > 0:
                events.append(NoiseEvent(int(s), int(dur), self.name))
        return events

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(period_ns=self.period, base_duration_ns=self.base_duration,
                 heavy_duration_ns=self.heavy_duration,
                 heavy_probability=self.heavy_probability, seed=self.seed)
        return d
