"""Per-node noise assignment policies.

The *same* noise pattern hurts differently depending on how it is
aligned across nodes: co-scheduled (gang-scheduled) noise hits every
node simultaneously and is absorbed like a global slowdown, while
independently phased noise hits different nodes at different instants
and is amplified by synchronizing collectives.  An
:class:`InjectionPlan` captures that policy and materializes one noise
source per node.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..sim.rng import RandomTree, node_seed
from .base import NoiseSource, NullNoise
from .burst import BurstNoise
from .patterns import parse_pattern
from .periodic import PeriodicNoise

__all__ = ["InjectionPlan", "SourceFactory"]

#: Callable building one node's source: ``factory(node_id, phase, seed)``.
SourceFactory = _t.Callable[[int, int, int], NoiseSource]


@dataclass(frozen=True)
class InjectionPlan:
    """How one noise pattern is distributed over the machine's nodes.

    Parameters
    ----------
    pattern:
        Compact pattern spec (see :mod:`repro.noise.patterns`) or a
        custom :data:`SourceFactory`.
    alignment:
        * ``"synchronized"`` — every node gets phase 0: noise strikes
          all nodes at the same instants (idealized gang scheduling).
        * ``"random"`` — each node gets an independent uniform-random
          phase within the pattern period (the realistic default; what
          unsynchronized kernels do).
        * ``"staggered"`` — node ``i`` of ``P`` gets phase
          ``i * period / P``: the adversarial worst case where some
          node is always in the way.
    seed:
        Root seed for phase draws and stochastic sources.
    """

    pattern: str | SourceFactory
    alignment: str = "random"
    seed: int = 0
    _valid_alignments: _t.ClassVar[tuple[str, ...]] = (
        "synchronized", "random", "staggered")
    # Cached per-plan RNG tree (not part of identity/equality).
    _tree: RandomTree = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.alignment not in self._valid_alignments:
            raise ConfigError(
                f"alignment must be one of {self._valid_alignments}, "
                f"got {self.alignment!r}")
        object.__setattr__(self, "_tree", RandomTree(self.seed))

    # -- materialization -----------------------------------------------------
    def source_for(self, node_id: int, n_nodes: int) -> NoiseSource:
        """The noise source node ``node_id`` (of ``n_nodes``) runs."""
        if not 0 <= node_id < n_nodes:
            raise ConfigError(f"node_id {node_id} out of range [0, {n_nodes})")
        seed = node_seed(self.seed, node_id)
        if callable(self.pattern):
            phase = self._phase_for(node_id, n_nodes, self._probe_period())
            return self.pattern(node_id, phase, seed)
        probe = parse_pattern(self.pattern, seed=seed)
        if isinstance(probe, NullNoise):
            return probe
        if isinstance(probe, (PeriodicNoise, BurstNoise)):
            phase = self._phase_for(node_id, n_nodes, probe.period)
            return parse_pattern(self.pattern, phase=phase, seed=seed)
        # Stochastic patterns: independence comes from the seed; the
        # alignment knob is meaningless and "synchronized" would be a
        # silent lie, so reject it.
        if self.alignment == "synchronized":
            raise ConfigError(
                "synchronized alignment requires a periodic pattern; "
                f"{self.pattern!r} is stochastic")
        return probe

    def sources(self, n_nodes: int) -> list[NoiseSource]:
        """Materialize all ``n_nodes`` per-node sources."""
        if n_nodes <= 0:
            raise ConfigError(f"n_nodes must be > 0, got {n_nodes}")
        return [self.source_for(i, n_nodes) for i in range(n_nodes)]

    def periodic_profile(self, n_nodes: int):
        """The plan's strictly-periodic form, when it has one.

        Returns ``(period, duration, phases)`` — shared period/duration
        in ns plus an int64 array of per-node phases, drawn with the
        exact streams :meth:`source_for` uses — when every node's
        source is a :class:`PeriodicNoise`; ``(0, 0, None)`` for a
        quiet (null) pattern; ``None`` for stochastic, burst, or
        custom-factory patterns.  This is the contract the bulk-rank
        fast path (:mod:`repro.sim.bulk`) vectorizes over.
        """
        if n_nodes <= 0:
            raise ConfigError(f"n_nodes must be > 0, got {n_nodes}")
        if callable(self.pattern):
            return None
        probe = parse_pattern(self.pattern, seed=node_seed(self.seed, 0))
        if isinstance(probe, NullNoise):
            return (0, 0, None)
        if not isinstance(probe, PeriodicNoise):
            return None
        import numpy as np
        phases = np.fromiter(
            (self._phase_for(i, n_nodes, probe.period)
             for i in range(n_nodes)),
            dtype=np.int64, count=n_nodes)
        return (probe.period, probe.duration, phases)

    # -- internals -------------------------------------------------------------
    def _phase_for(self, node_id: int, n_nodes: int, period: int) -> int:
        if period <= 0 or self.alignment == "synchronized":
            return 0
        if self.alignment == "staggered":
            return (node_id * period) // n_nodes
        rng = self._tree.generator(f"phase/{node_id}")
        return int(rng.integers(0, period))

    def _probe_period(self) -> int:
        return 0  # custom factories handle their own phase semantics

    def describe(self) -> dict[str, object]:
        """Reporting summary."""
        pattern = self.pattern if isinstance(self.pattern, str) else "<custom>"
        return {"pattern": pattern, "alignment": self.alignment, "seed": self.seed}
