"""Noise generation and injection framework.

Everything that steals CPU from the application is a
:class:`NoiseSource`: strictly periodic patterns
(:class:`PeriodicNoise`), stochastic arrivals (:class:`PoissonNoise`,
:class:`BernoulliTickNoise`), bursts (:class:`BurstNoise`), recorded
traces (:class:`TraceNoise`), and unions of all of those
(:class:`CompositeNoise`).  Each source exposes both an *event view*
(for trace-fidelity simulation and observer attribution) and an exact
*aggregate view* (for fast sampled-fidelity scaling runs); the two are
consistent by construction.

:func:`parse_pattern` turns compact strings like ``"2.5pct@100Hz"``
into sources, and :class:`InjectionPlan` distributes a pattern over the
machine with a chosen cross-node alignment policy.
"""

from .base import (
    NoiseEvent,
    NoiseSource,
    NullNoise,
    merge_busy_time,
    merge_interval_lists,
    merged_intervals,
)
from .burst import BurstNoise
from .composite import CompositeNoise
from .injection import InjectionPlan
from .oneoff import ONE_OFF_SOURCE, OneOffNoise
from .patterns import CANONICAL_SWEEP, canonical_patterns, parse_pattern, pattern_names
from .periodic import PeriodicNoise
from .playback import TraceNoise
from .random_noise import BernoulliTickNoise, ChunkedRandomNoise, PoissonNoise

__all__ = [
    "NoiseEvent", "NoiseSource", "NullNoise",
    "merge_busy_time", "merged_intervals", "merge_interval_lists",
    "PeriodicNoise", "PoissonNoise", "BernoulliTickNoise",
    "ChunkedRandomNoise", "BurstNoise", "TraceNoise", "CompositeNoise",
    "OneOffNoise", "ONE_OFF_SOURCE",
    "InjectionPlan",
    "parse_pattern", "pattern_names", "canonical_patterns", "CANONICAL_SWEEP",
]
