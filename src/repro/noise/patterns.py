"""Canonical injected-noise patterns.

The noise literature's standard experiment holds *net* CPU utilization
fixed while sweeping granularity: the same 2.5 % of every node's CPU
taken as rare long interruptions or frequent short ones.  This module
names those patterns and parses compact spec strings so experiment
configs stay declarative:

    >>> parse_pattern("2.5pct@100Hz").duration
    250000

Spec grammar (case-insensitive)::

    "<pct>pct@<freq>Hz"          periodic, e.g. "2.5pct@10Hz"
    "<pct>pct@<freq>Hzpoisson"   Poisson arrivals, same mean rate/size
    "<pct>pct@<freq>HzburstN"    each activation split into N slices
                                 separated by short gaps (interrupt
                                 trains), same net utilization
    "quiet"                      no injected noise

The classic sweep triple used throughout the benchmarks is
:data:`CANONICAL_SWEEP`: 2.5 % net at 10 Hz (2.5 ms events), 100 Hz
(250 µs), and 1000 Hz (25 µs).
"""

from __future__ import annotations

import re

from ..errors import ConfigError
from ..sim.timebase import SECOND
from .base import NoiseSource, NullNoise
from .burst import BurstNoise
from .periodic import PeriodicNoise
from .random_noise import PoissonNoise

__all__ = ["parse_pattern", "pattern_names", "CANONICAL_SWEEP",
           "canonical_patterns"]

#: The standard fixed-utilization granularity sweep (2.5 % net).
CANONICAL_SWEEP: tuple[str, ...] = (
    "2.5pct@10Hz", "2.5pct@100Hz", "2.5pct@1000Hz",
)

_SPEC_RE = re.compile(
    r"^(?P<pct>\d+(?:\.\d+)?)pct@(?P<freq>\d+(?:\.\d+)?)hz"
    r"(?P<kind>poisson|burst(?P<burst_n>\d+))?$",
    re.IGNORECASE)


def parse_pattern(spec: str, *, phase: int = 0, seed: int = 0) -> NoiseSource:
    """Build a noise source from a compact spec string.

    Parameters
    ----------
    spec:
        Pattern string (see module docstring), or ``"quiet"``.
    phase:
        Phase offset in ns for periodic patterns (per-node alignment).
    seed:
        RNG seed for stochastic patterns (ignored for periodic).
    """
    text = spec.strip()
    if text.lower() in ("quiet", "none", "off"):
        return NullNoise(name="quiet")
    m = _SPEC_RE.match(text)
    if not m:
        raise ConfigError(
            f"unrecognized noise pattern {spec!r}; expected e.g. "
            "'2.5pct@100Hz', '1pct@10HzPoisson', or 'quiet'")
    pct = float(m.group("pct"))
    freq = float(m.group("freq"))
    if not 0 < pct < 100:
        raise ConfigError(f"pattern percentage must be in (0, 100), got {pct}")
    if freq <= 0:
        raise ConfigError(f"pattern frequency must be > 0 Hz, got {freq}")
    utilization = pct / 100.0
    kind = (m.group("kind") or "").lower()
    if kind == "poisson":
        mean_duration = round(utilization * SECOND / freq)
        if mean_duration <= 0:
            raise ConfigError(f"pattern {spec!r} rounds to a 0 ns event")
        return PoissonNoise(freq, mean_duration, seed=seed,
                            name=text.lower())
    if kind.startswith("burst"):
        n = int(m.group("burst_n"))
        if n < 1:
            raise ConfigError(f"burst count must be >= 1 in {spec!r}")
        period = round(SECOND / freq)
        slice_ns = round(period * utilization / n)
        if slice_ns <= 0:
            raise ConfigError(f"pattern {spec!r} rounds to a 0 ns slice")
        gap = max(1, slice_ns // 10)
        return BurstNoise(period, slice_ns, n, gap, phase=phase,
                          name=text.lower())
    return PeriodicNoise.from_utilization(utilization, freq, phase=phase,
                                          name=text.lower())


def pattern_names(sweep: tuple[str, ...] = CANONICAL_SWEEP) -> list[str]:
    """The quiet baseline plus the given sweep, in reporting order."""
    return ["quiet", *sweep]


def canonical_patterns(*, phase: int = 0, seed: int = 0) -> dict[str, NoiseSource]:
    """Instantiate the quiet baseline and the canonical sweep."""
    return {name: parse_pattern(name, phase=phase, seed=seed)
            for name in pattern_names()}
