"""Noise-source abstraction.

A *noise source* models one stream of kernel activity that steals CPU
from the application: timer interrupts, scheduler ticks, kernel
daemons, softirq processing, or an injected synthetic pattern.

The contract has two views of the same stream:

* **event view** — :meth:`NoiseSource.events_in` enumerates individual
  ``NoiseEvent`` occurrences.  Used by trace-fidelity simulation and by
  the ktau observer, which records every occurrence.
* **aggregate view** — :meth:`NoiseSource.stolen_between` gives the
  total CPU time stolen in a window, and :meth:`NoiseSource.wall_time`
  solves the fixed point *T = W + stolen(t, t+T)* to produce the wall
  clock time a compute phase of ``W`` ns of work takes when started at
  ``t``.  Used by sampled-fidelity simulation for scaling studies.

Both views are **pure functions of the window** (randomized sources
freeze their randomness per time chunk), so the two fidelity modes are
guaranteed to agree — a property the test suite checks.
"""

from __future__ import annotations

import typing as _t
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigError, SimulationError

__all__ = ["NoiseEvent", "NoiseSource", "NullNoise", "merge_busy_time",
           "merged_intervals", "merge_interval_lists"]

#: Safety valve for the wall-time fixed point (utilization < 1 means
#: convergence in far fewer steps; hitting this indicates a model bug).
_MAX_FIXED_POINT_ITERS = 10_000


@dataclass(frozen=True, slots=True)
class NoiseEvent:
    """One occurrence of kernel activity.

    Attributes
    ----------
    start:
        Timestamp (ns) the activity begins stealing the CPU.
    duration:
        CPU time stolen, in ns.
    source:
        Name of the generating noise source (e.g. ``"timer-irq"``).
    """

    start: int
    duration: int
    source: str

    @property
    def end(self) -> int:
        """First instant after the activity (``start + duration``)."""
        return self.start + self.duration


def merged_intervals(events: _t.Iterable[NoiseEvent],
                     window_start: int, window_end: int) -> list[tuple[int, int]]:
    """Merge event busy intervals, clipped to ``[window_start, window_end)``.

    Overlapping events (e.g. a daemon firing during interrupt
    processing) must not double-count stolen time: a CPU can only be
    stolen once per instant.
    """
    clipped = []
    for ev in events:
        lo = max(ev.start, window_start)
        hi = min(ev.end, window_end)
        if hi > lo:
            clipped.append((lo, hi))
    if not clipped:
        return []
    clipped.sort()
    merged = [clipped[0]]
    for lo, hi in clipped[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


def merge_busy_time(events: _t.Iterable[NoiseEvent],
                    window_start: int, window_end: int) -> int:
    """Total CPU ns stolen in the window by possibly-overlapping events."""
    return sum(hi - lo for lo, hi in merged_intervals(events, window_start, window_end))


def merge_interval_lists(lists: _t.Sequence[list[tuple[int, int]]]
                         ) -> list[tuple[int, int]]:
    """Merge several already-sorted ``(lo, hi)`` interval lists."""
    flat: list[tuple[int, int]] = []
    for lst in lists:
        flat.extend(lst)
    if not flat:
        return []
    flat.sort()
    merged = [flat[0]]
    for lo, hi in flat[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


class NoiseSource(ABC):
    """One stream of CPU-stealing kernel activity.

    Subclasses must implement :meth:`events_in`,
    :meth:`max_event_duration`, and :attr:`utilization`; the aggregate
    view is derived (subclasses may override ``stolen_between`` with a
    closed form for speed — :class:`repro.noise.PeriodicNoise` does).
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigError("noise source needs a non-empty name")
        self.name = name

    # -- event view --------------------------------------------------------
    @abstractmethod
    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        """All events whose *start* lies in ``[start, end)``, in time order."""

    @abstractmethod
    def max_event_duration(self) -> int:
        """Upper bound on any single event's duration (for window widening)."""

    # -- aggregate view ------------------------------------------------------
    @property
    @abstractmethod
    def utilization(self) -> float:
        """Long-run fraction of CPU stolen (must be < 1)."""

    @property
    def event_rate_hz(self) -> float:
        """Long-run events per second (observer-overhead sizing).

        Default derives from utilization and the maximum event
        duration (a lower bound); concrete sources override with the
        exact rate.
        """
        max_dur = self.max_event_duration()
        if max_dur <= 0:
            return 0.0
        return self.utilization * 1e9 / max_dur

    def busy_intervals(self, start: int, end: int) -> list[tuple[int, int]]:
        """Merged CPU-busy intervals clipped to ``[start, end)``.

        Widens the event query only by *this* source's maximum event
        duration, so composites never force short-event sources to
        enumerate a long-event source's look-back window.
        """
        if end <= start:
            return []
        widened = start - self.max_event_duration()
        return merged_intervals(self.events_in(widened, end), start, end)

    def stolen_between(self, start: int, end: int) -> int:
        """Total CPU ns stolen in ``[start, end)``.

        Includes the tail of events that started before ``start`` but
        are still running at ``start``.
        """
        return sum(hi - lo for lo, hi in self.busy_intervals(start, end))

    def wall_time(self, start: int, work: int) -> int:
        """Wall-clock ns for ``work`` ns of CPU work begun at ``start``.

        Solves the smallest ``T >= work`` with
        ``T - stolen_between(start, start + T) == work`` by monotone
        fixed-point iteration (exact with integer time; converges
        because utilization < 1).
        """
        if work < 0:
            raise ValueError(f"work must be >= 0 ns, got {work}")
        if work == 0:
            # Zero work needs no CPU, so nothing can be stolen from it.
            return 0
        # Fast path: direct iteration converges in a couple of steps when
        # the window contains only short events.
        t = work
        for _ in range(8):
            stolen = self.stolen_between(start, start + t)
            new_t = work + stolen
            if new_t == t:
                return t
            if new_t < t:  # pragma: no cover - monotonicity guard
                raise SimulationError(f"noise fixed point regressed: {t} -> {new_t}")
            t = new_t
        # Slow path: the window start sits inside (or keeps hitting) long
        # events, so direct iteration advances by ~`work` per step.  The
        # idle time  idle(T) = T - stolen(start, start+T)  is monotone and
        # advances by at most 1 ns per ns, so the exact fixed point is the
        # minimal T with idle(T) == work: find it by doubling + bisection.
        hi = t
        for _ in range(_MAX_FIXED_POINT_ITERS):
            if hi - self.stolen_between(start, start + hi) >= work:
                break
            hi *= 2
        else:  # pragma: no cover - would need utilization >= 1
            raise SimulationError(
                f"noise wall_time did not converge (source={self.name!r}, "
                f"utilization={self.utilization:.3f})")
        lo = work  # idle(work) <= work with equality only if already done
        while lo < hi:
            mid = (lo + hi) // 2
            if mid - self.stolen_between(start, start + mid) >= work:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- introspection -------------------------------------------------------
    def describe(self) -> dict[str, object]:
        """Human-readable parameter summary (used in reports)."""
        return {"name": self.name, "type": type(self).__name__,
                "utilization": self.utilization}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} util={self.utilization:.4%}>"


class NullNoise(NoiseSource):
    """A silent source: the quiet, noiseless kernel baseline."""

    def __init__(self, name: str = "null") -> None:
        super().__init__(name)

    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        return []

    def max_event_duration(self) -> int:
        return 0

    @property
    def utilization(self) -> float:
        return 0.0

    @property
    def event_rate_hz(self) -> float:
        return 0.0

    def stolen_between(self, start: int, end: int) -> int:
        return 0

    def wall_time(self, start: int, work: int) -> int:
        if work < 0:
            raise ValueError(f"work must be >= 0 ns, got {work}")
        return work
