"""Strictly periodic noise — the canonical injected pattern.

The OS-noise literature parameterizes injected noise as a (frequency,
duration) pair at fixed *net utilization*: e.g. 2.5 % of the CPU taken
as 2.5 ms every 100 ms (10 Hz), 250 µs every 10 ms (100 Hz), or 25 µs
every 1 ms (1000 Hz).  :class:`PeriodicNoise` models exactly that, with
a per-node ``phase`` so nodes can be aligned (co-scheduled noise) or
deliberately misaligned.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.timebase import SECOND
from .base import NoiseEvent, NoiseSource

__all__ = ["PeriodicNoise"]


class PeriodicNoise(NoiseSource):
    """Events of fixed ``duration`` every ``period`` ns, offset by ``phase``.

    Parameters
    ----------
    period:
        Interval between event starts, ns.
    duration:
        CPU stolen per event, ns.  Must be < ``period``.
    phase:
        Timestamp of event 0 (events also occur at every
        ``phase + k*period`` for integer ``k``, including negative
        ``k`` — the source has always been running).
    name:
        Source label for traces and reports.
    """

    def __init__(self, period: int, duration: int, *, phase: int = 0,
                 name: str = "periodic") -> None:
        super().__init__(name)
        if period <= 0:
            raise ConfigError(f"period must be > 0 ns, got {period}")
        if duration <= 0:
            raise ConfigError(f"duration must be > 0 ns, got {duration}")
        if duration >= period:
            raise ConfigError(
                f"duration ({duration} ns) must be < period ({period} ns); "
                "utilization would reach 100%")
        self.period = int(period)
        self.duration = int(duration)
        self.phase = int(phase)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_frequency(cls, hz: float, duration: int, *, phase: int = 0,
                       name: str = "periodic") -> "PeriodicNoise":
        """Build from a frequency in Hz instead of a period in ns."""
        if hz <= 0:
            raise ConfigError(f"frequency must be > 0 Hz, got {hz}")
        return cls(round(SECOND / hz), duration, phase=phase, name=name)

    @classmethod
    def from_utilization(cls, utilization: float, hz: float, *, phase: int = 0,
                         name: str = "periodic") -> "PeriodicNoise":
        """Build from a net utilization fraction and frequency.

        ``utilization=0.025, hz=100`` gives 250 µs every 10 ms.
        """
        if not 0 < utilization < 1:
            raise ConfigError(f"utilization must be in (0, 1), got {utilization}")
        period = round(SECOND / hz)
        duration = round(period * utilization)
        if duration == 0:
            raise ConfigError(
                f"utilization {utilization} at {hz} Hz rounds to a 0 ns event")
        return cls(period, duration, phase=phase, name=name)

    # -- frequency/utilization view ------------------------------------------
    @property
    def frequency_hz(self) -> float:
        """Event rate in Hz."""
        return SECOND / self.period

    @property
    def utilization(self) -> float:
        return self.duration / self.period

    @property
    def event_rate_hz(self) -> float:
        return self.frequency_hz

    # -- event view ----------------------------------------------------------
    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        if end <= start:
            return []
        first_k = -((self.phase - start) // self.period)  # integer ceil
        out = []
        t = self.phase + first_k * self.period
        while t < end:
            out.append(NoiseEvent(t, self.duration, self.name))
            t += self.period
        return out

    def max_event_duration(self) -> int:
        return self.duration

    # -- closed-form aggregate view --------------------------------------------
    def stolen_between(self, start: int, end: int) -> int:
        """Exact stolen time in ``[start, end)`` in O(1).

        Counts full events inside the window plus the truncated head
        (an event straddling ``start``) and tail (one straddling
        ``end``).  Valid because ``duration < period`` means events
        never overlap each other.
        """
        if end <= start:
            return 0
        period, duration, phase = self.period, self.duration, self.phase
        # Index of first event starting at or after `start`, and of the
        # last event starting strictly before `end`.
        k_lo = -((phase - start) // period)  # ceil((start-phase)/period)
        k_hi = -((phase - end) // period) - 1  # last start strictly < end
        total = 0
        if k_hi >= k_lo:
            n = k_hi - k_lo + 1
            # All but possibly the last event end inside the window.
            total += (n - 1) * duration
            last_start = phase + k_hi * period
            total += min(duration, end - last_start)
        # Head: the event just before `start` may still be running.
        prev_start = phase + (k_lo - 1) * period
        prev_end = prev_start + duration
        if prev_end > start:
            total += min(prev_end, end) - start
        return total

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(period_ns=self.period, duration_ns=self.duration,
                 frequency_hz=self.frequency_hz, phase_ns=self.phase)
        return d
