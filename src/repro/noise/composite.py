"""Composition of noise sources.

A node's kernel runs *many* activities at once — timer interrupts plus
daemons plus softirqs.  :class:`CompositeNoise` merges any number of
sources into one, taking care that simultaneous/overlapping events do
not double-count stolen CPU (the event view keeps every component event
for attribution; the aggregate view merges busy intervals).
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError
from .base import NoiseEvent, NoiseSource, merge_interval_lists

__all__ = ["CompositeNoise"]


class CompositeNoise(NoiseSource):
    """The union of several noise sources on one CPU."""

    def __init__(self, sources: _t.Sequence[NoiseSource],
                 *, name: str = "composite") -> None:
        super().__init__(name)
        flat: list[NoiseSource] = []
        for src in sources:
            # Flatten nested composites so describe()/attribution see leaves.
            if isinstance(src, CompositeNoise):
                flat.extend(src.sources)
            else:
                flat.append(src)
        self.sources: tuple[NoiseSource, ...] = tuple(flat)
        seen: set[str] = set()
        for src in self.sources:
            if src.name in seen:
                raise ConfigError(
                    f"duplicate noise source name {src.name!r} in composite; "
                    "attribution needs unique names")
            seen.add(src.name)
        total = sum(src.utilization for src in self.sources)
        if total >= 1.0:
            raise ConfigError(
                f"composite noise utilization {total:.2f} >= 1; the CPU "
                "would never run the application")

    @property
    def utilization(self) -> float:
        # Upper bound: overlapping events make the true busy fraction
        # slightly smaller, but components are typically sparse.
        return sum(src.utilization for src in self.sources)

    @property
    def event_rate_hz(self) -> float:
        return sum(src.event_rate_hz for src in self.sources)

    def max_event_duration(self) -> int:
        return max((src.max_event_duration() for src in self.sources), default=0)

    def events_in(self, start: int, end: int) -> list[NoiseEvent]:
        out: list[NoiseEvent] = []
        for src in self.sources:
            out.extend(src.events_in(start, end))
        out.sort(key=lambda ev: (ev.start, ev.duration, ev.source))
        return out

    def busy_intervals(self, start: int, end: int) -> list[tuple[int, int]]:
        # Each source clips with its own look-back window, so a rare
        # long-event daemon doesn't force the 1 kHz tick to enumerate a
        # 20 ms history on every query.
        return merge_interval_lists(
            [src.busy_intervals(start, end) for src in self.sources])

    def stolen_between(self, start: int, end: int) -> int:
        return sum(hi - lo for lo, hi in self.busy_intervals(start, end))

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d["sources"] = [src.describe() for src in self.sources]
        return d
