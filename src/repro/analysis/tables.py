"""Plain-text table rendering for experiment reports.

Every benchmark prints its figure/table as an aligned ASCII table (the
terminal equivalent of the paper's plots) and can dump CSV for external
plotting.  No plotting dependency is required or used.
"""

from __future__ import annotations

import io
import typing as _t

__all__ = ["format_table", "format_csv", "format_ns", "format_pct"]

Cell = _t.Union[str, int, float, None]


def format_ns(ns: float) -> str:
    """Human-scaled time: 1234 -> '1.23 us'."""
    if ns != ns:  # NaN
        return "-"
    a = abs(ns)
    if a >= 1e9:
        return f"{ns / 1e9:.3g} s"
    if a >= 1e6:
        return f"{ns / 1e6:.3g} ms"
    if a >= 1e3:
        return f"{ns / 1e3:.3g} us"
    return f"{ns:.0f} ns"


def format_pct(fraction: float, digits: int = 1) -> str:
    """0.025 -> '2.5%'; NaN -> '-'."""
    if fraction != fraction:
        return "-"
    return f"{100 * fraction:.{digits}f}%"


def _render_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:
            return "-"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: _t.Sequence[str],
                 rows: _t.Sequence[_t.Sequence[Cell]],
                 *, title: str | None = None) -> str:
    """Render an aligned ASCII table (first column left, rest right)."""
    if not headers:
        raise ValueError("table needs headers")
    grid = [[_render_cell(c) for c in row] for row in rows]
    for row in grid:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers")
    widths = [len(h) for h in headers]
    for row in grid:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: _t.Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(fmt_row(list(headers)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in grid:
        out.write(fmt_row(row) + "\n")
    return out.getvalue()


def format_csv(headers: _t.Sequence[str],
               rows: _t.Sequence[_t.Sequence[Cell]]) -> str:
    """Minimal CSV (no quoting needs beyond commas in our data)."""
    def esc(cell: Cell) -> str:
        text = _render_cell(cell)
        return f'"{text}"' if ("," in text or '"' in text) else text

    lines = [",".join(esc(h) for h in headers)]
    for row in rows:
        lines.append(",".join(esc(c) for c in row))
    return "\n".join(lines) + "\n"
