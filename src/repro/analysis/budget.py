"""Noise budgeting: invert the absorption model.

Operators ask the forward question's inverse: *given* a slowdown budget
(say "kernel work may cost at most 5 %"), how much activity may the
kernel schedule?  These helpers bisect the
:class:`~repro.analysis.absorption.BSPModel` over event duration or
frequency to find the boundary of the acceptable region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .absorption import BSPModel

__all__ = ["NoiseBudget", "max_event_duration", "max_utilization_at"]


@dataclass(frozen=True, slots=True)
class NoiseBudget:
    """Result of a budget inversion."""

    p_nodes: int
    period_ns: int
    max_duration_ns: int
    predicted_slowdown: float
    target_slowdown: float

    @property
    def max_utilization(self) -> float:
        return self.max_duration_ns / self.period_ns


def max_event_duration(model: BSPModel, p_nodes: int, period_ns: int,
                       target_slowdown: float, *,
                       resolution_ns: int = 100) -> NoiseBudget:
    """Largest per-event duration keeping predicted slowdown <= target.

    Bisects over duration in ``[0, period)``; the model's slowdown is
    monotone in duration at fixed period.

    Parameters
    ----------
    model:
        The workload model (grain + collective round cost).
    p_nodes:
        Machine size the budget must hold at.
    period_ns:
        The activity's period (e.g. a 1 Hz daemon -> 1e9).
    target_slowdown:
        Acceptable fractional slowdown (0.05 = 5 %).
    resolution_ns:
        Bisection stopping width.
    """
    if target_slowdown <= 0:
        raise ConfigError("target_slowdown must be > 0")
    if period_ns <= 1:
        raise ConfigError("period_ns must be > 1")
    if resolution_ns <= 0:
        raise ConfigError("resolution_ns must be > 0")

    def slowdown_at(duration: int) -> float:
        if duration <= 0:
            return 0.0
        return model.predict(p_nodes, period_ns, duration).slowdown_fraction

    lo, hi = 0, period_ns - 1
    if slowdown_at(hi) <= target_slowdown:
        best = hi
    else:
        while hi - lo > resolution_ns:
            mid = (lo + hi) // 2
            if slowdown_at(mid) <= target_slowdown:
                lo = mid
            else:
                hi = mid
        best = lo
    return NoiseBudget(p_nodes=p_nodes, period_ns=period_ns,
                       max_duration_ns=best,
                       predicted_slowdown=slowdown_at(best),
                       target_slowdown=target_slowdown)


def max_utilization_at(model: BSPModel, p_nodes: int, period_ns: int,
                       target_slowdown: float) -> float:
    """Shortcut: the tolerable utilization of an activity at that period.

    The headline budgeting insight falls out directly: at a fixed
    slowdown target, a 1000 Hz activity may consume far more *total*
    CPU than a 1 Hz one, because its events are individually tiny.
    """
    return max_event_duration(model, p_nodes, period_ns,
                              target_slowdown).max_utilization
