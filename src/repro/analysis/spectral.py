"""Spectral analysis of noise-measurement series.

The FTQ benchmark's headline analysis: take the per-quantum work (or
per-iteration duration) series, compute its periodogram, and read the
noise's frequency signature off the peaks — a 10 Hz daemon shows up as
a 10 Hz spectral line regardless of how small its duty cycle is.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np
from scipy import signal as _signal

__all__ = ["Spectrum", "SpectralPeak", "periodogram", "find_peaks",
           "dominant_frequencies", "lomb_scargle"]


@dataclass(frozen=True, slots=True)
class Spectrum:
    """One-sided power spectrum of a uniformly sampled series."""

    frequencies_hz: np.ndarray
    power: np.ndarray
    sample_rate_hz: float

    def power_at(self, freq_hz: float) -> float:
        """Power of the bin nearest ``freq_hz``."""
        idx = int(np.argmin(np.abs(self.frequencies_hz - freq_hz)))
        return float(self.power[idx])


@dataclass(frozen=True, slots=True)
class SpectralPeak:
    """A local maximum of the spectrum."""

    frequency_hz: float
    power: float
    prominence: float


def periodogram(series: _t.Sequence[float] | np.ndarray,
                sample_interval_ns: int) -> Spectrum:
    """Detrended one-sided periodogram of a uniformly sampled series.

    Parameters
    ----------
    series:
        Samples (e.g. FTQ work counts per quantum), uniformly spaced.
    sample_interval_ns:
        Spacing between samples, ns (the FTQ quantum).
    """
    arr = np.asarray(series, dtype=float)
    if arr.size < 8:
        raise ValueError(f"need at least 8 samples for a spectrum, got {arr.size}")
    if sample_interval_ns <= 0:
        raise ValueError("sample_interval_ns must be > 0")
    fs = 1e9 / sample_interval_ns
    freqs, power = _signal.periodogram(arr, fs=fs, detrend="constant",
                                       scaling="spectrum")
    # Drop the DC bin: detrended anyway, and it swamps peak pickers.
    return Spectrum(frequencies_hz=freqs[1:], power=power[1:],
                    sample_rate_hz=fs)


def find_peaks(spectrum: Spectrum, *, top: int = 8,
               min_prominence_ratio: float = 0.05) -> list[SpectralPeak]:
    """The most prominent spectral peaks, strongest first.

    ``min_prominence_ratio`` filters peaks whose prominence is below
    that fraction of the maximum power (noise-floor wiggle).
    """
    if top <= 0:
        raise ValueError("top must be > 0")
    power = spectrum.power
    if power.size == 0 or float(power.max()) == 0.0:
        return []
    idx, props = _signal.find_peaks(
        power, prominence=min_prominence_ratio * float(power.max()))
    peaks = [SpectralPeak(float(spectrum.frequencies_hz[i]), float(power[i]),
                          float(p))
             for i, p in zip(idx, props["prominences"])]
    peaks.sort(key=lambda p: p.power, reverse=True)
    return peaks[:top]


def lomb_scargle(times_ns: _t.Sequence[int] | np.ndarray,
                 values: _t.Sequence[float] | np.ndarray,
                 freqs_hz: _t.Sequence[float] | np.ndarray | None = None
                 ) -> Spectrum:
    """Lomb–Scargle spectrum for *non-uniformly* sampled series.

    The FWQ benchmark's samples are irregularly spaced (each struck
    sample stretches), so a plain periodogram is formally invalid for
    them; Lomb–Scargle handles arbitrary sample instants.

    Parameters
    ----------
    times_ns:
        Sample instants, ns (need not be uniform).
    values:
        Sample values (e.g. per-sample detour).
    freqs_hz:
        Analysis frequencies; default is a linear grid from ~1 cycle
        per record up to the mean-Nyquist rate.
    """
    t = np.asarray(times_ns, dtype=float) / 1e9
    y = np.asarray(values, dtype=float)
    if t.size != y.size or t.size < 8:
        raise ValueError("need >= 8 aligned samples")
    span = float(t.max() - t.min())
    if span <= 0:
        raise ValueError("sample instants must span a nonzero window")
    y = y - y.mean()
    if freqs_hz is None:
        mean_dt = span / (t.size - 1)
        nyquist = 0.5 / mean_dt
        freqs_hz = np.linspace(1.0 / span, nyquist, min(2000, 4 * t.size))
    freqs_hz = np.asarray(freqs_hz, dtype=float)
    if (freqs_hz <= 0).any():
        raise ValueError("analysis frequencies must be > 0")
    power = _signal.lombscargle(t, y, 2 * np.pi * freqs_hz, normalize=True)
    sample_rate = (t.size - 1) / span
    return Spectrum(frequencies_hz=freqs_hz, power=power,
                    sample_rate_hz=sample_rate)


def dominant_frequencies(series: _t.Sequence[float] | np.ndarray,
                         sample_interval_ns: int, *, top: int = 4) -> list[float]:
    """Convenience: the ``top`` peak frequencies of a series' spectrum."""
    spec = periodogram(series, sample_interval_ns)
    return [p.frequency_hz for p in find_peaks(spec, top=top)]
