"""Analysis toolkit: statistics, spectra, slowdown metrics, the
semi-analytic absorption/amplification model, attribution scoring, and
report-table rendering."""

from .absorption import (
    BSPModel,
    BSPPrediction,
    expected_max_wall,
    expected_max_wall_sampled,
    expected_mean_wall,
    sampled_wall_times,
    wall_time_by_phase,
)
from .budget import NoiseBudget, max_event_duration, max_utilization_at
from .correlation import AttributionScore, pearson, score_attribution
from .plot import ascii_bars, ascii_series, sparkline
from .slowdown import SlowdownResult, amplification_factor, slowdown
from .spectral import (
    SpectralPeak,
    Spectrum,
    dominant_frequencies,
    find_peaks,
    lomb_scargle,
    periodogram,
)
from .stats import SeriesStats, histogram, summarize_series
from .tables import format_csv, format_ns, format_pct, format_table

__all__ = [
    "SeriesStats", "summarize_series", "histogram",
    "Spectrum", "SpectralPeak", "periodogram", "find_peaks",
    "dominant_frequencies", "lomb_scargle",
    "SlowdownResult", "slowdown", "amplification_factor",
    "BSPModel", "BSPPrediction", "wall_time_by_phase",
    "expected_max_wall", "expected_mean_wall",
    "sampled_wall_times", "expected_max_wall_sampled",
    "AttributionScore", "score_attribution", "pearson",
    "format_table", "format_csv", "format_ns", "format_pct",
    "ascii_series", "ascii_bars", "sparkline",
    "NoiseBudget", "max_event_duration", "max_utilization_at",
]
