"""ASCII plotting: terminal renderings of the paper's figures.

No plotting dependency is available (or wanted) in the benchmark
environment, so figures render as text: a block-character line chart
for series (FTQ traces, scaling curves) and a horizontal bar chart for
categorical comparisons (slowdown per pattern).  Good enough to *see*
the shape the checks assert.
"""

from __future__ import annotations

import typing as _t

import numpy as np

__all__ = ["ascii_series", "ascii_bars", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: _t.Sequence[float]) -> str:
    """One-line block-character rendering of a series."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot sparkline an empty series")
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _BLOCKS[1] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def ascii_series(values: _t.Sequence[float], *, width: int = 72,
                 height: int = 12, title: str | None = None,
                 y_label: str = "") -> str:
    """Multi-row line chart of one series (downsampled to ``width``)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot plot an empty series")
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be > 0")
    if arr.size > width:
        # Downsample by taking per-bucket means.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:])
                        if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo or 1.0
    rows = []
    levels = np.clip(((arr - lo) / span * (height - 1)).round().astype(int),
                     0, height - 1)
    for row in range(height - 1, -1, -1):
        line = "".join("█" if lv >= row else " " for lv in levels)
        label = f"{lo + span * row / (height - 1):>12.4g} |"
        rows.append(label + line)
    out = []
    if title:
        out.append(title)
    if y_label:
        out.append(f"  ({y_label})")
    out.extend(rows)
    out.append(" " * 13 + "-" * len(levels))
    return "\n".join(out) + "\n"


def ascii_bars(labels: _t.Sequence[str], values: _t.Sequence[float], *,
               width: int = 50, title: str | None = None,
               fmt: str = "{:.2f}") -> str:
    """Horizontal bar chart with value annotations."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("cannot plot an empty bar chart")
    vmax = max(max(values), 0)
    label_w = max(len(str(lab)) for lab in labels)
    lines = []
    if title:
        lines.append(title)
    for lab, val in zip(labels, values):
        bar = "█" * (round(width * val / vmax) if vmax > 0 else 0)
        lines.append(f"{str(lab):>{label_w}} | {bar} {fmt.format(val)}")
    return "\n".join(lines) + "\n"
