"""Slowdown and noise-amplification metrics.

The central quantities of the evaluation:

* **slowdown** — ``T_noisy / T_quiet − 1`` for the same workload; the
  figure-of-merit every scaling plot reports (as a percentage).
* **amplification factor** — measured slowdown divided by the injected
  net noise utilization.  A factor of 1 means the machine merely lost
  the stolen cycles ("absorbed"); factors ≫ 1 mean collective dependency
  chains multiplied them ("amplified"); < 1 means noise landed in slack.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SlowdownResult", "slowdown", "amplification_factor"]


@dataclass(frozen=True, slots=True)
class SlowdownResult:
    """Comparison of a noisy run against its quiet baseline."""

    quiet_ns: int
    noisy_ns: int
    injected_utilization: float

    @property
    def slowdown_fraction(self) -> float:
        """``T_noisy/T_quiet − 1`` (may be negative only by model noise)."""
        return self.noisy_ns / self.quiet_ns - 1.0

    @property
    def slowdown_percent(self) -> float:
        return 100.0 * self.slowdown_fraction

    @property
    def amplification(self) -> float:
        """Slowdown per unit of injected utilization.

        ``float('nan')`` when nothing was injected (no meaningful ratio).
        """
        if self.injected_utilization <= 0:
            return float("nan")
        return self.slowdown_fraction / self.injected_utilization

    @property
    def verdict(self) -> str:
        """Coarse classification used in the absorption table."""
        amp = self.amplification
        if amp != amp:  # NaN
            return "baseline"
        if amp < 0.5:
            return "absorbed"
        if amp <= 1.5:
            return "transferred"
        return "amplified"

    def as_dict(self) -> dict[str, object]:
        return {"quiet_ns": self.quiet_ns, "noisy_ns": self.noisy_ns,
                "injected_pct": 100 * self.injected_utilization,
                "slowdown_pct": self.slowdown_percent,
                "amplification": self.amplification,
                "verdict": self.verdict}


def slowdown(quiet_ns: int, noisy_ns: int,
             injected_utilization: float = 0.0) -> SlowdownResult:
    """Build a :class:`SlowdownResult`, validating inputs."""
    if quiet_ns <= 0:
        raise ValueError(f"quiet_ns must be > 0, got {quiet_ns}")
    if noisy_ns < 0:
        raise ValueError(f"noisy_ns must be >= 0, got {noisy_ns}")
    if not 0 <= injected_utilization < 1:
        raise ValueError("injected_utilization must be in [0, 1)")
    return SlowdownResult(quiet_ns, noisy_ns, injected_utilization)


def amplification_factor(quiet_ns: int, noisy_ns: int,
                         injected_utilization: float) -> float:
    """Shortcut for ``slowdown(...).amplification``."""
    return slowdown(quiet_ns, noisy_ns, injected_utilization).amplification
