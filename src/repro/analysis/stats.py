"""Summary statistics for timing series.

Thin, explicit wrappers over NumPy so experiment code reads like the
tables it produces (mean/median/p99/max/CoV), plus histogramming used
by the FTQ/FWQ reports.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

__all__ = ["SeriesStats", "summarize_series", "histogram"]


@dataclass(frozen=True, slots=True)
class SeriesStats:
    """Standard summary of one timing series (all times in ns)."""

    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p95: float
    p99: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std/mean); 0 for a flat series."""
        return self.std / self.mean if self.mean else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"n": self.n, "mean": self.mean, "median": self.median,
                "std": self.std, "min": self.minimum, "max": self.maximum,
                "p95": self.p95, "p99": self.p99, "cov": self.cov}


def summarize_series(values: _t.Sequence[float] | np.ndarray) -> SeriesStats:
    """Summarize a non-empty series."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    return SeriesStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
    )


def histogram(values: _t.Sequence[float] | np.ndarray, bins: int = 50,
              range_: tuple[float, float] | None = None
              ) -> tuple[np.ndarray, np.ndarray]:
    """Counts and bin edges (NumPy convention)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty series")
    return np.histogram(arr, bins=bins, range=range_)
