"""Semi-analytic model of noise absorption and amplification.

For *periodic* noise with uniformly random per-node phase the per-node
inflation of a compute window is an exact, closed-form function of the
phase.  Sweeping a dense phase grid therefore gives the exact per-node
inflation distribution; order statistics over it give the expected
**maximum** across P nodes — which is what a synchronizing collective
turns into iteration time.

This model explains the canonical result without any simulation:

* fine-grained noise (window ≫ period): every node loses the same
  ``u`` fraction → the max equals the mean → slowdown ≈ u (absorbed);
* coarse-grained noise (window ≲ period): each node is hit rarely, but
  with P nodes *someone* is almost always hit → the max approaches the
  full event duration → slowdown ≈ D/T_iter ≫ u (amplified).

It also extrapolates to node counts far beyond what the discrete-event
simulator can run in Python (E10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["wall_time_by_phase", "expected_max_wall", "expected_mean_wall",
           "BSPModel", "BSPPrediction"]


def wall_time_by_phase(work: int, period: int, duration: int,
                       n_phases: int = 4096) -> np.ndarray:
    """Wall time of a ``work``-ns compute phase for each noise phase.

    Exact fixed-point inflation (vectorized over a uniform phase grid):
    ``T = W + stolen(phase, T)`` with the closed-form periodic
    stolen-time formula.  Returns an ``n_phases`` array of wall times.
    """
    if work < 0:
        raise ConfigError("work must be >= 0")
    if not 0 < duration < period:
        raise ConfigError("need 0 < duration < period")
    if work == 0:
        return np.zeros(n_phases)
    phases = np.linspace(0, period, n_phases, endpoint=False)
    # Compute stolen time in [phase, phase + T) for the canonical source
    # with events at k*period (equivalent to a source with random phase
    # observed from a fixed window start).
    t = np.full(n_phases, float(work))
    for _ in range(64):
        start = phases
        end = phases + t
        k_lo = np.ceil(start / period)
        k_hi = np.ceil(end / period) - 1
        n = np.maximum(0, k_hi - k_lo + 1)
        last_start = k_hi * period
        full = np.where(n > 0, (n - 1) * duration
                        + np.minimum(duration, end - last_start), 0.0)
        prev_end = (k_lo - 1) * period + duration
        head = np.clip(np.minimum(prev_end, end) - start, 0.0, duration)
        stolen = full + np.where(prev_end > start, head, 0.0)
        new_t = work + stolen
        if np.allclose(new_t, t, rtol=0, atol=0.5):
            t = new_t
            break
        t = new_t
    return t


def _expected_order_max(samples: np.ndarray, p: int) -> float:
    """E[max of ``p`` i.i.d. draws] from the empirical distribution."""
    if p <= 0:
        raise ConfigError("p must be >= 1")
    v = np.sort(samples)
    n = v.size
    k = np.arange(1, n + 1, dtype=float)
    weights = (k / n) ** p - ((k - 1) / n) ** p
    return float(np.dot(v, weights))


def expected_max_wall(p_nodes: int, work: int, period: int, duration: int,
                      n_phases: int = 4096) -> float:
    """Expected max-over-nodes wall time of a ``work``-ns phase."""
    return _expected_order_max(
        wall_time_by_phase(work, period, duration, n_phases), p_nodes)


def expected_mean_wall(work: int, period: int, duration: int,
                       n_phases: int = 4096) -> float:
    """Expected per-node wall time (the absorbed-noise floor)."""
    return float(wall_time_by_phase(work, period, duration, n_phases).mean())


def sampled_wall_times(source, work: int, *, n_windows: int = 2048,
                       horizon_ns: int | None = None) -> np.ndarray:
    """Empirical wall-time distribution for *any* noise source.

    Evaluates the exact ``wall_time`` fixed point at ``n_windows``
    evenly spaced start instants over ``horizon_ns`` (default: enough
    to cover many of the source's longest events).  This generalizes
    :func:`wall_time_by_phase` — which is closed-form but periodic-only
    — to Poisson, burst, composite, and trace-replay sources.
    """
    if work < 0:
        raise ConfigError("work must be >= 0")
    if n_windows <= 0:
        raise ConfigError("n_windows must be > 0")
    if horizon_ns is None:
        max_dur = max(source.max_event_duration(), 1)
        horizon_ns = max(1000 * max_dur, 100 * work, 1_000_000)
    starts = np.linspace(0, horizon_ns, n_windows, endpoint=False)
    return np.array([source.wall_time(int(s), work) for s in starts],
                    dtype=float)


def expected_max_wall_sampled(source, p_nodes: int, work: int, *,
                              n_windows: int = 2048,
                              horizon_ns: int | None = None) -> float:
    """E[max over ``p_nodes``] of the sampled wall-time distribution."""
    samples = sampled_wall_times(source, work, n_windows=n_windows,
                                 horizon_ns=horizon_ns)
    return _expected_order_max(samples, p_nodes)


@dataclass(frozen=True, slots=True)
class BSPPrediction:
    """Model output for one (P, noise) point."""

    p_nodes: int
    quiet_iteration_ns: float
    noisy_iteration_ns: float
    injected_utilization: float

    @property
    def slowdown_fraction(self) -> float:
        return self.noisy_iteration_ns / self.quiet_iteration_ns - 1.0

    @property
    def amplification(self) -> float:
        if self.injected_utilization <= 0:
            return float("nan")
        return self.slowdown_fraction / self.injected_utilization


@dataclass(frozen=True, slots=True)
class BSPModel:
    """Analytic model of a barrier-synchronized BSP iteration.

    One iteration = per-node compute of ``work_ns`` followed by a
    synchronizing collective of ``collective_depth(P)`` rounds, each
    costing ``round_cost_ns`` on the critical path.  Noise enters two
    ways:

    * the collective cannot complete before the **last** rank arrives,
      so the compute part contributes the order-statistic *max* of the
      per-node inflation — the amplification term;
    * noise striking *during* the (short) collective is charged at the
      mean (absorbed) rate, ``/(1 − u)``.  Strikes on the specific
      critical path can make this an underestimate for very coarse
      noise, which is exactly the gap experiment E10 quantifies against
      the discrete-event simulation.

    Parameters
    ----------
    work_ns:
        Per-iteration compute grain.
    round_cost_ns:
        Quiet critical-path cost of one collective round (≈ 2o + L for
        small messages).
    n_phases:
        Phase-grid resolution for the inflation distribution.
    """

    work_ns: int
    round_cost_ns: int
    n_phases: int = 4096

    def collective_depth(self, p_nodes: int) -> int:
        """Rounds of a log-depth collective (dissemination/recdoubling)."""
        if p_nodes <= 1:
            return 0
        return int(np.ceil(np.log2(p_nodes)))

    def quiet_iteration(self, p_nodes: int) -> float:
        """Iteration time with no noise anywhere."""
        return self.work_ns + self.collective_depth(p_nodes) * self.round_cost_ns

    def predict(self, p_nodes: int, period: int, duration: int) -> BSPPrediction:
        """Iteration time under periodic noise (random per-node phase)."""
        if p_nodes <= 0:
            raise ConfigError("p_nodes must be >= 1")
        depth = self.collective_depth(p_nodes)
        compute = expected_max_wall(p_nodes, self.work_ns, period, duration,
                                    self.n_phases)
        utilization = duration / period
        coll = depth * self.round_cost_ns / (1.0 - utilization)
        return BSPPrediction(
            p_nodes=p_nodes,
            quiet_iteration_ns=self.quiet_iteration(p_nodes),
            noisy_iteration_ns=compute + coll,
            injected_utilization=duration / period)

    def sweep(self, p_values: "list[int]", period: int,
              duration: int) -> "list[BSPPrediction]":
        """Predictions across machine sizes (cheap — pure NumPy)."""
        return [self.predict(p, period, duration) for p in p_values]
