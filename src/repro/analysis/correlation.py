"""Attribution validation: observer-charged time vs ground truth.

Because the simulator knows exactly what noise was configured, the
observer's per-interval attribution can be scored against ground truth
— the experiment (E6) that establishes the methodology is trustworthy
before it is used to explain application slowdown.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

__all__ = ["AttributionScore", "score_attribution", "pearson"]


def pearson(a: _t.Sequence[float], b: _t.Sequence[float]) -> float:
    """Pearson correlation (0 when either series is constant)."""
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length series of >= 2 points")
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


@dataclass(frozen=True, slots=True)
class AttributionScore:
    """How well observer attribution explains interval-time variation."""

    #: Correlation between interval duration and observer-charged steal.
    duration_vs_charged: float
    #: Total charged / total true stolen (1.0 = perfect accounting).
    coverage: float
    #: Mean absolute per-interval error, ns.
    mean_abs_error_ns: float

    def as_dict(self) -> dict[str, float]:
        return {"duration_vs_charged_r": self.duration_vs_charged,
                "coverage": self.coverage,
                "mean_abs_error_ns": self.mean_abs_error_ns}


def score_attribution(durations_ns: _t.Sequence[float],
                      charged_ns: _t.Sequence[float],
                      true_stolen_ns: _t.Sequence[float]) -> AttributionScore:
    """Score per-interval attribution.

    Parameters
    ----------
    durations_ns:
        Wall duration of each instrumented interval.
    charged_ns:
        Noise the observer charged to each interval.
    true_stolen_ns:
        Ground-truth stolen time per interval (from the simulator).
    """
    d = np.asarray(durations_ns, dtype=float)
    c = np.asarray(charged_ns, dtype=float)
    t = np.asarray(true_stolen_ns, dtype=float)
    if not (d.size == c.size == t.size) or d.size < 2:
        raise ValueError("need three equal-length series of >= 2 intervals")
    total_true = float(t.sum())
    coverage = float(c.sum()) / total_true if total_true > 0 else float("nan")
    return AttributionScore(
        duration_vs_charged=pearson(d, c),
        coverage=coverage,
        mean_abs_error_ns=float(np.abs(c - t).mean()))
