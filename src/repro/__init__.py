"""repro — "The Ghost in the Machine" (SC 2007) reproduction library.

A simulated-cluster framework for *observing* the effect of operating
system kernel activity ("noise") on parallel application performance:

* :mod:`repro.sim` — deterministic discrete-event simulation engine.
* :mod:`repro.kernel` — per-node OS kernel model (timer interrupts,
  scheduler ticks, daemons, softirqs) that preempts application work.
* :mod:`repro.noise` — generative noise sources and injection patterns.
* :mod:`repro.net` — LogGP network with optional NIC→kernel coupling.
* :mod:`repro.mpi` — MPI-like messaging layer with real collective
  algorithms, so noise amplification emerges from dependency structure.
* :mod:`repro.ktau` — the paper's contribution: a kernel observation
  framework producing per-process kernel profiles, merged user/kernel
  timelines, and per-interval noise attribution.
* :mod:`repro.apps` — parallel application skeletons (BSP, CG-like,
  POP-like, sweep3d-like, halo stencil).
* :mod:`repro.microbench` — FTQ / FWQ / selfish-detour / PSNAP-like
  noise measurement benchmarks.
* :mod:`repro.analysis` — spectral analysis, slowdown metrics, the
  analytic absorption/amplification model, report tables.
* :mod:`repro.core` — experiment configuration and sweep runners.
* :mod:`repro.harness` — one module per paper experiment (E1–E10).
* :mod:`repro.obs` — run telemetry: deterministic metrics registry and
  Chrome trace-event tracing for the simulator itself (off by default).

Quickstart::

    from repro.core import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(app="pop", nodes=64,
                           noise_pattern="2.5pct@100Hz", seed=1)
    result = run_experiment(cfg)
    print(result.slowdown_percent)
"""

from .errors import (
    ConfigError,
    DeadlockError,
    MPIError,
    ReproError,
    SimulationError,
    TraceError,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    "ReproError", "ConfigError", "SimulationError", "DeadlockError",
    "MPIError", "TraceError",
]
