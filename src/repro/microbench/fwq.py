"""FWQ — the Fixed Work Quantum noise benchmark.

FWQ times how long a fixed amount of work takes, repeatedly.  Unlike
FTQ its sampling interval breathes with the noise (a struck sample is
longer), so it is better at capturing event *durations* and worse at
spectral analysis — both benchmarks are provided, as in the original
tool suites.

The FWQ implementation is a true DES process driving
:meth:`repro.kernel.CPU.compute`, so it observes everything the node
experiences, including transient NIC steals from concurrent traffic.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from ..analysis.spectral import Spectrum, lomb_scargle
from ..analysis.stats import SeriesStats, summarize_series
from ..errors import ConfigError
from ..kernel.node import Node
from ..sim import MICROSECOND

__all__ = ["FWQResult", "FWQBenchmark"]


@dataclass(frozen=True)
class FWQResult:
    """One FWQ run on one node."""

    node: int
    work_ns: int
    samples_ns: np.ndarray
    #: Start instant of each sample (non-uniform: struck samples delay
    #: their successors); empty array when unavailable.
    start_times_ns: np.ndarray = None  # type: ignore[assignment]

    @property
    def detour_ns(self) -> np.ndarray:
        """Per-sample overhead beyond the pure work time."""
        return self.samples_ns - self.work_ns

    @property
    def noise_fraction(self) -> float:
        total = int(self.samples_ns.sum())
        return float(self.detour_ns.sum()) / total if total else 0.0

    def stats(self) -> SeriesStats:
        return summarize_series(self.samples_ns)

    def struck_samples(self, threshold_ns: int = 0) -> np.ndarray:
        """Indices of samples whose detour exceeds ``threshold_ns``."""
        return np.nonzero(self.detour_ns > threshold_ns)[0]

    def spectrum(self) -> Spectrum:
        """Lomb–Scargle spectrum of the detour series.

        FWQ's sample instants are irregular by construction, so the
        plain periodogram is invalid; this uses the sample start times.
        """
        if self.start_times_ns is None or len(self.start_times_ns) == 0:
            raise ValueError("this FWQResult has no sample start times")
        return lomb_scargle(self.start_times_ns, self.detour_ns)


class FWQBenchmark:
    """Run FWQ on simulated nodes.

    Parameters
    ----------
    work_ns:
        Fixed work per sample (default 100 µs — long enough to catch
        sub-quantum events, short enough for fine time resolution).
    n_samples:
        Number of samples.
    """

    def __init__(self, *, work_ns: int = 100 * MICROSECOND,
                 n_samples: int = 4096) -> None:
        if work_ns <= 0 or n_samples <= 0:
            raise ConfigError("FWQ parameters must be > 0")
        self.work_ns = work_ns
        self.n_samples = n_samples

    def process(self, node: Node, out: dict) -> _t.Generator:
        """The benchmark's rank program; stores an :class:`FWQResult`."""
        env = node.env
        samples = np.empty(self.n_samples, dtype=np.int64)
        starts = np.empty(self.n_samples, dtype=np.int64)
        for i in range(self.n_samples):
            t0 = env.now
            starts[i] = t0
            yield from node.compute(self.work_ns)
            samples[i] = env.now - t0
        out[node.node_id] = FWQResult(node.node_id, self.work_ns, samples,
                                      starts)

    def run(self, node: Node) -> FWQResult:
        """Convenience: run the process alone on the node's environment."""
        out: dict[int, FWQResult] = {}
        proc = node.env.process(self.process(node, out), name="fwq")
        node.env.run(until=proc)
        return out[node.node_id]
