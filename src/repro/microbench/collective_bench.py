"""Collective-operation latency microbenchmark.

Times repeated executions of one collective across a machine — the
standard tool for exposing noise amplification directly: plot the
completion-time distribution against node count per noise pattern.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from ..analysis.stats import SeriesStats, summarize_series
from ..errors import ConfigError
from ..mpi import RankComm

__all__ = ["CollectiveBenchResult", "CollectiveBenchmark"]

_OPS = ("allreduce", "barrier", "bcast", "allgather", "alltoall")


@dataclass(frozen=True)
class CollectiveBenchResult:
    """Timing of repeated collective executions on one machine."""

    operation: str
    algorithm: str | None
    n_nodes: int
    message_size: int
    #: Completion wall time of each repetition (max over ranks), ns.
    times_ns: np.ndarray

    def stats(self) -> SeriesStats:
        return summarize_series(self.times_ns)

    @property
    def mean_ns(self) -> float:
        return float(self.times_ns.mean())

    @property
    def p99_ns(self) -> float:
        return float(np.percentile(self.times_ns, 99))


class CollectiveBenchmark:
    """Repeatedly run one collective, timing each repetition.

    Parameters
    ----------
    operation:
        One of ``allreduce | barrier | bcast | allgather | alltoall``.
    repetitions:
        Number of timed executions.
    message_size:
        Bytes per rank (ignored by barrier).
    algorithm:
        Specific algorithm (``None`` = the operation's default).
    gap_ns:
        Idle time inserted between repetitions, so successive runs
        sample different noise phases instead of racing back-to-back.
    """

    def __init__(self, operation: str = "allreduce", *, repetitions: int = 50,
                 message_size: int = 8, algorithm: str | None = None,
                 gap_ns: int = 100_000) -> None:
        if operation not in _OPS:
            raise ConfigError(f"operation must be one of {_OPS}, got {operation!r}")
        if repetitions <= 0:
            raise ConfigError("repetitions must be > 0")
        if gap_ns < 0:
            raise ConfigError("gap_ns must be >= 0")
        self.operation = operation
        self.repetitions = repetitions
        self.message_size = message_size
        self.algorithm = algorithm
        self.gap_ns = gap_ns

    # -- rank program -----------------------------------------------------------
    def _one(self, ctx: RankComm) -> _t.Generator:
        kwargs: dict[str, _t.Any] = {}
        if self.algorithm:
            kwargs["algorithm"] = self.algorithm
        if self.operation == "barrier":
            yield from ctx.barrier(**kwargs)
        elif self.operation == "allreduce":
            yield from ctx.allreduce(size=self.message_size, payload=1,
                                     **kwargs)
        elif self.operation == "bcast":
            yield from ctx.bcast(size=self.message_size, root=0,
                                 payload=("x" if ctx.rank == 0 else None),
                                 **kwargs)
        elif self.operation == "allgather":
            yield from ctx.allgather(size=self.message_size,
                                     payload=ctx.rank, **kwargs)
        else:  # alltoall
            yield from ctx.alltoall(size=self.message_size, **kwargs)

    def _program(self, ctx: RankComm, finish_times: list) -> _t.Generator:
        env = ctx.env
        for rep in range(self.repetitions):
            # Align repetitions so the measured interval is the
            # collective itself, not skew from the previous one.
            yield from ctx.barrier()
            start = env.now
            yield from self._one(ctx)
            finish_times[rep][ctx.rank] = (start, env.now)
            if self.gap_ns:
                yield env.timeout(self.gap_ns)

    # -- driver ----------------------------------------------------------------------
    def run_auto(self, config, *, mode: str = "auto",
                 bulk_min_nodes: int = 512, tie_break: str = "strict",
                 stats_out: dict | None = None) -> CollectiveBenchResult:
        """Run from a :class:`repro.core.MachineConfig`, choosing a path.

        ``mode="auto"`` (default) takes the bulk-rank fast path
        (:mod:`repro.sim.bulk`) when the workload qualifies *and* the
        machine has at least ``bulk_min_nodes`` ranks — below that the
        generator path is already fast and exercises the full event
        machinery; ``mode="bulk"`` requires the fast path (raising with
        the disqualifying reason otherwise); ``mode="generator"``
        forces the per-rank path.  Both paths produce byte-identical
        times for any qualifying workload.  ``tie_break`` is passed to
        the engine; the default ``"strict"`` preserves byte-identity by
        falling back to the generator on unknowable arrival ties, while
        ``"deterministic"`` keeps extreme-scale runs on the fast path
        (see :func:`repro.mpi.collectives.bulk.run_bulk`).
        """
        if mode not in ("auto", "bulk", "generator"):
            raise ConfigError(
                f"mode must be auto|bulk|generator, got {mode!r}")
        if mode != "generator":
            from ..mpi.collectives.bulk import run_bulk, unsupported_reason
            from ..sim.bulk import BulkDivergence
            reason = unsupported_reason(config, self)
            if reason is None and (mode == "bulk"
                                   or config.n_nodes >= bulk_min_nodes):
                try:
                    result, _timeline = run_bulk(config, self,
                                                 tie_break=tie_break,
                                                 stats_out=stats_out)
                    return result
                except BulkDivergence:
                    if mode == "bulk":
                        raise
                    # A coincidental arrival tie the static gates could
                    # not rule out; the generator path always works.
            if mode == "bulk":
                raise ConfigError(f"bulk fast path unavailable: {reason}")
        from ..core.machine import Machine
        return self.run(Machine(config))

    def run(self, machine) -> CollectiveBenchResult:
        """Run on a :class:`repro.core.Machine`; returns per-rep times."""
        P = machine.n_nodes
        finish: list[dict[int, tuple[int, int]]] = [
            {} for _ in range(self.repetitions)]

        def program(ctx: RankComm) -> _t.Generator:
            return self._program(ctx, finish)

        procs = machine.launch(program)
        machine.run_to_completion(procs)
        machine.finalize_telemetry()
        times = np.empty(self.repetitions, dtype=np.int64)
        for rep, per_rank in enumerate(finish):
            start = min(s for s, _ in per_rank.values())
            end = max(e for _, e in per_rank.values())
            times[rep] = end - start
        return CollectiveBenchResult(self.operation, self.algorithm, P,
                                     self.message_size, times)
