"""Noise-measurement microbenchmarks.

The indirect tool suite the noise literature used before direct kernel
observation existed — reimplemented inside the simulation so the paper's
"indirect inference vs direct observation" comparison can be made:

* :class:`FTQBenchmark` — fixed time quantum (spectral analysis input);
* :class:`FWQBenchmark` — fixed work quantum (duration-sensitive);
* :class:`SelfishBenchmark` — per-event detour detection;
* :class:`PSNAPBenchmark` — machine-wide fixed-work census;
* :class:`CollectiveBenchmark` — collective latency under noise;
* :class:`PingPongBenchmark` — point-to-point RTT distributions
  (netgauge-style tail analysis).
"""

from .collective_bench import CollectiveBenchmark, CollectiveBenchResult
from .ftq import FTQBenchmark, FTQResult
from .fwq import FWQBenchmark, FWQResult
from .pingpong import PingPongBenchmark, PingPongResult
from .psnap import PSNAPBenchmark, PSNAPResult
from .selfish import Detour, SelfishBenchmark, SelfishResult

__all__ = [
    "FTQBenchmark", "FTQResult",
    "FWQBenchmark", "FWQResult",
    "SelfishBenchmark", "SelfishResult", "Detour",
    "PSNAPBenchmark", "PSNAPResult",
    "PingPongBenchmark", "PingPongResult",
    "CollectiveBenchmark", "CollectiveBenchResult",
]
