"""Selfish-detour benchmark.

The "selfish" benchmark spins a minimal loop, timestamping every pass;
any pass that takes noticeably longer than the loop's own cost is a
*detour* — a direct record of one kernel interruption's start and
length.  It is the highest-resolution of the indirect tools (it sees
individual events rather than per-quantum aggregates).

Simulated faithfully by reading merged busy intervals from the node's
noise stream over the observation window and applying the detection
threshold — exactly the set of detours an ideal spin loop would log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..kernel.node import Node
from ..sim import MICROSECOND, SECOND

__all__ = ["Detour", "SelfishResult", "SelfishBenchmark"]


@dataclass(frozen=True, slots=True)
class Detour:
    """One detected interruption."""

    start: int
    duration: int


@dataclass(frozen=True)
class SelfishResult:
    """One selfish-detour run on one node."""

    node: int
    window_ns: int
    threshold_ns: int
    detours: tuple[Detour, ...]

    @property
    def count(self) -> int:
        return len(self.detours)

    @property
    def detour_fraction(self) -> float:
        """Fraction of the window spent in detected detours."""
        return sum(d.duration for d in self.detours) / self.window_ns

    def durations_ns(self) -> np.ndarray:
        return np.array([d.duration for d in self.detours], dtype=np.int64)

    def inter_arrival_ns(self) -> np.ndarray:
        """Gaps between consecutive detour starts."""
        starts = np.array([d.start for d in self.detours], dtype=np.int64)
        return np.diff(starts)


class SelfishBenchmark:
    """Detect individual noise events above a threshold.

    Parameters
    ----------
    window_ns:
        Observation window length.
    threshold_ns:
        Minimum interruption length to record (models the spin loop's
        detection floor; sub-threshold events hide below loop jitter).
    """

    def __init__(self, *, window_ns: int = 1 * SECOND,
                 threshold_ns: int = 1 * MICROSECOND) -> None:
        if window_ns <= 0 or threshold_ns < 0:
            raise ConfigError("window must be > 0 and threshold >= 0")
        self.window_ns = window_ns
        self.threshold_ns = threshold_ns

    def run(self, node: Node, *, start_time: int | None = None) -> SelfishResult:
        t0 = node.env.now if start_time is None else start_time
        intervals = node.noise.busy_intervals(t0, t0 + self.window_ns)
        detours = tuple(Detour(lo, hi - lo) for lo, hi in intervals
                        if hi - lo >= self.threshold_ns)
        return SelfishResult(node.node_id, self.window_ns,
                             self.threshold_ns, detours)
