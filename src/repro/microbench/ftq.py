"""FTQ — the Fixed Time Quantum noise benchmark.

FTQ counts how many fixed-size work units complete inside each of a
long sequence of equal time quanta.  On a quiet machine the count is
flat; kernel interference shows up as dips whose timing structure is
recovered by spectral analysis (:mod:`repro.analysis.spectral`).

The simulated implementation reads the per-quantum stolen time off the
node's noise stream (exact — the stream is a pure function of time)
and converts it to completed work units, which is precisely what the
real benchmark's count sequence estimates.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from ..analysis.spectral import Spectrum, periodogram
from ..analysis.stats import SeriesStats, summarize_series
from ..errors import ConfigError
from ..kernel.node import Node
from ..sim import Environment, MICROSECOND, MILLISECOND

__all__ = ["FTQResult", "FTQBenchmark"]


@dataclass(frozen=True)
class FTQResult:
    """One FTQ run on one node."""

    node: int
    quantum_ns: int
    unit_work_ns: int
    counts: np.ndarray
    stolen_ns: np.ndarray

    @property
    def max_count(self) -> int:
        """Work units a fully quiet quantum fits."""
        return self.quantum_ns // self.unit_work_ns

    @property
    def noise_fraction(self) -> float:
        """Fraction of CPU lost over the whole run."""
        total = self.quantum_ns * len(self.counts)
        return float(self.stolen_ns.sum()) / total if total else 0.0

    def missing_work(self) -> np.ndarray:
        """Per-quantum lost units (the classic inverted FTQ plot)."""
        return self.max_count - self.counts

    def spectrum(self) -> Spectrum:
        """Periodogram of the count series."""
        return periodogram(self.counts, self.quantum_ns)

    def stats(self) -> SeriesStats:
        return summarize_series(self.counts)


class FTQBenchmark:
    """Run FTQ on simulated nodes.

    Parameters
    ----------
    quantum_ns:
        Sampling quantum (default 1 ms, the conventional setting).
    n_quanta:
        Number of quanta to record.
    unit_work_ns:
        Work-unit granularity (smaller = finer count resolution).
    """

    def __init__(self, *, quantum_ns: int = 1 * MILLISECOND,
                 n_quanta: int = 4096,
                 unit_work_ns: int = 1 * MICROSECOND) -> None:
        if quantum_ns <= 0 or n_quanta <= 0 or unit_work_ns <= 0:
            raise ConfigError("FTQ parameters must be > 0")
        if unit_work_ns > quantum_ns:
            raise ConfigError("unit work must fit inside the quantum")
        self.quantum_ns = quantum_ns
        self.n_quanta = n_quanta
        self.unit_work_ns = unit_work_ns

    def run(self, node: Node, *, env: Environment | None = None,
            start_time: int | None = None) -> FTQResult:
        """Measure one node (no simulation loop needed: the noise
        stream is queried directly, like a quiet dedicated run)."""
        env = env or node.env
        t0 = env.now if start_time is None else start_time
        q = self.quantum_ns
        stolen = np.empty(self.n_quanta, dtype=np.int64)
        for i in range(self.n_quanta):
            stolen[i] = node.noise.stolen_between(t0 + i * q, t0 + (i + 1) * q)
        counts = (q - stolen) // self.unit_work_ns
        return FTQResult(node.node_id, q, self.unit_work_ns,
                         counts.astype(np.int64), stolen)

    def process(self, node: Node, out: dict) -> _t.Generator:
        """DES-process variant: samples quantum-by-quantum in simulated
        time (so concurrent traffic's transient steals are *not* missed
        by later quanta queries), storing the result in ``out``."""
        env = node.env
        q = self.quantum_ns
        stolen = np.empty(self.n_quanta, dtype=np.int64)
        for i in range(self.n_quanta):
            a = env.now
            yield env.timeout(q)
            stolen[i] = node.noise.stolen_between(a, a + q)
        counts = (q - stolen) // self.unit_work_ns
        out[node.node_id] = FTQResult(node.node_id, q, self.unit_work_ns,
                                      counts.astype(np.int64), stolen)
