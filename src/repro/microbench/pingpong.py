"""Ping-pong latency benchmark (netgauge-style).

The canonical two-node microbenchmark: rank 0 sends, rank 1 echoes,
repeat.  Under kernel noise the *distribution* of round-trip times is
the signal — the median shows the fabric, the tail shows the kernel
(one struck endpoint stretches exactly the round trips it intersects).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from ..analysis.stats import SeriesStats, summarize_series
from ..errors import ConfigError
from ..mpi import RankComm

__all__ = ["PingPongResult", "PingPongBenchmark"]


@dataclass(frozen=True)
class PingPongResult:
    """Round-trip times between one node pair."""

    src: int
    dst: int
    message_size: int
    rtt_ns: np.ndarray

    def stats(self) -> SeriesStats:
        return summarize_series(self.rtt_ns)

    @property
    def median_ns(self) -> float:
        return float(np.median(self.rtt_ns))

    @property
    def tail_ratio(self) -> float:
        """p99 / median — the noise fingerprint (1.0 = perfectly clean)."""
        med = self.median_ns
        return float(np.percentile(self.rtt_ns, 99)) / med if med else 0.0

    def struck_round_trips(self, threshold: float = 1.5) -> np.ndarray:
        """Indices of RTTs above ``threshold`` x median."""
        return np.nonzero(self.rtt_ns > threshold * self.median_ns)[0]


class PingPongBenchmark:
    """Repeated ping-pong between two ranks of a machine.

    Parameters
    ----------
    repetitions:
        Number of timed round trips (after ``warmup`` untimed ones).
    message_size:
        Payload bytes each way.
    gap_ns:
        Idle time between round trips (samples different noise phases).
    warmup:
        Untimed leading round trips.
    """

    def __init__(self, *, repetitions: int = 1000, message_size: int = 8,
                 gap_ns: int = 50_000, warmup: int = 10) -> None:
        if repetitions <= 0 or warmup < 0:
            raise ConfigError("repetitions must be > 0 and warmup >= 0")
        if message_size < 0 or gap_ns < 0:
            raise ConfigError("message_size and gap_ns must be >= 0")
        self.repetitions = repetitions
        self.message_size = message_size
        self.gap_ns = gap_ns
        self.warmup = warmup

    def _pinger(self, ctx: RankComm, peer: int,
                rtts: np.ndarray) -> _t.Generator:
        for i in range(self.warmup + self.repetitions):
            t0 = ctx.env.now
            yield from ctx.send(peer, self.message_size, tag=1)
            yield from ctx.recv(peer, tag=2)
            if i >= self.warmup:
                rtts[i - self.warmup] = ctx.env.now - t0
            if self.gap_ns:
                yield ctx.env.timeout(self.gap_ns)

    def _echoer(self, ctx: RankComm, peer: int) -> _t.Generator:
        for _ in range(self.warmup + self.repetitions):
            yield from ctx.recv(peer, tag=1)
            yield from ctx.send(peer, self.message_size, tag=2)

    def run(self, machine, *, src: int = 0, dst: int = 1) -> PingPongResult:
        """Run between two ranks of a :class:`repro.core.Machine`."""
        if src == dst:
            raise ConfigError("ping-pong needs two distinct ranks")
        rtts = np.empty(self.repetitions, dtype=np.int64)
        ctx_a = machine.mpi.rank_context(src)
        ctx_b = machine.mpi.rank_context(dst)
        p0 = machine.env.process(self._pinger(ctx_a, dst, rtts),
                                 name="pingpong-src")
        p1 = machine.env.process(self._echoer(ctx_b, src),
                                 name="pingpong-dst")
        machine.run_to_completion([p0, p1])
        return PingPongResult(src, dst, self.message_size, rtts)
