"""PSNAP-style machine-wide noise census.

PSNAP (the PAL System Noise Activity Program) runs a fixed-work loop on
every node simultaneously and compares per-node overhead histograms —
the way operators map which nodes of a machine are noisy and how noise
varies across the fleet.  Built here on top of the FWQ process, run
concurrently on all nodes of a machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import SeriesStats, summarize_series
from ..errors import ConfigError
from ..sim import MICROSECOND
from .fwq import FWQBenchmark, FWQResult

__all__ = ["PSNAPResult", "PSNAPBenchmark"]


@dataclass(frozen=True)
class PSNAPResult:
    """Machine-wide fixed-work census."""

    work_ns: int
    per_node: dict[int, FWQResult]

    @property
    def n_nodes(self) -> int:
        return len(self.per_node)

    def node_noise_fractions(self) -> dict[int, float]:
        """node -> fraction of CPU lost to noise."""
        return {n: r.noise_fraction for n, r in self.per_node.items()}

    def noisiest_nodes(self, k: int = 5) -> list[tuple[int, float]]:
        """The ``k`` nodes losing the most CPU, worst first."""
        fracs = self.node_noise_fractions()
        ranked = sorted(fracs.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:k]

    def slowest_sample_per_node(self) -> dict[int, int]:
        """node -> worst single-sample duration (detour spikes)."""
        return {n: int(r.samples_ns.max()) for n, r in self.per_node.items()}

    def machine_stats(self) -> SeriesStats:
        """Distribution of per-node noise fractions across the machine."""
        return summarize_series(list(self.node_noise_fractions().values()))

    def imbalance_ratio(self) -> float:
        """Max/median per-node noise (1.0 = perfectly uniform fleet)."""
        fracs = np.array(list(self.node_noise_fractions().values()))
        med = float(np.median(fracs))
        return float(fracs.max()) / med if med > 0 else float("inf")


class PSNAPBenchmark:
    """Concurrent FWQ census across a machine."""

    def __init__(self, *, work_ns: int = 100 * MICROSECOND,
                 n_samples: int = 1024) -> None:
        if work_ns <= 0 or n_samples <= 0:
            raise ConfigError("PSNAP parameters must be > 0")
        self.work_ns = work_ns
        self.n_samples = n_samples

    def run(self, machine) -> PSNAPResult:
        """Run on every node of a :class:`repro.core.Machine`."""
        fwq = FWQBenchmark(work_ns=self.work_ns, n_samples=self.n_samples)
        out: dict[int, FWQResult] = {}
        procs = [machine.env.process(fwq.process(node, out),
                                     name=f"psnap{node.node_id}")
                 for node in machine.nodes]
        machine.env.run(until=machine.env.all_of(procs))
        return PSNAPResult(self.work_ns, out)
