"""Structured operational logging with correlation IDs (``oplog``).

The simulation side of :mod:`repro.obs` answers "where did simulated
time go"; this module answers the *service* question — "what is the
process doing right now, and on whose behalf".  Every event is one
flat JSON-able dict carrying:

* ``ts`` — host wall-clock seconds (host scope only; nothing here
  ever feeds back into simulation decisions),
* ``seq`` — a monotonically increasing per-process sequence number
  (total order even when two events share a timestamp),
* ``level`` — ``"debug"`` | ``"info"`` | ``"warning"`` | ``"error"``,
* ``event`` — a dotted event name (``request.start``, ``exec.point``,
  ``job.finished`` — see docs/SERVICE.md for the reference),
* the **correlation context**: whatever ``request_id`` / ``job_id`` /
  ``point_key`` fields were pushed by enclosing :func:`context`
  scopes, plus the event's own fields.

Correlation rides :mod:`contextvars`, so ``asyncio`` tasks created
inside ``with oplog.context(request_id=...)`` inherit the ids
automatically — the experiment server pushes one context per HTTP
request and every log line emitted while serving it (planner
expansion, in-flight registration, executor fan-out) carries that
``request_id`` without any argument threading.  A point owned by one
request but *joined* by others logs under the owner's ids.

Events land in a bounded ring buffer (queryable over ``GET
/v1/logs``) and, when configured, stream as NDJSON to a file sink
(CLI ``--log-json PATH``).  The ring is always on: it is a few
dict-appends per request, bounded memory, and it is exactly the
always-on attribution the source paper argues for — you cannot
diagnose the stall you did not record.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import time
import typing as _t
from collections import deque

from ..errors import ConfigError

__all__ = ["OpLog", "LEVELS", "configure", "get", "reset", "log",
           "context", "current_context"]

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: i for i, name in enumerate(LEVELS)}

#: Correlation fields pushed by enclosing :func:`context` scopes, as a
#: flat ``(key, value, ...)`` tuple (cheap to copy per task).
_CTX: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_oplog_ctx", default=())


class OpLog:
    """Bounded structured-event sink: ring buffer + optional file.

    Parameters
    ----------
    cap:
        Ring-buffer capacity (events beyond it evict the oldest and
        increment :attr:`dropped`).
    path:
        Optional NDJSON file sink; every event is appended as one
        ``json.dumps(..., sort_keys=True)`` line as it is emitted.
    """

    def __init__(self, cap: int = 4096, path: str | None = None) -> None:
        if cap <= 0:
            raise ConfigError(f"oplog cap must be > 0, got {cap}")
        self.cap = cap
        self._ring: deque[dict[str, _t.Any]] = deque(maxlen=cap)
        self.dropped = 0
        self.total = 0
        self._seq = 0
        self.path = path
        self._sink: _t.TextIO | None = open(path, "a") if path else None

    # -- recording -------------------------------------------------------
    def emit(self, event: str, level: str = "info",
             **fields: _t.Any) -> dict[str, _t.Any]:
        """Record one event; returns the stored dict.

        Context fields (see :func:`context`) are merged in first, so an
        explicit keyword argument wins over an inherited one.
        """
        if level not in _LEVEL_RANK:
            raise ConfigError(f"oplog level must be one of {LEVELS}, "
                              f"got {level!r}")
        self._seq += 1
        doc: dict[str, _t.Any] = {
            # Host wall clock: operational timestamps only, never fed
            # back into simulation state.
            "ts": round(time.time(), 6),  # detlint: disable=DET001 -- host-scoped log timestamp
            "seq": self._seq,
            "level": level,
            "event": event,
        }
        ctx = _CTX.get()
        for i in range(0, len(ctx), 2):
            doc[ctx[i]] = ctx[i + 1]
        doc.update(fields)
        if len(self._ring) == self.cap:
            self.dropped += 1
        self._ring.append(doc)
        self.total += 1
        if self._sink is not None:
            self._sink.write(json.dumps(doc, sort_keys=True,
                                        default=str) + "\n")
            self._sink.flush()
        return doc

    # -- reading ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def events(self, *, level: str | None = None,
               event: str | None = None,
               since_seq: int = 0,
               limit: int | None = None) -> list[dict[str, _t.Any]]:
        """Retained events, oldest first, optionally filtered.

        ``level`` is a *floor*: ``level="warning"`` returns warnings
        and errors.  ``event`` matches the event name exactly or as a
        dotted prefix (``"request"`` matches ``"request.start"``).
        ``limit`` keeps the **newest** N matches.
        """
        if level is not None and level not in _LEVEL_RANK:
            raise ConfigError(f"oplog level must be one of {LEVELS}, "
                              f"got {level!r}")
        floor = _LEVEL_RANK[level] if level is not None else 0
        out = []
        for doc in self._ring:
            if doc["seq"] <= since_seq:
                continue
            if _LEVEL_RANK[doc["level"]] < floor:
                continue
            if event is not None and doc["event"] != event \
                    and not doc["event"].startswith(event + "."):
                continue
            out.append(doc)
        if limit is not None and limit >= 0:
            out = out[max(0, len(out) - limit):]
        return out

    def close(self) -> None:
        """Close the file sink (the ring stays readable)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None


# -- process-global instance ------------------------------------------------

_GLOBAL = OpLog()


def get() -> OpLog:
    """The process-wide log (always present; ring-only by default)."""
    return _GLOBAL


def configure(*, path: str | None = None, cap: int | None = None) -> OpLog:
    """Replace the global log (new sink file and/or capacity).

    The CLI's ``--log-json PATH`` lands here.  Previously retained
    events are dropped; the old sink is closed.
    """
    global _GLOBAL
    _GLOBAL.close()
    # Operational switchboard, not sim state: no simulation decision
    # ever reads the oplog, so rebinding it cannot leak into results.
    _GLOBAL = OpLog(cap=cap or _GLOBAL.cap, path=path)  # detlint: disable=DET008 -- write-only operational sink
    return _GLOBAL


def reset() -> None:
    """Back to the default ring-only log (tests, fresh CLI runs)."""
    global _GLOBAL
    _GLOBAL.close()
    _GLOBAL = OpLog()  # detlint: disable=DET008 -- write-only operational sink, reset between runs


def log(event: str, level: str = "info",
        **fields: _t.Any) -> dict[str, _t.Any]:
    """Emit one event on the global log (module-level convenience)."""
    return _GLOBAL.emit(event, level, **fields)


@contextlib.contextmanager
def context(**fields: _t.Any) -> _t.Iterator[None]:
    """Push correlation fields for the dynamic extent of the block.

    Nested scopes accumulate; ``asyncio`` tasks created inside the
    block inherit the fields (contextvars semantics).
    """
    flat: list = []
    for kv in fields.items():
        flat.extend(kv)
    token = _CTX.set(_CTX.get() + tuple(flat))
    try:
        yield
    finally:
        _CTX.reset(token)


def current_context() -> dict[str, _t.Any]:
    """The correlation fields active in this context (outermost first)."""
    ctx = _CTX.get()
    return {ctx[i]: ctx[i + 1] for i in range(0, len(ctx), 2)}
