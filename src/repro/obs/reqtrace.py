"""Per-request trace stitching: service phases + worker sim spans.

One :class:`RequestTrace` accompanies a traced job (``"trace": true``
in the submitted job document) through the experiment server.  It
collects two kinds of material:

* **request phases** — the server's own pipeline stages (``parse`` →
  ``plan`` → ``simulate`` → ``stream``), recorded *by order*, not by
  wall clock;
* **point spans** — the simulation-time trace of every point the job
  touched, shipped back from the worker process as
  :meth:`~repro.obs.trace.SpanTracer.raw_events` tuples through
  ``RunResult.meta["trace"]``.

:meth:`to_chrome` exports one Perfetto document per request: a
``request`` track of phase slices, one process group per point (its
node threads preserved), and flow arrows from the ``simulate`` phase
into each point's first span.

**Determinism is the design constraint.**  The acceptance bar is a
byte-identical document between ``--workers 1`` and ``--workers 2``,
so nothing wall-clock may enter it: phase slices sit at *logical*
timestamps (phase ``i`` spans ``[i, i+1)`` trace-microseconds), point
spans keep their simulated-nanosecond timestamps, points are ordered
by plan key, and flow ids are derived from point order.  Wall-clock
durations still exist — they go to the oplog and the metrics
histograms, which are allowed to differ between runs; the trace
document is the deterministic artifact.
"""

from __future__ import annotations

import json
import typing as _t

from .trace import _SIM_PID

__all__ = ["RequestTrace", "REQUEST_PID", "PHASES"]

#: Synthetic pid of the request-phase track (sim tracks re-base onto
#: :data:`POINT_PID_BASE` ``+ index``).
REQUEST_PID = 1
POINT_PID_BASE = 100

#: Canonical phase order (phases actually recorded may be a subset —
#: e.g. ``dedup_wait`` only appears when a point was joined in flight).
PHASES = ("parse", "plan", "dedup_wait", "simulate", "stream")

#: Flow-id namespace stride: arrows *within* point ``j`` keep their
#: worker-assigned ids offset by ``(j + 1) * _FLOW_STRIDE``, leaving
#: ids ``1..n_points`` for the request→point arrows.
_FLOW_STRIDE = 10_000_000


class RequestTrace:
    """Accumulates one request's spans; exports a Perfetto document."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._phases: list[str] = []
        self._points: dict[str, tuple] = {}

    # -- recording -------------------------------------------------------
    def phase(self, name: str) -> None:
        """Mark that the request entered pipeline stage ``name``."""
        self._phases.append(name)

    def has_phase(self, name: str) -> bool:
        return name in self._phases

    def add_point(self, key: str, raw_events: _t.Sequence[tuple],
                  *, worker_pid: int | None = None) -> None:
        """Attach one simulated point's stored-tuple trace.

        ``key`` is the plan key (export order); duplicate keys keep the
        first trace (a point joined from another request's in-flight
        simulation carries the same spans).  ``worker_pid`` is kept out
        of the document — it is operational detail for the oplog.
        """
        if key not in self._points:
            self._points[key] = tuple(raw_events)

    @property
    def n_points(self) -> int:
        return len(self._points)

    # -- export ----------------------------------------------------------
    def to_chrome(self) -> dict[str, _t.Any]:
        """The stitched Chrome ``trace_event`` document (deterministic)."""
        events: list[dict[str, _t.Any]] = [
            {"ph": "M", "pid": REQUEST_PID, "tid": 0,
             "name": "process_name",
             "args": {"name": f"request ({self.kind})"}},
        ]
        # Phase slices at logical timestamps: stage i covers [i, i+1).
        simulate_ts: float | None = None
        for i, name in enumerate(self._phases):
            if name == "simulate":
                simulate_ts = float(i)
            events.append({"ph": "X", "cat": "serve", "name": name,
                           "pid": REQUEST_PID, "tid": 0,
                           "ts": float(i), "dur": 1.0})
        point_keys = sorted(self._points)
        for j, key in enumerate(point_keys):
            pid = POINT_PID_BASE + j
            events.append({"ph": "M", "pid": pid, "tid": 0,
                           "name": "process_name",
                           "args": {"name": f"point {key}"}})
            raw = self._points[key]
            first_ts: float | None = None
            tids: set[int] = set()
            for ph, cat, name, src_pid, tid, ts, dur, args in raw:
                if src_pid != _SIM_PID:
                    continue  # host spans are wall clock: excluded
                tids.add(tid)
                ev: dict[str, _t.Any] = {"ph": ph, "cat": cat,
                                         "name": name, "pid": pid,
                                         "tid": tid, "ts": ts / 1e3}
                if ph == "X":
                    ev["dur"] = dur / 1e3
                    if first_ts is None or ev["ts"] < first_ts:
                        first_ts = ev["ts"]
                elif ph in ("s", "f"):
                    ev["id"] = (j + 1) * _FLOW_STRIDE + dur
                    if ph == "f":
                        ev["bp"] = "e"
                else:
                    ev["s"] = "t"
                if args is not None:
                    ev["args"] = dict(zip(args[::2], args[1::2]))
                events.append(ev)
            for tid in sorted(tids):
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": f"node {tid}"}})
            # Arrow: request "simulate" slice -> the point's first span.
            if simulate_ts is not None and first_ts is not None:
                events.append({"ph": "s", "cat": "serve.flow",
                               "name": "dispatch", "pid": REQUEST_PID,
                               "tid": 0, "ts": simulate_ts + 0.5,
                               "id": j + 1})
                events.append({"ph": "f", "cat": "serve.flow",
                               "name": "dispatch", "pid": pid, "tid": 0,
                               "ts": first_ts, "id": j + 1, "bp": "e"})
        return {"traceEvents": events,
                "displayTimeUnit": "ns",
                "otherData": {"generator": "repro.obs.reqtrace",
                              "kind": self.kind,
                              "points": point_keys}}

    def to_json(self) -> str:
        """Canonical serialization (sorted keys, compact separators) —
        the byte-determinism acceptance test compares these strings."""
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":"))
