"""Deterministic run-telemetry metrics: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs` (the trace half is
:mod:`repro.obs.trace`).  Every metric carries a **scope**:

* ``"sim"`` — derived purely from simulation state (event counts,
  simulated time, message totals).  Sim-scoped metrics are
  deterministic: the same seed produces byte-identical snapshots, a
  property ``tests/test_determinism.py`` pins down.
* ``"host"`` — wall-clock measurements (sweep-point timings, experiment
  phase durations).  These live *outside* the deterministic path and
  are excluded from ``snapshot(sim_only=True)``.

Metrics are named ``subsystem.quantity`` (``sim.events_processed``,
``net.bytes_total``, ``exec.cache_hits``) with optional labels; see
docs/OBSERVABILITY.md for the full catalogue.  Histograms use *fixed*
bucket bounds chosen at creation, so aggregation across runs never
re-bins and snapshots stay stable.
"""

from __future__ import annotations

import typing as _t

from ..errors import ConfigError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "diff_snapshots", "SIM", "HOST"]

#: Metric scopes.
SIM = "sim"
HOST = "host"
_SCOPES = (SIM, HOST)

#: Default histogram bucket upper bounds (ns-ish magnitudes); callers
#: instrument with bounds suited to their quantity.
DEFAULT_BUCKETS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                   100_000_000, 1_000_000_000)

#: Wire delivery-latency bounds (1 us .. 100 ms in decades, ns).  Shared
#: between the :class:`~repro.net.Network` inline bucket counters and
#: the registry histogram they are harvested into.
DELIVERY_LATENCY_BOUNDS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                           100_000_000)

Labels = tuple[tuple[str, str], ...]


def _labelkey(labels: dict[str, _t.Any]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "scope", "value")

    def __init__(self, name: str, labels: Labels, scope: str) -> None:
        self.name = name
        self.labels = labels
        self.scope = scope
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def as_value(self) -> _t.Any:
        return self.value


class Gauge:
    """A point-in-time value (last write wins; :meth:`track_max` keeps
    the high-water mark instead)."""

    __slots__ = ("name", "labels", "scope", "value")

    def __init__(self, name: str, labels: Labels, scope: str) -> None:
        self.name = name
        self.labels = labels
        self.scope = scope
        self.value: _t.Any = 0

    def set(self, value: _t.Any) -> None:
        self.value = value

    def track_max(self, value: _t.Any) -> None:
        if value > self.value:
            self.value = value

    def as_value(self) -> _t.Any:
        return self.value


class Histogram:
    """Fixed-bucket histogram: cumulative-style bucket counts + sum.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the implicit ``+Inf`` overflow bucket.  Bounds are
    frozen at creation so merged/aggregated snapshots are stable.
    """

    __slots__ = ("name", "labels", "scope", "bounds", "bucket_counts",
                 "total", "count")

    def __init__(self, name: str, labels: Labels, scope: str,
                 bounds: _t.Sequence[int | float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(
                f"histogram {name} needs ascending bucket bounds, "
                f"got {bounds!r}")
        self.name = name
        self.labels = labels
        self.scope = scope
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # + overflow
        self.total: int | float = 0
        self.count = 0

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def as_value(self) -> dict[str, _t.Any]:
        return {"count": self.count, "sum": self.total,
                "buckets": {("+Inf" if i == len(self.bounds)
                             else str(self.bounds[i])): c
                            for i, c in enumerate(self.bucket_counts)}}


_Metric = _t.Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for every metric in one process.

    One registry serves the whole library (see
    :func:`repro.obs.runtime.registry`); instrumentation points call
    ``registry.counter("net.bytes_total").inc(n)`` and the CLI/report
    layer reads :meth:`snapshot`.  Lookup is by ``(name, labels)``;
    re-requesting an existing metric with a conflicting type or scope
    is a :class:`~repro.errors.ConfigError`.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], _Metric] = {}

    # -- get-or-create ---------------------------------------------------
    def _get(self, cls: type, name: str, scope: str,
             labels: dict[str, _t.Any],
             bounds: _t.Sequence[int | float] | None = None) -> _t.Any:
        if scope not in _SCOPES:
            raise ConfigError(f"metric scope must be one of {_SCOPES}, "
                              f"got {scope!r}")
        key = (name, _labelkey(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if cls is Histogram:
                metric = Histogram(name, key[1], scope,
                                   bounds or DEFAULT_BUCKETS)
            else:
                metric = cls(name, key[1], scope)
            self._metrics[key] = metric
            return metric
        if type(metric) is not cls or metric.scope != scope:
            raise ConfigError(
                f"metric {name}{dict(key[1])} already registered as "
                f"{type(metric).__name__}/{metric.scope}")
        return metric

    def counter(self, name: str, scope: str = SIM,
                **labels: _t.Any) -> Counter:
        return self._get(Counter, name, scope, labels)

    def gauge(self, name: str, scope: str = SIM, **labels: _t.Any) -> Gauge:
        return self._get(Gauge, name, scope, labels)

    def histogram(self, name: str, scope: str = SIM,
                  bounds: _t.Sequence[int | float] | None = None,
                  **labels: _t.Any) -> Histogram:
        return self._get(Histogram, name, scope, labels, bounds)

    # -- reading ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> _t.Iterator[tuple[str, Labels, _Metric]]:
        """``(name, labels, metric)`` triples in sorted key order.

        The structured counterpart to :meth:`snapshot` — exporters
        (e.g. :mod:`repro.obs.prom`) iterate live metric objects
        instead of re-parsing ``name{k=v}`` snapshot keys.
        """
        for (name, labels), metric in sorted(self._metrics.items()):
            yield name, labels, metric

    def snapshot(self, *, sim_only: bool = False) -> dict[str, _t.Any]:
        """A sorted, JSON-able view of every metric.

        Keys are ``name`` or ``name{k=v,...}``; values are plain ints /
        floats (counters, gauges) or bucket dicts (histograms).  With
        ``sim_only=True`` host-scoped (wall-clock) metrics are dropped,
        leaving only the deterministic subset.
        """
        out: dict[str, _t.Any] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            if sim_only and metric.scope != SIM:
                continue
            key = name
            if labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            out[key] = metric.as_value()
        return out

    def render(self, *, sim_only: bool = False) -> str:
        """Plain-text table of :meth:`snapshot` (the ``repro stats``
        output)."""
        lines = []
        for key, value in self.snapshot(sim_only=sim_only).items():
            if isinstance(value, dict):  # histogram
                lines.append(f"{key}: count={value['count']} "
                             f"sum={value['sum']}")
                for bound, c in value["buckets"].items():
                    if c:
                        lines.append(f"  <= {bound}: {c}")
            elif isinstance(value, float):
                lines.append(f"{key}: {value:.6g}")
            else:
                lines.append(f"{key}: {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI invocations)."""
        self._metrics.clear()


def diff_snapshots(before: _t.Mapping[str, _t.Any],
                   after: _t.Mapping[str, _t.Any]) -> dict[str, _t.Any]:
    """What changed between two :meth:`MetricsRegistry.snapshot` calls.

    Counter-like numeric values are differenced; histogram values are
    differenced bucket-by-bucket; metrics absent from ``before`` pass
    through; unchanged metrics are dropped.  Used by the harness to
    attach a *per-experiment* metrics block even though the registry is
    cumulative across a ``run_all``.
    """
    out: dict[str, _t.Any] = {}
    for key, now in after.items():
        prev = before.get(key)
        if prev is None:
            out[key] = now
            continue
        if isinstance(now, dict) and isinstance(prev, dict):
            count = now["count"] - prev["count"]
            if count:
                out[key] = {
                    "count": count, "sum": now["sum"] - prev["sum"],
                    "buckets": {b: now["buckets"][b] - prev["buckets"].get(b, 0)
                                for b in now["buckets"]}}
        elif isinstance(now, (int, float)) and isinstance(prev, (int, float)):
            if now != prev:
                out[key] = now - prev
        elif now != prev:
            out[key] = now
    return out
