"""Ring-buffer span tracer emitting Chrome ``trace_event`` JSON.

The output loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: one *process* row per time domain —

* ``sim``  — simulated time.  Event timestamps are simulated
  nanoseconds rendered as microseconds (the trace-event unit); one
  *thread* row per node, so per-node message arrivals, collective
  phases, and kernel interruptions line up vertically.
* ``host`` — wall-clock time (sweep points, experiment phases), offset
  from tracer creation so traces start near zero.

Events are collected in a fixed-capacity **ring buffer**: once ``cap``
events have been recorded, new events overwrite the oldest and
``dropped`` counts the overflow.  That bounds both memory and the cost
of a runaway trace — the observer must never become the perturbation
it is observing (the paper's own constraint on KTAU).

Three deliberate cost decisions, for the same reason:

* Events are stored as flat tuples of immutables and only rendered to
  dicts at export time.  A ring of 200k live dicts makes every cyclic
  GC pass rescan the buffer (measured at ~25% wall-time overhead on
  collective-heavy runs); tuples of scalars are untracked by the GC
  after their first collection, so retention is near-free.
* Recording allocates as little as possible — two tuples per event, no
  floats (sim timestamps stay integer ns until export), no nested arg
  pairs.  The allocation *rate* matters more than the per-object cost:
  every ~700 allocations is a young-gen GC pass that rescans whatever
  live simulation objects exist, so a chatty recorder taxes the
  simulator even when the recorder itself is cheap.
* The ``sim`` category (an instant per dispatched simulator event) is
  a firehose — millions of events on a full run — so it is excluded
  from the **default** category set, like Chrome's own
  ``disabled-by-default-*`` categories.  Opt in with
  ``--trace-categories all`` (or an explicit list containing ``sim``).

Category filtering happens at the *instrumentation point* via
:meth:`SpanTracer.enabled`, so a disabled category costs one set
lookup and no event construction.
"""

from __future__ import annotations

import json
import time
import typing as _t

from ..errors import ConfigError

__all__ = ["SpanTracer", "TRACE_CATEGORIES", "DEFAULT_TRACE_CATEGORIES"]

#: Every category an instrumentation point may use.  ``net.flow`` is
#: the flow-event stream (``ph:"s"``/``"f"`` pairs linking a send span
#: to its delivery span across node tracks — Perfetto draws them as
#: arrows); it is separate from ``net`` so the per-message spans and
#: the arrows can be toggled independently.
TRACE_CATEGORIES = ("sim", "net", "net.flow", "mpi", "faults", "sweep",
                    "harness")

#: What ``categories=None`` enables: everything except the per-event
#: ``sim`` firehose (see module docstring).
DEFAULT_TRACE_CATEGORIES = ("net", "net.flow", "mpi", "faults", "sweep",
                            "harness")

#: Synthetic pids for the two time domains.
_SIM_PID = 1
_HOST_PID = 2


def _flatten(args: dict) -> tuple | None:
    """Dict -> flat (key, value, ...) tuple (the stored-args form)."""
    if not args:
        return None
    flat: list = []
    for kv in args.items():
        flat.extend(kv)
    return tuple(flat)

#: Stored-event tuple layout: ``(ph, cat, name, pid, tid, ts, dur,
#: args)``.  For sim events (pid 1) ts/dur are integer nanoseconds,
#: converted to trace-event microseconds at export; host events (pid 2)
#: store microsecond floats directly.  ``args`` is ``None`` or a flat
#: ``(key, value, key, value, ...)`` tuple.
_Stored = tuple


class SpanTracer:
    """Bounded collector of Chrome trace events.

    Parameters
    ----------
    categories:
        Iterable of enabled category names (subset of
        :data:`TRACE_CATEGORIES`); ``None`` enables
        :data:`DEFAULT_TRACE_CATEGORIES`.
    cap:
        Ring-buffer capacity (hard bound on retained events).
    """

    def __init__(self, categories: _t.Iterable[str] | None = None,
                 *, cap: int = 200_000) -> None:
        if cap <= 0:
            raise ConfigError(f"trace cap must be > 0, got {cap}")
        cats = (frozenset(DEFAULT_TRACE_CATEGORIES) if categories is None
                else frozenset(categories))
        unknown = cats - frozenset(TRACE_CATEGORIES)
        if unknown:
            raise ConfigError(
                f"unknown trace categories {sorted(unknown)}; "
                f"valid: {list(TRACE_CATEGORIES)}")
        self.categories = cats
        self.cap = cap
        self._events: list[_Stored] = []
        self._next = 0  # ring cursor once the buffer is full
        self.dropped = 0
        self._flow_seq = 0
        # Host-scoped epoch for aligning host spans in the Chrome
        # trace; never feeds back into simulated time or results.
        self._t0 = time.perf_counter()  # detlint: disable=DET001 -- host-scoped trace epoch

    # -- gating ----------------------------------------------------------
    def enabled(self, category: str) -> bool:
        return category in self.categories

    # -- recording -------------------------------------------------------
    def _push(self, event: _Stored) -> None:
        if len(self._events) < self.cap:
            self._events.append(event)
            return
        self._events[self._next] = event
        self._next = (self._next + 1) % self.cap
        self.dropped += 1

    def complete(self, category: str, name: str, start_ns: int,
                 duration_ns: int, *, tid: int = 0,
                 args: _t.Any = None) -> None:
        """A sim-time span (``X`` event) from ``start_ns`` lasting
        ``duration_ns`` simulated nanoseconds.

        ``args`` may be a dict or — on hot paths, to skip building a
        throwaway dict per event — a flat ``(key, value, key, value)``
        tuple.
        """
        if type(args) is dict:
            args = _flatten(args)
        self._push(("X", category, name, _SIM_PID, tid, start_ns,
                    duration_ns, args))

    def instant(self, category: str, name: str, ts_ns: int, *,
                tid: int = 0, args: _t.Any = None) -> None:
        """A zero-duration sim-time marker (``i`` event)."""
        if type(args) is dict:
            args = _flatten(args)
        self._push(("i", category, name, _SIM_PID, tid, ts_ns, 0, args))

    def next_flow_id(self) -> int:
        """Allocate a flow id unique within this trace document.

        The tracer owns the counter (not each emitter): several
        machines can share one tracer — a ``compare`` run traces the
        quiet and noisy machine into the same document — and ids that
        restart per machine would bind arrows across unrelated runs.
        """
        self._flow_seq += 1
        return self._flow_seq

    def flow_start(self, category: str, name: str, ts_ns: int,
                   flow_id: int, *, tid: int = 0) -> None:
        """Open a flow arrow (``s`` event) at ``ts_ns`` on node ``tid``.

        ``flow_id`` must be unique per arrow and shared with the
        matching :meth:`flow_finish`; it rides in the stored tuple's
        duration slot (flows have no duration).
        """
        self._push(("s", category, name, _SIM_PID, tid, ts_ns, flow_id,
                    None))

    def flow_finish(self, category: str, name: str, ts_ns: int,
                    flow_id: int, *, tid: int = 0) -> None:
        """Close a flow arrow (``f`` event, binding point ``e``: the
        arrow head attaches to the enclosing slice's end)."""
        self._push(("f", category, name, _SIM_PID, tid, ts_ns, flow_id,
                    None))

    def host_span(self, category: str, name: str, start_s: float,
                  duration_s: float, *, tid: int = 0,
                  args: _t.Any = None) -> None:
        """A wall-clock span on the host track; ``start_s`` is an
        absolute ``time.perf_counter()`` reading."""
        if type(args) is dict:
            args = _flatten(args)
        self._push(("X", category, name, _HOST_PID, tid,
                    max(0.0, start_s - self._t0) * 1e6, duration_s * 1e6,
                    args))

    # -- reading ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def _raw(self) -> list[_Stored]:
        """Retained tuples in record order (ring rotation undone)."""
        if len(self._events) < self.cap or self._next == 0:
            return list(self._events)
        return self._events[self._next:] + self._events[:self._next]

    def raw_events(self) -> list[_Stored]:
        """Retained stored tuples ``(ph, cat, name, pid, tid, ts, dur,
        args)`` in record order.

        The compact wire form: sweep workers ship their point-scoped
        trace back to the parent through ``RunResult.meta["trace"]`` as
        these tuples (picklable, no dict inflation) and the request
        stitcher (:mod:`repro.obs.reqtrace`) re-bases them into the
        combined per-request document.
        """
        return self._raw()

    def events(self) -> list[dict[str, _t.Any]]:
        """Retained events rendered as Chrome trace-event dicts."""
        out = []
        for ph, cat, name, pid, tid, ts, dur, args in self._raw():
            if pid == _SIM_PID:  # integer ns -> trace-event us
                ts /= 1e3
            ev: dict[str, _t.Any] = {"ph": ph, "cat": cat, "name": name,
                                     "pid": pid, "tid": tid, "ts": ts}
            if ph == "X":
                ev["dur"] = dur / 1e3 if pid == _SIM_PID else dur
            elif ph in ("s", "f"):  # flow: dur slot carries the id
                ev["id"] = dur
                if ph == "f":
                    ev["bp"] = "e"  # bind to the enclosing slice's end
            else:  # instant: scope = thread
                ev["s"] = "t"
            if args is not None:
                ev["args"] = dict(zip(args[::2], args[1::2]))
            out.append(ev)
        return out

    def to_chrome(self) -> dict[str, _t.Any]:
        """The complete Chrome ``trace_event`` JSON object."""
        meta: list[dict[str, _t.Any]] = []
        for pid, label in ((_SIM_PID, "sim (simulated time)"),
                           (_HOST_PID, "host (wall clock)")):
            meta.append({"ph": "M", "pid": pid, "tid": 0,
                         "name": "process_name",
                         "args": {"name": label}})
        events = self.events()
        # One named track per node so cross-node flows read vertically.
        sim_tids = sorted({e["tid"] for e in events
                           if e["pid"] == _SIM_PID})
        for tid in sim_tids:
            meta.append({"ph": "M", "pid": _SIM_PID, "tid": tid,
                         "name": "thread_name",
                         "args": {"name": f"node {tid}"}})
        return {"traceEvents": meta + events,
                "displayTimeUnit": "ns",
                "otherData": {"generator": "repro.obs",
                              "categories": sorted(self.categories),
                              "dropped_events": self.dropped}}

    def write(self, path: str) -> int:
        """Serialize to ``path``; returns the number of events written."""
        doc = self.to_chrome()
        with open(path, "w") as f:
            json.dump(doc, f, separators=(",", ":"))
        return len(self._events)
