"""repro.obs — run-telemetry: deterministic metrics + Chrome tracing.

The simulator *models* an observer (:mod:`repro.ktau`); this package
observes the simulator itself.  Two instruments, one switchboard:

* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters,
  gauges, and fixed-bucket histograms fed by instrumentation points in
  ``sim``, ``net``, ``mpi``, ``faults``, ``parallel``, and ``harness``.
  Sim-scoped metrics are seed-deterministic; wall-clock quantities are
  host-scoped and kept out of the deterministic snapshot.
* :class:`SpanTracer` (:mod:`repro.obs.trace`) — a capped ring buffer
  of Chrome ``trace_event`` spans (open the JSON in Perfetto), with
  per-category gating: ``sim``, ``net``, ``mpi``, ``faults``,
  ``sweep``, ``harness``.
* :mod:`repro.obs.runtime` — the process-wide on/off switch the CLI
  drives (``--trace``, ``--trace-categories``, ``--metrics``,
  ``repro stats``).  Everything is off by default and the disabled
  path is free; enabling telemetry never changes simulation results.
* :mod:`repro.obs.critpath` — the cross-node critical-path tracer:
  a :class:`DependencyRecorder` of causal MPI/network edges plus a
  backward walk (:func:`compute_critical_path`) that charges every
  nanosecond of the makespan to a named kernel activity, injected
  noise source, network time, retransmission stalls, or genuine
  compute — the "who stole the makespan" table E16 validates.
* :mod:`repro.obs.wavefront` — the idle-wave extractor: pairs the
  edge logs of a baseline and a one-off-delayed run, measures the
  planted delay's rank-by-rank arrival times and residual magnitude,
  and fits the propagation speed and decay length E20 validates.
* :mod:`repro.obs.oplog` — structured operational JSON logging with
  contextvars-propagated correlation ids (``request_id`` → ``job_id``
  → ``point_key`` → worker pid): ring buffer behind ``GET /v1/logs``
  plus an optional NDJSON file sink (``--log-json``).
* :mod:`repro.obs.prom` — Prometheus text exposition renderer and the
  strict parser/validator CI uses to scrape-check ``GET /metrics``.
* :mod:`repro.obs.reqtrace` — the per-request trace stitcher: server
  phase spans plus worker-shipped simulation spans, exported as one
  deterministic Perfetto document per request with flow arrows from
  request to simulation.

See docs/OBSERVABILITY.md for the metric catalogue and a Perfetto
walkthrough.
"""

from .critpath import (
    CriticalPathResult,
    DependencyRecorder,
    PathSegment,
    WaitRecord,
    compute_critical_path,
    diff_critical_paths,
    format_critical_path,
    format_diff,
)
from .metrics import (
    HOST,
    SIM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from . import oplog, prom, reqtrace
from .runtime import (
    configure,
    critpath_enabled,
    det_check_enabled,
    disable,
    harvest_machine,
    metrics_enabled,
    parse_categories,
    registry,
    scoped_tracer,
    tracer,
    write_trace,
)
from .trace import DEFAULT_TRACE_CATEGORIES, TRACE_CATEGORIES, SpanTracer
from .wavefront import (
    WavefrontResult,
    extract_wavefront,
    format_wavefront,
    match_edge_logs,
    propagate_delay,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "diff_snapshots",
    "SIM", "HOST",
    "SpanTracer", "TRACE_CATEGORIES", "DEFAULT_TRACE_CATEGORIES",
    "DependencyRecorder", "WaitRecord", "PathSegment",
    "CriticalPathResult", "compute_critical_path", "diff_critical_paths",
    "format_critical_path", "format_diff",
    "WavefrontResult", "extract_wavefront", "format_wavefront",
    "match_edge_logs", "propagate_delay",
    "configure", "disable", "metrics_enabled", "critpath_enabled",
    "det_check_enabled",
    "registry", "tracer", "scoped_tracer", "write_trace",
    "harvest_machine", "parse_categories",
    "oplog", "prom", "reqtrace",
]
