"""repro.obs — run-telemetry: deterministic metrics + Chrome tracing.

The simulator *models* an observer (:mod:`repro.ktau`); this package
observes the simulator itself.  Two instruments, one switchboard:

* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters,
  gauges, and fixed-bucket histograms fed by instrumentation points in
  ``sim``, ``net``, ``mpi``, ``faults``, ``parallel``, and ``harness``.
  Sim-scoped metrics are seed-deterministic; wall-clock quantities are
  host-scoped and kept out of the deterministic snapshot.
* :class:`SpanTracer` (:mod:`repro.obs.trace`) — a capped ring buffer
  of Chrome ``trace_event`` spans (open the JSON in Perfetto), with
  per-category gating: ``sim``, ``net``, ``mpi``, ``faults``,
  ``sweep``, ``harness``.
* :mod:`repro.obs.runtime` — the process-wide on/off switch the CLI
  drives (``--trace``, ``--trace-categories``, ``--metrics``,
  ``repro stats``).  Everything is off by default and the disabled
  path is free; enabling telemetry never changes simulation results.

See docs/OBSERVABILITY.md for the metric catalogue and a Perfetto
walkthrough.
"""

from .metrics import (
    HOST,
    SIM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from .runtime import (
    configure,
    disable,
    harvest_machine,
    metrics_enabled,
    parse_categories,
    registry,
    tracer,
    write_trace,
)
from .trace import DEFAULT_TRACE_CATEGORIES, TRACE_CATEGORIES, SpanTracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "diff_snapshots",
    "SIM", "HOST",
    "SpanTracer", "TRACE_CATEGORIES", "DEFAULT_TRACE_CATEGORIES",
    "configure", "disable", "metrics_enabled", "registry", "tracer",
    "write_trace", "harvest_machine", "parse_categories",
]
