"""Prometheus text exposition: render, parse, validate (stdlib only).

The experiment server's ``GET /metrics`` grew up serving a JSON
document; this module adds the standard text exposition format
(version 0.0.4) alongside it, so any off-the-shelf Prometheus scraper
can pull the service plane without an adapter.

* :func:`render` — a :class:`~repro.obs.metrics.MetricsRegistry` (plus
  optional plain counter dicts) to exposition text.  Histograms are
  converted from the registry's per-bucket counts to the cumulative
  ``le`` buckets Prometheus requires; series are emitted in sorted
  order so the output is byte-stable for a given registry state.
* :func:`parse` — a deliberately *strict* parser used by the test
  suite and the CI scrape-validation step: malformed names, labels,
  escapes, or values raise :class:`PromParseError` rather than being
  skipped.  No external dependency — the point is that CI can verify
  our exposition without installing a Prometheus client.
* :func:`validate` — structural checks on parsed output: every
  histogram's buckets must be cumulative/monotone, end in ``+Inf``,
  and agree with ``_count``.

Metric names are sanitised ``subsystem.quantity`` →
``repro_subsystem_quantity``; label values are escaped per the
exposition spec (backslash, double-quote, newline).
"""

from __future__ import annotations

import re
import typing as _t

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render", "parse", "validate", "PromParseError", "Sample"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: Default metric-name prefix for everything this repository exports.
PREFIX = "repro_"


class PromParseError(ValueError):
    """The text is not valid Prometheus exposition format."""


class Sample(_t.NamedTuple):
    """One parsed sample line."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


# -- rendering ---------------------------------------------------------------

def metric_name(name: str, *, prefix: str = PREFIX) -> str:
    """``serve.points_total`` -> ``repro_serve_points_total``."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not _NAME_RE.match(prefix + sanitized):
        raise PromParseError(f"cannot form a metric name from {name!r}")
    return prefix + sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def _labels_text(labels: _t.Sequence[tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(str(v))}"'
                     for k, v in labels)
    return "{" + inner + "}"


def _num(value: _t.Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        # repr keeps full precision and round-trips through float().
        return repr(value)
    if isinstance(value, int):
        return str(value)
    raise PromParseError(f"non-numeric sample value {value!r}")


def _bound_text(bound: float | int) -> str:
    return repr(bound) if isinstance(bound, float) else str(bound)


def render(registry: MetricsRegistry | None = None, *,
           extra_counters: _t.Mapping[str, _t.Any] | None = None,
           extra_gauges: _t.Mapping[str, _t.Any] | None = None,
           prefix: str = PREFIX) -> str:
    """Registry (+ plain dicts) -> Prometheus exposition text.

    ``extra_counters`` / ``extra_gauges`` map bare metric names (dots
    allowed) to numeric values — the server's hand-rolled ``stats``
    dict rides in this way without registering metric objects.
    Output is sorted by (metric name, labels) and ends with a newline.
    """
    # Group series by exposition name so each gets exactly one # TYPE.
    groups: dict[str, tuple[str, list]] = {}

    def _add(name: str, kind: str, labels, value) -> None:
        entry = groups.setdefault(name, (kind, []))
        if entry[0] != kind:
            raise PromParseError(
                f"metric {name} rendered as both {entry[0]} and {kind}")
        entry[1].append((tuple(labels), value))

    if registry is not None:
        for name, labels, metric in registry.items():
            pname = metric_name(name, prefix=prefix)
            if isinstance(metric, Counter):
                _add(pname, "counter", labels, metric.value)
            elif isinstance(metric, Gauge):
                value = metric.value
                if not isinstance(value, (int, float)):
                    continue  # non-numeric gauges are JSON-only
                _add(pname, "gauge", labels, value)
            elif isinstance(metric, Histogram):
                _add(pname, "histogram", labels, metric)
    for mapping, kind in ((extra_counters, "counter"),
                          (extra_gauges, "gauge")):
        for name, value in (mapping or {}).items():
            if isinstance(value, (int, float)):
                _add(metric_name(name, prefix=prefix), kind, (), value)

    lines: list[str] = []
    for pname in sorted(groups):
        kind, series = groups[pname]
        lines.append(f"# TYPE {pname} {kind}")
        for labels, value in sorted(series):
            if kind == "histogram":
                hist: Histogram = value
                running = 0
                for i, bound in enumerate(hist.bounds):
                    running += hist.bucket_counts[i]
                    le = (("le", _bound_text(bound)),)
                    lines.append(f"{pname}_bucket"
                                 f"{_labels_text(labels + le)} {running}")
                running += hist.bucket_counts[-1]
                inf = (("le", "+Inf"),)
                lines.append(f"{pname}_bucket"
                             f"{_labels_text(labels + inf)} {running}")
                lines.append(f"{pname}_sum{_labels_text(labels)} "
                             f"{_num(hist.total)}")
                lines.append(f"{pname}_count{_labels_text(labels)} "
                             f"{hist.count}")
            else:
                lines.append(f"{pname}{_labels_text(labels)} {_num(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- parsing -----------------------------------------------------------------

def _parse_labels(text: str, lineno: int) -> tuple[tuple[str, str], ...]:
    """``name="value",...`` (inside the braces) -> sorted label tuple."""
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.find("=", i)
        if eq < 0:
            raise PromParseError(f"line {lineno}: malformed labels "
                                 f"{text!r}")
        lname = text[i:eq].strip()
        if not _LABEL_RE.match(lname):
            raise PromParseError(f"line {lineno}: bad label name "
                                 f"{lname!r}")
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise PromParseError(f"line {lineno}: label value must be "
                                 f"double-quoted in {text!r}")
        value_chars: list[str] = []
        j = eq + 2
        while True:
            if j >= len(text):
                raise PromParseError(f"line {lineno}: unterminated label "
                                     f"value in {text!r}")
            ch = text[j]
            if ch == "\\":
                if j + 1 >= len(text):
                    raise PromParseError(f"line {lineno}: dangling escape")
                esc = text[j + 1]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    raise PromParseError(
                        f"line {lineno}: invalid escape \\{esc}")
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        labels.append((lname, "".join(value_chars)))
        i = j + 1
        if i < len(text):
            if text[i] != ",":
                raise PromParseError(f"line {lineno}: expected ',' "
                                     f"between labels in {text!r}")
            i += 1
    return tuple(sorted(labels))


def parse(text: str) -> tuple[list[Sample], dict[str, str]]:
    """Strict exposition parse -> ``(samples, declared types)``.

    Raises :class:`PromParseError` on any malformed line — unknown
    comment directives, bad metric/label names, broken escapes,
    non-float values, or a sample for a name whose ``# TYPE`` was
    declared *after* it.
    """
    samples: list[Sample] = []
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise PromParseError(
                    f"line {lineno}: unknown comment directive {line!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise PromParseError(
                        f"line {lineno}: bad TYPE line {line!r}")
                if not _NAME_RE.match(parts[2]):
                    raise PromParseError(
                        f"line {lineno}: bad metric name {parts[2]!r}")
                if parts[2] in types:
                    raise PromParseError(
                        f"line {lineno}: duplicate TYPE for {parts[2]}")
                types[parts[2]] = parts[3]
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise PromParseError(f"line {lineno}: unbalanced braces "
                                     f"in {line!r}")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close], lineno)
            rest = line[close + 1:].strip()
        else:
            name, _, rest = line.partition(" ")
            labels = ()
            rest = rest.strip()
        if not _NAME_RE.match(name):
            raise PromParseError(f"line {lineno}: bad metric name "
                                 f"{name!r}")
        fields = rest.split()
        if len(fields) not in (1, 2):  # optional timestamp
            raise PromParseError(f"line {lineno}: expected 'value "
                                 f"[timestamp]', got {rest!r}")
        try:
            value = float(fields[0])
        except ValueError:
            raise PromParseError(f"line {lineno}: non-float value "
                                 f"{fields[0]!r}")
        samples.append(Sample(name, labels, value))
    return samples, types


def _base_name(name: str, types: _t.Mapping[str, str]) -> str:
    """Histogram child series -> the declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[:-len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def validate(text: str) -> tuple[list[Sample], dict[str, str]]:
    """Parse and structurally validate an exposition document.

    Beyond :func:`parse`, asserts:

    * every sample belongs to a declared ``# TYPE`` family;
    * counter samples are finite and non-negative;
    * each histogram series has monotonically non-decreasing buckets in
      ascending ``le`` order, a terminal ``+Inf`` bucket, and a
      ``_count`` equal to the ``+Inf`` bucket.

    Returns the parsed ``(samples, types)`` on success.
    """
    samples, types = parse(text)
    hist_buckets: dict[tuple, list[tuple[float, float]]] = {}
    hist_counts: dict[tuple, float] = {}
    for name, labels, value in samples:
        family = _base_name(name, types)
        if family not in types:
            raise PromParseError(f"sample {name} has no # TYPE declaration")
        kind = types[family]
        if kind == "counter" and not value >= 0:
            raise PromParseError(f"counter {name} is negative: {value}")
        if kind == "histogram":
            bare = tuple(lv for lv in labels if lv[0] != "le")
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    raise PromParseError(f"{name} bucket missing le label")
                bound = float("inf") if le == "+Inf" else float(le)
                hist_buckets.setdefault((family, bare), []).append(
                    (bound, value))
            elif name.endswith("_count"):
                hist_counts[(family, bare)] = value
    for key, buckets in hist_buckets.items():
        family = key[0]
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            raise PromParseError(
                f"{family} buckets not in ascending le order: {bounds}")
        counts = [c for _, c in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            raise PromParseError(
                f"{family} buckets are not cumulative/monotone: {counts}")
        if bounds[-1] != float("inf"):
            raise PromParseError(f"{family} lacks a terminal +Inf bucket")
        declared = hist_counts.get(key)
        if declared is not None and declared != counts[-1]:
            raise PromParseError(
                f"{family} _count {declared} != +Inf bucket {counts[-1]}")
    return samples, types
