"""Idle-wave extraction: tracking one planted delay across the machine.

Afzal, Hager & Wellein (arXiv:1905.10603) showed that a single one-off
delay on one rank does not just stretch that rank's timeline — it
launches an *idle wave* that travels rank-to-rank through the
communication dependency graph.  In a perfectly quiet bulk-synchronous
run the wave propagates undamped at a finite speed set by the
collective's message pattern; background system noise supplies the
receiver-side slack that absorbs part of the delay at every hop, so
the wave's residual magnitude decays (roughly exponentially) with hop
distance, faster under noisier backgrounds.  This module measures all
of that from simulation output, with zero new instrumentation: the
input is the :meth:`~repro.obs.DependencyRecorder.edge_log` of two
runs of the *same* configuration — one baseline, one with a
:attr:`repro.faults.FaultPlan.one_off` delay planted at
``(source_rank, t0)``.

Method
------
Determinism makes the hard part trivial.  Both runs execute the exact
same program, so their edge logs are *structurally identical* — the
k-th completed receive wait on rank r is the same wait in both runs,
just possibly at a different time (:func:`match_edge_logs` verifies
this and pairs them 1:1).  The wave's measured arrival at a rank is
then simply the end time of that rank's first wait whose completion
shifted by at least ``threshold_ns``, and the residual delay there is
that shift.  Independently, :func:`propagate_delay` replays the causal
definition of the wave on the delayed log alone — a message carries
the wave iff it was sent at-or-after the wave's arrival at its sender
— giving a graph-predicted arrival time and a hop count (shortest
causal distance from the source) per rank.  Hop counts turn the
arrival and residual maps into two scalar fits:

* **speed** — least-squares slope of arrival time vs. hops, reported
  as ns/hop and hops/s (on a ring, one hop is one rank, so hops/s is
  the paper's ranks/s);
* **decay length** — least-squares slope of ln(residual) vs. hops;
  the decay length is ``-1/slope`` hops, or ``None`` when the wave is
  undamped (non-negative slope), as in a quiet run.

Everything is pure integer/float arithmetic over recorded state, so
results are exact functions of the seed — byte-identical across
reruns and across ``--workers`` process fan-out.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["WavefrontResult", "match_edge_logs", "propagate_delay",
           "extract_wavefront", "format_wavefront"]

#: Default arrival threshold: a wait must shift by at least this
#: fraction of the planted duration to count as the wave's arrival.
DEFAULT_THRESHOLD_FRACTION = 0.05


def match_edge_logs(baseline: dict, delayed: dict
                    ) -> dict[int, list[tuple[int, int, int, int]]]:
    """Pair the two runs' waits 1:1 by per-rank completion order.

    Returns ``{rank: [(baseline_end, delayed_end, src, sent_at), ...]}``
    for every rank, in completion order.  Raises :class:`ConfigError`
    if the logs are not structurally identical (different rank sets,
    wait counts, peer sequences, or operation sequences) — that means
    the two runs were *not* the same program, and any pairing would be
    meaningless.
    """
    b_waits, d_waits = baseline["waits"], delayed["waits"]
    if set(b_waits) != set(d_waits):
        raise ConfigError(
            "edge logs cover different rank sets: "
            f"{sorted(set(b_waits) ^ set(d_waits))} differ")
    out: dict[int, list[tuple[int, int, int, int]]] = {}
    for rank in sorted(b_waits):
        b_list, d_list = b_waits[rank], d_waits[rank]
        if len(b_list) != len(d_list):
            raise ConfigError(
                f"rank {rank}: {len(b_list)} baseline waits vs "
                f"{len(d_list)} delayed — runs are not the same program")
        pairs: list[tuple[int, int, int, int]] = []
        for k, (b, d) in enumerate(zip(b_list, d_list)):
            # (start, end, src, sent_at, delivered_at, op)
            if b[2] != d[2] or b[5] != d[5]:
                raise ConfigError(
                    f"rank {rank} wait {k}: baseline (src={b[2]}, "
                    f"op={b[5]}) vs delayed (src={d[2]}, op={d[5]}) — "
                    "runs are not the same program")
            pairs.append((b[1], d[1], d[2], d[3]))
        out[rank] = pairs
    return out


def propagate_delay(edge_log: dict, source_rank: int, t0_ns: int
                    ) -> tuple[dict[int, int], dict[int, int]]:
    """Causal wave replay on a single (delayed) edge log.

    The wave starts at ``(source_rank, t0_ns)``.  A receive wait
    carries it onward iff the wave has already arrived at the sender
    by the time the message was sent (``sent_at >= arrival[src]``);
    the receiver's arrival time is then the wait's end.  Returns
    ``(arrival_ns, hops)`` over the ranks the wave reaches, with
    ``arrival_ns[source_rank] == t0_ns`` and ``hops`` the causal hop
    distance of each rank's *earliest* arrival.

    A single chronological sweep over waits sorted by end time is
    exact: any wait that qualifies ends strictly after the wait that
    set its sender's arrival, so by the time the sweep reaches it the
    sender's arrival (if any) is already known and minimal.
    """
    events: list[tuple[int, int, int, int]] = []
    for rank, waits in edge_log["waits"].items():
        for start, end, src, sent_at, _delivered, _op in waits:
            events.append((end, rank, src, sent_at))
    events.sort()
    arrival: dict[int, int] = {source_rank: t0_ns}
    hops: dict[int, int] = {source_rank: 0}
    for end, rank, src, sent_at in events:
        if rank in arrival:
            continue  # earliest arrival already found
        src_arrival = arrival.get(src)
        if src_arrival is not None and sent_at >= src_arrival:
            arrival[rank] = end
            hops[rank] = hops[src] + 1
    return arrival, hops


@dataclass(frozen=True)
class WavefrontResult:
    """The measured and predicted wave from one planted delay.

    All per-rank maps cover only the ranks the wave reached (always
    including the source itself).
    """

    source_rank: int
    t0_ns: int
    duration_ns: int
    threshold_ns: int
    n_ranks: int
    #: Measured arrival: end time of the first shifted wait per rank.
    arrival_ns: dict[int, int] = field(default_factory=dict)
    #: Residual delay magnitude at arrival (the shift of that wait).
    residual_ns: dict[int, int] = field(default_factory=dict)
    #: Largest shift any of the rank's waits ever saw (all ranks, so a
    #: fully absorbed wave still leaves its sub-threshold footprint).
    peak_shift_ns: dict[int, int] = field(default_factory=dict)
    #: Program-completion shift per rank (all ranks).
    completion_shift_ns: dict[int, int] = field(default_factory=dict)
    #: Graph-predicted arrival from :func:`propagate_delay`.
    predicted_arrival_ns: dict[int, int] = field(default_factory=dict)
    #: Causal hop distance from the source (predicted wave).
    hops: dict[int, int] = field(default_factory=dict)

    @property
    def ranks_reached(self) -> int:
        """How many ranks saw a measurable arrival (incl. the source)."""
        return len(self.arrival_ns)

    def arrival_order(self) -> list[int]:
        """Ranks sorted by measured arrival time (source first; ties
        broken by rank id for determinism)."""
        return sorted(self.arrival_ns,
                      key=lambda r: (self.arrival_ns[r], r))

    @property
    def speed_ns_per_hop(self) -> float | None:
        """Least-squares slope of measured arrival vs. hop distance.

        ``None`` when fewer than two distinct hop counts were reached.
        """
        pts = [(self.hops[r], self.arrival_ns[r])
               for r in sorted(self.arrival_ns) if r in self.hops]
        return _slope(pts)

    @property
    def speed_hops_per_s(self) -> float | None:
        """The wave's propagation speed (ranks/s on a ring)."""
        per_hop = self.speed_ns_per_hop
        if per_hop is None or per_hop <= 0:
            return None
        return 1e9 / per_hop

    @property
    def decay_slope(self) -> float | None:
        """Least-squares slope of ln(residual) vs. hop distance.

        Every rank on the causal wave contributes a point: reached
        ranks at their arrival residual, unreached ranks at their
        (sub-threshold) peak shift — a fully absorbed wave therefore
        fits a steeply negative slope instead of disappearing from
        the fit.
        """
        pts = []
        for r in sorted(self.hops):
            resid = self.residual_ns.get(r)
            if resid is None:
                resid = self.peak_shift_ns.get(r, 0)
            pts.append((self.hops[r], math.log(max(resid, 1))))
        return _slope(pts)

    @property
    def decay_length_ranks(self) -> float | None:
        """Hops for the residual to fall by 1/e; ``None`` if undamped.

        A quiet lockstep run propagates the full delay forever (slope
        ~0 → undamped); background noise absorbs part of it per hop
        (negative slope → finite decay length).
        """
        slope = self.decay_slope
        if slope is None or slope >= 0:
            return None
        return -1.0 / slope

    @property
    def undamped(self) -> bool:
        """True when the wave reached *every* rank still carrying the
        full planted delay (to within the arrival threshold)."""
        floor = self.duration_ns - self.threshold_ns
        return (self.ranks_reached == self.n_ranks
                and all(r >= floor for r in self.residual_ns.values()))

    @property
    def effective_decay_length(self) -> float:
        """The comparable decay scalar: ``inf`` when undamped, else
        :attr:`decay_length_ranks` (``inf`` again when the fit finds
        no damping).  This is what E20's monotonicity check orders:
        quiet > fine-grained noise > coarse-grained noise."""
        if self.undamped:
            return math.inf
        length = self.decay_length_ranks
        return math.inf if length is None else length

    def as_dict(self) -> dict[str, _t.Any]:
        """JSON-friendly summary (rank keys stringified)."""
        return {
            "source_rank": self.source_rank,
            "t0_ns": self.t0_ns,
            "duration_ns": self.duration_ns,
            "threshold_ns": self.threshold_ns,
            "n_ranks": self.n_ranks,
            "ranks_reached": self.ranks_reached,
            "arrival_order": self.arrival_order(),
            "arrival_ns": {str(r): v for r, v in
                           sorted(self.arrival_ns.items())},
            "residual_ns": {str(r): v for r, v in
                            sorted(self.residual_ns.items())},
            "peak_shift_ns": {str(r): v for r, v in
                              sorted(self.peak_shift_ns.items())},
            "completion_shift_ns": {str(r): v for r, v in
                                    sorted(self.completion_shift_ns.items())},
            "predicted_arrival_ns": {str(r): v for r, v in
                                     sorted(self.predicted_arrival_ns.items())},
            "hops": {str(r): v for r, v in sorted(self.hops.items())},
            "speed_ns_per_hop": self.speed_ns_per_hop,
            "speed_hops_per_s": self.speed_hops_per_s,
            "decay_slope": self.decay_slope,
            "decay_length_ranks": self.decay_length_ranks,
            "effective_decay_length": (
                None if math.isinf(self.effective_decay_length)
                else self.effective_decay_length),
            "undamped": self.undamped,
        }


def _slope(points: list[tuple[float, float]]) -> float | None:
    """Ordinary least-squares slope; ``None`` without x-variance."""
    if len(points) < 2:
        return None
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in points)
    if var_x == 0:
        return None
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return cov / var_x


def extract_wavefront(baseline: dict, delayed: dict, *,
                      source_rank: int, t0_ns: int, duration_ns: int,
                      threshold_ns: int | None = None) -> WavefrontResult:
    """Measure the idle wave launched by one planted one-off delay.

    ``baseline`` and ``delayed`` are :meth:`DependencyRecorder.edge_log
    <repro.obs.DependencyRecorder.edge_log>` dicts from two runs of the
    same configuration, differing only in the
    :attr:`~repro.faults.FaultPlan.one_off` entry at ``(source_rank,
    t0_ns)`` of length ``duration_ns``.  ``threshold_ns`` (default 5%
    of the duration, at least 1 ns) separates wave arrivals from
    numeric dust.
    """
    if duration_ns <= 0:
        raise ConfigError(f"duration_ns must be > 0, got {duration_ns}")
    if threshold_ns is None:
        threshold_ns = max(
            1, int(duration_ns * DEFAULT_THRESHOLD_FRACTION))
    pairs = match_edge_logs(baseline, delayed)
    if source_rank not in pairs:
        raise ConfigError(
            f"source rank {source_rank} not present in the edge logs")

    arrival: dict[int, int] = {source_rank: t0_ns}
    residual: dict[int, int] = {source_rank: duration_ns}
    peak: dict[int, int] = {source_rank: duration_ns}
    for rank, waits in pairs.items():
        shifts = [d_end - b_end for b_end, d_end, _, _ in waits]
        if rank == source_rank:
            if shifts:
                peak[rank] = max(peak[rank], max(shifts))
            continue
        for (_b_end, d_end, _, _), shift in zip(waits, shifts):
            if shift >= threshold_ns:
                arrival[rank] = d_end
                residual[rank] = shift
                break
        if shifts:
            peak[rank] = max(shifts)

    completion_shift = {
        rank: delayed["completions"][rank] - baseline["completions"][rank]
        for rank in sorted(baseline["completions"])}
    predicted, hops = propagate_delay(delayed, source_rank, t0_ns)
    return WavefrontResult(
        source_rank=source_rank, t0_ns=t0_ns, duration_ns=duration_ns,
        threshold_ns=threshold_ns, n_ranks=len(pairs),
        arrival_ns=arrival, residual_ns=residual, peak_shift_ns=peak,
        completion_shift_ns=completion_shift,
        predicted_arrival_ns=predicted, hops=hops)


def format_wavefront(result: WavefrontResult) -> str:
    """A human-readable per-rank wave table plus the fitted scalars."""
    from ..analysis import format_table
    rows = []
    for rank in result.arrival_order():
        rows.append([
            str(rank),
            str(result.hops.get(rank, "-")),
            f"{result.arrival_ns[rank]:,}",
            f"{result.residual_ns[rank]:,}",
            f"{result.peak_shift_ns.get(rank, 0):,}",
        ])
    table = format_table(
        ["rank", "hops", "arrival_ns", "residual_ns", "peak_shift_ns"],
        rows)
    per_hop = result.speed_ns_per_hop
    decay = result.decay_length_ranks
    lines = [
        f"idle wave from rank {result.source_rank} "
        f"(t0={result.t0_ns:,} ns, duration={result.duration_ns:,} ns)",
        table,
        f"reached {result.ranks_reached}/{result.n_ranks} ranks",
        ("speed: n/a" if per_hop is None else
         f"speed: {per_hop:,.0f} ns/hop "
         f"({result.speed_hops_per_s:,.0f} hops/s)"),
        ("decay: undamped" if decay is None else
         f"decay length: {decay:.2f} hops"),
    ]
    return "\n".join(lines)
