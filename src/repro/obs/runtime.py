"""Process-wide observability state and machine harvesting.

Mirrors :class:`repro.harness.ExecutionPolicy`: experiments and the
:class:`~repro.core.Machine` stay pure, and the CLI (or a test) flips
one process-global switch::

    from repro import obs
    obs.configure(metrics=True, trace="out.json",
                  trace_categories=["net", "mpi"])
    ... run experiments ...
    print(obs.registry().render())
    obs.write_trace()

Everything is **off by default** and the instrumentation points are
gated so the disabled path costs at most one attribute test — results
are byte-identical with telemetry on or off either way, because no
metric or trace read ever feeds back into simulation decisions (the
no-op property ``tests/test_determinism.py`` asserts).

Note on process fan-out: the state is per-process.  Sweeps run with
``--workers N`` collect simulation-level metrics inside each worker;
the parent process still aggregates executor-level metrics (timings,
cache hits) and emits sweep spans, but per-sim counters from workers
are not merged back.  Serial runs (the default) see everything.
"""

from __future__ import annotations

import contextlib
import typing as _t

from ..errors import ConfigError
from . import oplog as _oplog
from .metrics import DELIVERY_LATENCY_BOUNDS, HOST, MetricsRegistry
from .trace import TRACE_CATEGORIES, SpanTracer

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.machine import Machine

__all__ = ["configure", "disable", "metrics_enabled", "critpath_enabled",
           "det_check_enabled",
           "registry", "tracer", "scoped_tracer", "write_trace",
           "harvest_machine", "harvest_points", "harvest_sweep_stats",
           "record_phase_seconds", "parse_categories"]

#: Sweep-point wall-time bounds in seconds.
POINT_WALL_BOUNDS = (0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


class _ObsState:
    """The one per-process observability singleton."""

    def __init__(self) -> None:
        self.metrics_on = False
        self.registry = MetricsRegistry()
        self.tracer: SpanTracer | None = None
        self.trace_path: str | None = None
        #: Cross-node dependency recording for critical-path
        #: attribution (see :mod:`repro.obs.critpath`).  Machines also
        #: honour a per-config switch; this is the process-wide one the
        #: CLI's ``--critical-path`` flips.
        self.critpath_on = False
        #: Determinism spot-check: every machine folds its scheduled
        #: ``(time, priority, seq)`` tuples into an order-sensitive
        #: checksum attached to ``RunResult.meta["det_check"]``
        #: (asserted serial == workers by tests/test_determinism.py).
        self.det_check_on = False


_STATE = _ObsState()


def parse_categories(spec: str | None) -> list[str] | None:
    """CLI ``--trace-categories net,mpi`` -> category list.

    ``None``/empty means the tracer default (everything except the
    per-event ``sim`` firehose); the literal ``"all"`` enables every
    category including ``sim``.
    """
    if spec is None or not spec.strip():
        return None
    if spec.strip().lower() == "all":
        return list(TRACE_CATEGORIES)
    return [c.strip() for c in spec.split(",") if c.strip()]


def configure(*, metrics: bool | None = None,
              trace: str | bool | None = None,
              trace_categories: _t.Iterable[str] | str | None = None,
              trace_cap: int = 200_000,
              critical_path: bool | None = None,
              det_check: bool | None = None) -> None:
    """Turn telemetry on for this process.

    Parameters
    ----------
    metrics:
        Enable (or, with ``False``, disable) metrics collection.
    trace:
        Output path for Chrome trace JSON (written by
        :func:`write_trace`), or ``True`` for an in-memory-only tracer.
        Enabling tracing implicitly enables metrics.
    trace_categories:
        Categories to record (list or comma-string; ``None`` = all).
    trace_cap:
        Tracer ring-buffer capacity.
    critical_path:
        Record cross-node dependency edges on every machine built in
        this process and attach the critical-path attribution to run
        results (``RunResult.meta["critical_path"]``).
    det_check:
        Seed an order-sensitive checksum of every scheduled
        ``(time, priority, seq)`` tuple into
        ``RunResult.meta["det_check"]`` — cheap runtime evidence that
        two runs scheduled identically (sweeps forward the switch into
        worker processes, so serial and ``--workers`` runs are
        directly comparable).
    """
    if metrics is not None:
        _STATE.metrics_on = bool(metrics)
    if critical_path is not None:
        _STATE.critpath_on = bool(critical_path)
    if det_check is not None:
        _STATE.det_check_on = bool(det_check)
    if trace:
        if isinstance(trace_categories, str):
            trace_categories = parse_categories(trace_categories)
        _STATE.tracer = SpanTracer(trace_categories, cap=trace_cap)
        _STATE.trace_path = trace if isinstance(trace, str) else None
        _STATE.metrics_on = True
    elif trace is not None:  # trace=False / "" -> tracing off
        _STATE.tracer = None
        _STATE.trace_path = None


def disable() -> None:
    """Reset to the zero-telemetry default (fresh registry, no tracer,
    ring-only oplog)."""
    _STATE.metrics_on = False
    _STATE.registry = MetricsRegistry()
    _STATE.tracer = None
    _STATE.trace_path = None
    _STATE.critpath_on = False
    _STATE.det_check_on = False
    _oplog.reset()


def metrics_enabled() -> bool:
    return _STATE.metrics_on


def critpath_enabled() -> bool:
    """True when cross-node dependency recording is on process-wide."""
    return _STATE.critpath_on


def det_check_enabled() -> bool:
    """True when the scheduled-event checksum is on process-wide."""
    return _STATE.det_check_on


def registry() -> MetricsRegistry:
    """The process-wide registry (always importable; only *fed* when
    :func:`metrics_enabled`)."""
    return _STATE.registry


def tracer() -> SpanTracer | None:
    """The active tracer, or ``None`` when tracing is off."""
    return _STATE.tracer


@contextlib.contextmanager
def scoped_tracer(tr: SpanTracer) -> _t.Iterator[SpanTracer]:
    """Install ``tr`` as the active tracer for the duration of a block.

    Used by sweep workers to trace *one* simulation without flipping
    process-wide telemetry on: the previous tracer (usually ``None``)
    and the metrics flag are restored on exit, so pooled worker
    processes carry no trace state between points.  Machines capture
    the active tracer at build time, so the machine must be built
    inside the block.
    """
    prev_tracer = _STATE.tracer
    prev_metrics = _STATE.metrics_on
    _STATE.tracer = tr
    try:
        yield tr
    finally:
        _STATE.tracer = prev_tracer
        _STATE.metrics_on = prev_metrics


def write_trace(path: str | None = None) -> tuple[str, int]:
    """Write the active tracer to ``path`` (or the configured path).

    Returns ``(path, events_written)``.
    """
    tr = _STATE.tracer
    if tr is None:
        raise ConfigError("tracing is not enabled (obs.configure(trace=...))")
    path = path or _STATE.trace_path
    if not path:
        raise ConfigError("no trace output path configured")
    return path, tr.write(path)


# -- harvesting ------------------------------------------------------------

def harvest_machine(machine: "Machine") -> None:
    """Fold one finished machine's counters into the global registry.

    Called by :func:`repro.core.run_experiment` after the simulation
    completes (a no-op unless metrics are enabled).  Everything read
    here is sim-derived, so the resulting sim-scope snapshot is as
    deterministic as the run itself.
    """
    if not _STATE.metrics_on:
        return
    reg = _STATE.registry
    env = machine.env
    reg.counter("sim.events_processed").inc(env.events_processed)
    reg.counter("sim.events_scheduled").inc(env.events_scheduled)
    reg.counter("sim.events_cancelled_discarded").inc(env.events_cancelled)
    reg.gauge("sim.heap_depth_peak").track_max(env.max_heap_depth)
    reg.gauge("sim.time_ns").track_max(env.now)
    reg.counter("sim.runs").inc()

    net = machine.network
    reg.counter("net.messages_total").inc(net.messages_transferred)
    reg.counter("net.bytes_total").inc(net.bytes_transferred)
    reg.counter("net.messages_dropped").inc(net.messages_dropped)
    reg.counter("net.duplicates_injected").inc(net.duplicates_injected)
    reg.gauge("net.inflight_peak").track_max(net.inflight_peak)
    reg.gauge("net.channel_backlog_peak").track_max(net.channel_backlog_peak)
    lat = reg.histogram("net.delivery_latency_ns",
                        bounds=DELIVERY_LATENCY_BOUNDS)
    for i, c in enumerate(net.latency_bucket_counts):
        if c:
            # Re-observing bucket-by-bucket keeps Network free of any
            # obs import; bounds here and in Network must stay in sync.
            lat.bucket_counts[i] += c
            lat.count += c
    lat.total += net.latency_total_ns

    for op, n in sorted(machine.mpi.op_totals.items()):
        reg.counter("mpi.ops_total", op=op).inc(n)
    transport = machine.mpi.transport
    if transport is not None:
        stats = transport.stats
        reg.counter("faults.retries_total").inc(stats.total_retries)
        reg.counter("faults.duplicates_suppressed_total").inc(
            stats.total_duplicates_suppressed)
        reg.counter("faults.acks_sent_total").inc(
            sum(stats.acks_sent.values()))
        reg.counter("faults.failures_total").inc(stats.failures)


def harvest_points(timings: _t.Iterable[_t.Any], n_failures: int) -> None:
    """Fold one executor fan-out's per-point outcomes into the registry
    (:class:`~repro.parallel.PointTiming` objects; wall times are
    host-scoped)."""
    if not _STATE.metrics_on:
        return
    reg = _STATE.registry
    hist = reg.histogram("exec.point_wall_s", scope=HOST,
                         bounds=POINT_WALL_BOUNDS)
    hits = misses = 0
    for timing in timings:
        if timing.cached:
            hits += 1
        else:
            misses += 1
            hist.observe(round(timing.elapsed_s, 6))
    reg.counter("exec.points_total").inc(hits + misses)
    reg.counter("exec.cache_hits").inc(hits)
    reg.counter("exec.cache_misses").inc(misses)
    reg.counter("exec.point_failures").inc(n_failures)


def harvest_sweep_stats(stats: _t.Any) -> None:
    """Record sweep-level wall-clock gauges from a
    :class:`~repro.parallel.SweepStats` (per-point counters were
    already folded in by :func:`harvest_points`)."""
    if not _STATE.metrics_on:
        return
    reg = _STATE.registry
    reg.gauge("exec.workers", scope=HOST).set(stats.workers)
    reg.gauge("exec.wall_s", scope=HOST).set(round(stats.wall_s, 6))
    if stats.wall_s > 0 and stats.workers:
        util = stats.simulated_s / (stats.wall_s * stats.workers)
        reg.gauge("exec.worker_utilization", scope=HOST).set(round(util, 4))


def record_phase_seconds(phase: str, seconds: float) -> None:
    """Harness phase timing (``phase`` is an experiment id or stage
    name); host-scoped wall clock."""
    if not _STATE.metrics_on:
        return
    _STATE.registry.gauge("harness.phase_s", scope=HOST,
                          phase=phase).set(round(seconds, 6))
