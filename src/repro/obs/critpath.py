"""Cross-node critical-path reconstruction and slowdown attribution.

The paper's central claim is causal: kernel activity on *one* node
explains slowdown of the *whole* application, because collectives
serialize every rank behind the last arriver.  Per-node attribution
(:mod:`repro.ktau.attribution`) measures the local theft; this module
follows the theft across the machine.  Two pieces:

* :class:`DependencyRecorder` — a passive, per-machine recorder of the
  causal edges that matter: every completed receive wait (which covers
  point-to-point traffic *and* every collective round, since the
  collectives are built from send/recv), every transient CPU steal
  (NIC receive processing etc.), first-transmission times for
  retransmitted messages, and per-node program start/finish times.  It
  is attached by :class:`~repro.core.Machine` only when critical-path
  recording is enabled, so the default machine pays nothing.
* :func:`compute_critical_path` — an offline backward walk from the
  last-finishing rank.  At each step the path is either *executing*
  locally (charged nanosecond-by-nanosecond to the kernel activities
  and injected noise overlapping the window, remainder = genuine
  ``compute``), or *gated* on a message (a ``network`` segment from
  injection to delivery on the wire, jumping the walk to the sender),
  optionally preceded by a ``fault-retries`` segment when the arriving
  copy was a retransmission.  Segments telescope: their durations sum
  *exactly* to the walk's end time minus its origin, which is the
  property E16 verifies against the measured makespan.

The output is a :class:`CriticalPathResult` — the per-node, per-source
"who stole the makespan" table — and :func:`diff_critical_paths`, the
quiet-vs-noisy comparison that charges a makespan *gap* to named
sources.

Determinism: everything recorded is simulation state, so the edge set,
the walk, and the resulting tables are exact functions of the seed —
reproducible across reruns and across ``--workers`` process fan-out
(the result rides back to the parent as a plain dict in
``RunResult.meta``).
"""

from __future__ import annotations

import typing as _t
from bisect import bisect_left
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..mpi.constants import op_from_tag

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.node import Node
    from ..net.message import Message
    from ..sim import Environment

__all__ = ["WaitRecord", "DependencyRecorder", "PathSegment",
           "CriticalPathResult", "compute_critical_path",
           "diff_critical_paths", "format_critical_path", "format_diff",
           "SOURCE_NETWORK", "SOURCE_RETRY", "SOURCE_COMPUTE"]

#: Structural charge buckets (everything else is a named kernel
#: activity or injected-noise source, i.e. *noise*).
SOURCE_NETWORK = "network"
SOURCE_RETRY = "fault-retries"
SOURCE_COMPUTE = "compute"
_STRUCTURAL = frozenset((SOURCE_NETWORK, SOURCE_RETRY, SOURCE_COMPUTE))


@dataclass(slots=True)
class WaitRecord:
    """One completed receive wait on one node.

    Message fields are copied at completion time: a duplicated wire
    copy of the same :class:`~repro.net.Message` object may overwrite
    ``delivered_at`` later, and the record must describe the copy that
    actually released the wait.

    Not frozen: this is the recorder's hottest allocation (one per
    completed receive), and a frozen dataclass pays
    ``object.__setattr__`` per field.  Nothing mutates records after
    creation.
    """

    node: int           #: waiting (destination) node id
    start: int          #: wait entry time, ns
    end: int            #: wait completion time (== delivery for gated waits)
    src: int            #: sending node id
    sent_at: int        #: injection time of the matched copy
    delivered_at: int   #: handoff time of the matched copy
    size: int
    proto_id: int       #: reliable-transport id (-1 on reliable fabrics)
    attempt: int        #: 0 = original transmission, >0 = retransmission
    op: str             #: collective op in progress, or "p2p"

    @property
    def gated(self) -> bool:
        """True when the wait actually blocked on the wire (the message
        had not yet arrived when the wait began)."""
        return self.end > self.start


class DependencyRecorder:
    """Passive collector of cross-node causal edges for one machine.

    Hooked in by the machine builder when critical-path recording is
    on; every hook is O(1) per event (an append or a dict write), so
    recording stays well under the observer-perturbation budget.
    """

    def __init__(self, env: "Environment", nodes: _t.Sequence["Node"]) -> None:
        self.env = env
        self.nodes = list(nodes)
        #: node -> completed receive waits, in completion order (one
        #: application context per CPU, so per-node waits never overlap
        #: and append order == time order).  Pre-built per node so the
        #: hot path is a plain indexed append.
        self.waits: dict[int, list[WaitRecord]] = {
            node.node_id: [] for node in self.nodes}
        #: node -> transient CPU steals as (start, duration, source).
        self.transients: dict[int, list[tuple[int, int, str]]] = {}
        #: (src, dst, proto_id) -> first injection time (retry charging).
        self.first_sent: dict[tuple[int, int, int], int] = {}
        #: (src, dst, proto_id, attempt) retransmissions, in order.
        self.retries: list[tuple[int, int, int, int, int]] = []
        #: node -> rank-program start / finish time.
        self.starts: dict[int, int] = {}
        self.completions: dict[int, int] = {}
        for node in self.nodes:
            node.cpu.add_steal_listener(
                self._make_steal_listener(node.node_id))

    # -- hooks (called from the sim hot path) ------------------------------
    def _make_steal_listener(self, node_id: int):
        transients = self.transients.setdefault(node_id, [])

        def on_steal(start: int, duration: int, source: str) -> None:
            transients.append((start, duration, source))

        return on_steal

    def record_wait(self, node: int, start: int, end: int,
                    msg: "Message") -> None:
        """One receive wait completed (called from ``Request.wait``).

        The operation label is decoded from the wire tag
        (:func:`repro.mpi.constants.op_from_tag`) rather than threaded
        through the call chain — the reserved collective tag space
        already says which operation the message belongs to, and
        decoding here keeps the send/recv hot path free of label
        bookkeeping.
        """
        self.waits[node].append(WaitRecord(
            node, start, end, msg.src, msg.sent_at, msg.delivered_at,
            msg.size, msg.proto_id, msg.attempt, op_from_tag(msg.tag)))

    def record_send(self, msg: "Message") -> None:
        """First transmission of a protocol message (reliable transport)."""
        self.first_sent.setdefault((msg.src, msg.dst, msg.proto_id),
                                   self.env.now)

    def record_retry(self, msg: "Message") -> None:
        """A retransmission hit the wire (reliable transport)."""
        self.retries.append((self.env.now, msg.src, msg.dst,
                             msg.proto_id, msg.attempt))

    def note_start(self, node: int) -> None:
        self.starts.setdefault(node, self.env.now)

    def note_completion(self, node: int) -> None:
        self.completions[node] = self.env.now

    # -- introspection -----------------------------------------------------
    @property
    def n_edges(self) -> int:
        return sum(len(w) for w in self.waits.values())

    def edge_signature(self) -> tuple:
        """A deterministic, comparable summary of the recorded edge set
        (used by the determinism tests; excludes process-global ids)."""
        out = []
        for node in sorted(self.waits):
            for w in self.waits[node]:
                out.append((w.node, w.start, w.end, w.src, w.sent_at,
                            w.delivered_at, w.size, w.attempt, w.op))
        return tuple(out)

    def edge_log(self) -> dict[str, _t.Any]:
        """The recorded dependency edges as a compact, picklable dict.

        The traversable form of the recorder: per-node completed
        receive waits as ``(start, end, src, sent_at, delivered_at,
        op)`` tuples in completion order, plus per-node program
        start/finish times.  This is what rides across ``--workers``
        process fan-out in ``RunResult.meta["edge_log"]`` (see
        :attr:`repro.core.ExperimentConfig.record_edges`) and what the
        idle-wave extractor (:mod:`repro.obs.wavefront`) walks.
        """
        return {
            "waits": {node: [(w.start, w.end, w.src, w.sent_at,
                              w.delivered_at, w.op) for w in ws]
                      for node, ws in sorted(self.waits.items())},
            "starts": dict(sorted(self.starts.items())),
            "completions": dict(sorted(self.completions.items())),
        }


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One contiguous stretch of the critical path on one node.

    ``kind`` is ``"exec"`` (the rank was executing), ``"network"``
    (the path was on the wire), or ``"fault-retries"`` (the path was
    waiting out a retransmission timeout).  ``charges`` splits the
    segment's duration by cause; exec segments may also carry an
    over-window overlap (see :meth:`CriticalPathResult.by_source`).
    """

    node: int
    start: int
    end: int
    kind: str
    charges: tuple[tuple[str, int], ...]
    op: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class CriticalPathResult:
    """The reconstructed critical path plus its charge tables."""

    segments: list[PathSegment]
    origin_ns: int
    end_ns: int
    end_node: int
    by_source: dict[str, int] = field(default_factory=dict)
    by_node: dict[int, dict[str, int]] = field(default_factory=dict)
    net_by_op: dict[str, int] = field(default_factory=dict)
    n_net_hops: int = 0
    n_retry_hops: int = 0
    n_edges: int = 0

    @property
    def total_ns(self) -> int:
        """Sum of segment durations (telescopes to end - origin)."""
        return sum(s.duration for s in self.segments)

    @property
    def noise_ns(self) -> int:
        """Critical-path time charged to named kernel/injected sources
        (everything that is not compute, network, or retry waiting)."""
        return sum(ns for src, ns in self.by_source.items()
                   if src not in _STRUCTURAL)

    def charged_ns(self, source: str) -> int:
        return self.by_source.get(source, 0)

    def as_dict(self) -> dict[str, _t.Any]:
        """Plain-dict form (JSON-able, pickles across sweep workers)."""
        return {
            "origin_ns": self.origin_ns,
            "end_ns": self.end_ns,
            "end_node": self.end_node,
            "total_ns": self.total_ns,
            "noise_ns": self.noise_ns,
            "n_segments": len(self.segments),
            "n_net_hops": self.n_net_hops,
            "n_retry_hops": self.n_retry_hops,
            "n_edges": self.n_edges,
            "by_source": dict(sorted(self.by_source.items())),
            "by_node": {str(node): dict(sorted(charges.items()))
                        for node, charges in sorted(self.by_node.items())},
            "net_by_op": dict(sorted(self.net_by_op.items())),
        }


def _charge_exec(node: "Node", transients: list[tuple[int, int, str]],
                 starts: list[int], a: int, b: int) -> dict[str, int]:
    """Charge an exec window ``[a, b)`` on ``node`` by cause.

    Background noise comes from the node's analytic noise streams
    (exact per source); transient steals from the recorder's own log;
    the remainder is genuine application/progress work (``compute``).
    Overlapping steals are each charged in full — the same per-activity
    convention as :meth:`repro.kernel.cpu.CPU.stolen_breakdown` — so in
    pathological overlap the named charges can exceed the window; the
    compute residual is clamped at zero.
    """
    charges = node.cpu.stolen_breakdown(a, b)
    if transients:
        # starts is the parallel sorted start list for bisect; steals
        # are recorded in time order so it is simply a column view.
        i = bisect_left(starts, a)
        # Step back once: a steal starting before `a` may still overlap.
        if i > 0:
            i -= 1
        for start, duration, source in transients[i:]:
            if start >= b:
                break
            overlap = min(b, start + duration) - max(a, start)
            if overlap > 0:
                charges[source] = charges.get(source, 0) + overlap
    stolen = sum(charges.values())
    charges[SOURCE_COMPUTE] = max(0, (b - a) - stolen)
    return charges


def compute_critical_path(recorder: DependencyRecorder) -> CriticalPathResult:
    """Walk backwards from the last rank to finish, reconstructing the
    chain of local execution, message waits, and retransmission stalls
    that determined the makespan."""
    if not recorder.completions:
        raise ConfigError("critical path: no completed rank programs "
                          "recorded (did the machine run to completion?)")
    end_node = max(recorder.completions,
                   key=lambda n: (recorder.completions[n], n))
    end_ns = recorder.completions[end_node]

    # Per-node cursor into the wait list (we only ever move backwards).
    ptr = {node: len(waits) for node, waits in recorder.waits.items()}
    # Pre-extract transient start columns for bisecting.
    transients = recorder.transients
    t_starts = {node: [s for s, _d, _src in recs]
                for node, recs in transients.items()}

    segments: list[PathSegment] = []
    by_source: dict[str, int] = {}
    by_node: dict[int, dict[str, int]] = {}
    net_by_op: dict[str, int] = {}
    n_net = n_retry = 0

    def charge(node: int, source: str, ns: int) -> None:
        if ns <= 0:
            return
        by_source[source] = by_source.get(source, 0) + ns
        per = by_node.setdefault(node, {})
        per[source] = per.get(source, 0) + ns

    def emit_exec(node: int, a: int, b: int) -> None:
        if b <= a:
            return
        charges = _charge_exec(recorder.nodes[node],
                               transients.get(node, ()),
                               t_starts.get(node, ()), a, b)
        for source, ns in charges.items():
            charge(node, source, ns)
        segments.append(PathSegment(node, a, b, "exec",
                                    tuple(sorted(charges.items()))))

    node = end_node
    t = end_ns
    origin = 0
    while True:
        waits = recorder.waits.get(node, ())
        i = ptr.get(node, 0)
        # Skip waits that completed after the current path time; the
        # walk only ever revisits a node at earlier instants, so the
        # cursor moves monotonically and never rescans.
        while i > 0 and waits[i - 1].end > t:
            i -= 1
        if i == 0:
            # No earlier dependency: local execution back to program
            # start terminates the walk.
            origin = recorder.starts.get(node, 0)
            ptr[node] = 0
            emit_exec(node, origin, t)
            break
        w = waits[i - 1]
        ptr[node] = i - 1
        emit_exec(node, w.end, t)
        if not w.gated:
            # The message had already arrived when the wait began: the
            # wait cost nothing; keep walking locally from its start.
            t = w.start
            continue
        # The wait blocked until delivery: the path was on the wire
        # from the matched copy's injection to its handoff.
        n_net += 1
        wire = w.delivered_at - w.sent_at
        charge(w.node, SOURCE_NETWORK, wire)
        net_by_op[w.op] = net_by_op.get(w.op, 0) + wire
        segments.append(PathSegment(w.node, w.sent_at, w.delivered_at,
                                    "network",
                                    ((SOURCE_NETWORK, wire),), op=w.op))
        t = w.sent_at
        node = w.src
        if w.attempt > 0:
            # The copy that got through was a retransmission: the time
            # between the original injection and this copy's injection
            # was spent waiting out ack timeouts — charge it to the
            # fault layer on the sender, and continue the walk from the
            # *original* send (that is when the sender was last busy).
            first = recorder.first_sent.get((w.src, w.node, w.proto_id),
                                            w.sent_at)
            stall = w.sent_at - first
            if stall > 0:
                n_retry += 1
                charge(w.src, SOURCE_RETRY, stall)
                segments.append(PathSegment(w.src, first, w.sent_at,
                                            "fault-retries",
                                            ((SOURCE_RETRY, stall),),
                                            op=w.op))
                t = first

    segments.reverse()
    return CriticalPathResult(
        segments=segments, origin_ns=origin, end_ns=end_ns,
        end_node=end_node, by_source=by_source, by_node=by_node,
        net_by_op=net_by_op, n_net_hops=n_net, n_retry_hops=n_retry,
        n_edges=recorder.n_edges)


# -- quiet-vs-noisy diff ---------------------------------------------------

def diff_critical_paths(quiet: _t.Mapping[str, _t.Any],
                        noisy: _t.Mapping[str, _t.Any]
                        ) -> dict[str, _t.Any]:
    """Charge a quiet-vs-noisy makespan gap to per-source deltas.

    Accepts the plain-dict form (:meth:`CriticalPathResult.as_dict`,
    which is what rides in ``RunResult.meta["critical_path"]``).
    Returns ``gap_ns``, per-source ``delta_ns`` (noisy minus quiet,
    sorted by magnitude), the fraction of the gap charged to noise
    sources, and the top thief.
    """
    q_src = quiet["by_source"]
    n_src = noisy["by_source"]
    deltas = {src: n_src.get(src, 0) - q_src.get(src, 0)
              for src in sorted(set(q_src) | set(n_src))}
    deltas = {src: d for src, d in deltas.items() if d != 0}
    gap = noisy["total_ns"] - quiet["total_ns"]
    noise_delta = sum(d for src, d in deltas.items()
                      if src not in _STRUCTURAL)
    thief = max((src for src in deltas if src not in _STRUCTURAL),
                key=lambda s: deltas[s], default=None)
    return {
        "gap_ns": gap,
        "delta_ns": dict(sorted(deltas.items(),
                                key=lambda kv: (-abs(kv[1]), kv[0]))),
        "noise_delta_ns": noise_delta,
        "noise_share_of_gap": (noise_delta / gap) if gap else 0.0,
        "top_thief": thief,
        "top_thief_ns": deltas.get(thief, 0) if thief else 0,
    }


# -- rendering -------------------------------------------------------------

def _fmt_ms(ns: int | float) -> str:
    return f"{ns / 1e6:.3f}"


def format_critical_path(cp: _t.Mapping[str, _t.Any]) -> str:
    """Plain-text "who stole the makespan" table from the dict form."""
    from ..analysis import format_table

    total = cp["total_ns"] or 1
    headers = ["node", "source", "ms", "% of path"]
    rows: list[list[_t.Any]] = []
    for node, charges in cp["by_node"].items():
        for source, ns in sorted(charges.items(),
                                 key=lambda kv: (-kv[1], kv[0])):
            rows.append([node, source, _fmt_ms(ns),
                         round(100 * ns / total, 2)])
    title = (f"critical path: {_fmt_ms(cp['total_ns'])} ms over "
             f"{cp['n_segments']} segments ({cp['n_net_hops']} network "
             f"hops), ends on node {cp['end_node']}")
    lines = [format_table(headers, rows, title=title)]
    summary = ", ".join(f"{src}={_fmt_ms(ns)}ms"
                        for src, ns in sorted(cp["by_source"].items(),
                                              key=lambda kv: -kv[1]))
    lines.append(f"by source: {summary}\n")
    if cp["net_by_op"]:
        ops = ", ".join(f"{op}={_fmt_ms(ns)}ms"
                        for op, ns in sorted(cp["net_by_op"].items(),
                                             key=lambda kv: -kv[1]))
        lines.append(f"network time by operation: {ops}\n")
    return "".join(lines)


def format_diff(diff: _t.Mapping[str, _t.Any]) -> str:
    """Plain-text quiet-vs-noisy gap attribution."""
    lines = [f"makespan gap vs quiet: {_fmt_ms(diff['gap_ns'])} ms; "
             f"{100 * diff['noise_share_of_gap']:.1f}% charged to noise"]
    for src, d in diff["delta_ns"].items():
        sign = "+" if d >= 0 else ""
        lines.append(f"  {src}: {sign}{_fmt_ms(d)} ms")
    if diff["top_thief"]:
        lines.append(f"top thief: {diff['top_thief']} "
                     f"(+{_fmt_ms(diff['top_thief_ns'])} ms)")
    return "\n".join(lines) + "\n"
