"""Experiment registry: look experiments up by id, run them in bulk.

When :mod:`repro.obs` telemetry is enabled, :func:`run_experiment`
also times each experiment as a harness *phase* (wall clock,
host-scoped), attaches the per-experiment metrics delta to
``report.metrics``, and emits a ``harness``-category span per
experiment into the active trace.
"""

from __future__ import annotations

import time
import typing as _t

from ..errors import ConfigError
from ..obs import runtime as _obs
from ..obs.metrics import diff_snapshots
from .base import ExperimentReport, Scale
from .experiments import (
    e1_ftq_spectra,
    e2_kernel_profile,
    e3_collective_scaling,
    e4_app_scaling,
    e5_absorption_table,
    e6_attribution,
    e7_observer_overhead,
    e8_nic_coupling,
    e9_synchronization,
    e10_analytic_model,
    e11_core_isolation,
    e12_algorithm_ablation,
    e13_network_substrate,
    e14_indirect_vs_direct,
    e15_fault_resilience,
    e16_critical_path,
    e17_extreme_scale,
    e20_idle_wave,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "experiment_ids"]

_MODULES = (
    e1_ftq_spectra, e2_kernel_profile, e3_collective_scaling,
    e4_app_scaling, e5_absorption_table, e6_attribution,
    e7_observer_overhead, e8_nic_coupling, e9_synchronization,
    e10_analytic_model,
    e11_core_isolation,
    e12_algorithm_ablation,
    e13_network_substrate,
    e14_indirect_vs_direct,
    e15_fault_resilience,
    e16_critical_path,
    e17_extreme_scale,
    e20_idle_wave,
)

#: id -> (title, run callable).
EXPERIMENTS: dict[str, tuple[str, _t.Callable[..., ExperimentReport]]] = {
    mod.EXPERIMENT_ID: (mod.TITLE, mod.run) for mod in _MODULES
}


def experiment_ids() -> list[str]:
    """All experiment ids in numeric order."""
    return sorted(EXPERIMENTS, key=lambda e: int(e[1:]))


def run_experiment(experiment_id: str, scale: Scale = "small",
                   **kwargs: _t.Any) -> ExperimentReport:
    """Run one experiment by id."""
    try:
        _title, fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {experiment_ids()}") from None
    if not _obs.metrics_enabled():
        return fn(scale, **kwargs)

    before = _obs.registry().snapshot()
    t0 = time.perf_counter()
    report = fn(scale, **kwargs)
    elapsed = time.perf_counter() - t0
    _obs.record_phase_seconds(experiment_id, elapsed)
    tracer = _obs.tracer()
    if tracer is not None and tracer.enabled("harness"):
        tracer.host_span("harness", experiment_id, t0, elapsed,
                         args={"scale": scale})
    report.metrics = diff_snapshots(before, _obs.registry().snapshot())
    report.metrics[f"harness.phase_s{{phase={experiment_id}}}"] = round(
        elapsed, 6)
    return report


def run_all(scale: Scale = "small",
            progress: _t.Callable[[str], None] | None = None
            ) -> dict[str, ExperimentReport]:
    """Run every experiment; returns reports keyed by id."""
    out = {}
    for eid in experiment_ids():
        if progress:
            progress(f"running {eid}: {EXPERIMENTS[eid][0]}")
        out[eid] = run_experiment(eid, scale)
    return out
