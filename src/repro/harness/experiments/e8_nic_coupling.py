"""E8 — Communication *generates* kernel noise: NIC coupling.

On a host-driven network stack, every received message costs interrupt
plus softirq CPU on the destination — so a communication-heavy phase
manufactures its own interference.  Sweep the halo-exchange message
size on (a) a host-driven NIC (commodity kernel) and (b) an offloaded
NIC (lightweight kernel), and attribute the rx-processing share with
the observer.

Expected shape: observed nic-rx kernel share grows with message volume
on the host-driven stack and is exactly zero when offloaded; the
host-driven runs are correspondingly slower.
"""

from __future__ import annotations

from ...apps import StencilApp
from ...core import Machine, MachineConfig
from ...ktau import KtauTracer
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E8"
TITLE = "NIC receive processing as observed kernel noise"

_SIZES = [1_024, 16_384, 131_072]


def _run(kernel: str, halo_bytes: int, iterations: int, seed: int):
    machine = Machine(MachineConfig(n_nodes=9, kernel=kernel, seed=seed))
    tracer = KtauTracer(machine, level="trace")
    app = StencilApp(work_ns=2_000_000, halo_bytes=halo_bytes,
                     iterations=iterations, dt_interval=0).bind_tracer(tracer)
    machine.run_to_completion(machine.launch(app))
    # Centre node of the 3x3 grid receives from 4 neighbours.
    centre = 4
    breakdown = tracer.stolen_breakdown(centre, 0, machine.env.now)
    rx = breakdown.get("nic-rx", 0)
    return app.makespan_ns(), rx, machine.env.now


def run(scale: Scale = "small", *, seed: int = 83) -> ExperimentReport:
    check_scale(scale)
    iterations = 30 if scale == "small" else 150

    headers = ["kernel", "halo bytes", "makespan ms", "nic-rx ms",
               "nic-rx % of run"]
    rows = []
    rx_share: dict[tuple[str, int], float] = {}
    spans: dict[tuple[str, int], int] = {}
    for kernel in ("commodity-linux", "lightweight"):
        for size in _SIZES:
            span, rx, total = _run(kernel, size, iterations, seed)
            share = 100 * rx / total
            rx_share[(kernel, size)] = share
            spans[(kernel, size)] = span
            rows.append([kernel, size, round(span / 1e6, 3),
                         round(rx / 1e6, 4), round(share, 4)])

    host = "commodity-linux"
    checks = {
        "rx share grows with message size (host-driven)":
            rx_share[(host, _SIZES[0])] < rx_share[(host, _SIZES[1])]
            < rx_share[(host, _SIZES[2])],
        "offloaded NIC shows zero rx noise":
            all(rx_share[("lightweight", s)] == 0 for s in _SIZES),
        "host-driven runs slower than offloaded at large messages":
            spans[(host, _SIZES[-1])] > spans[("lightweight", _SIZES[-1])],
        "rx noise significant at large messages (>0.5% of run)":
            rx_share[(host, _SIZES[-1])] > 0.5,
    }
    findings = {"rx_share_pct": {f"{k}/{s}": round(v, 4)
                                 for (k, s), v in rx_share.items()}}
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes="3x3 stencil, centre node attributed; "
                                  "host-driven vs offloaded NIC")
