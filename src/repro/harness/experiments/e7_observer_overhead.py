"""E7 — Cost of observation.

A measurement framework that perturbs what it measures is useless for
noise studies, so the observer's own footprint must be quantified: run
the same workload with the observer off, at profile level (counters
only), and at full trace level (timestamped events + buffer flushes),
and report the slowdown each level introduces.

Expected shape: off < profile < trace, with trace well under 1 % — the
budget real kernel-instrumentation systems had to meet to be credible.
"""

from __future__ import annotations

from ...apps import StencilApp
from ...core import Machine, MachineConfig
from ...ktau import KtauTracer
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E7"
TITLE = "Observer overhead by instrumentation level"


def _run(level: str | None, iterations: int, seed: int) -> tuple[int, int]:
    machine = Machine(MachineConfig(n_nodes=8, kernel="commodity-linux",
                                    seed=seed))
    tracer = None
    if level is not None:
        tracer = KtauTracer(machine, level=level, overhead=level)
    app = StencilApp(work_ns=5_000_000, halo_bytes=8192,
                     iterations=iterations)
    if tracer is not None:
        app.bind_tracer(tracer)
    machine.run_to_completion(machine.launch(app))
    charged = (sum(tracer.overhead_charged_ns.values())
               if tracer is not None else 0)
    return app.makespan_ns(), charged


def run(scale: Scale = "small", *, seed: int = 71) -> ExperimentReport:
    check_scale(scale)
    iterations = 40 if scale == "small" else 200

    base, _ = _run(None, iterations, seed)
    results = {"off": (base, 0)}
    for level in ("profile", "trace"):
        results[level] = _run(level, iterations, seed)

    headers = ["observer", "makespan ms", "overhead %", "live charge us"]
    rows = []
    overhead_pct = {}
    for level, (span, charged) in results.items():
        pct = 100 * (span - base) / base
        overhead_pct[level] = pct
        rows.append([level, round(span / 1e6, 4), round(pct, 4),
                     round(charged / 1e3, 2)])

    checks = {
        "profile level costs something":
            overhead_pct["profile"] > 0,
        "trace level costs more than profile":
            overhead_pct["trace"] > overhead_pct["profile"],
        "trace overhead under 1%":
            overhead_pct["trace"] < 1.0,
        "profile overhead under 0.25%":
            overhead_pct["profile"] < 0.25,
    }
    findings = {"overhead_pct": {k: round(v, 4)
                                 for k, v in overhead_pct.items()}}
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes="stencil app, P=8, commodity-linux; "
                                  "overhead = makespan inflation vs observer-off")
