"""E2 — Direct kernel-activity attribution profile.

The observation framework's bread and butter: run a real application on
an observed commodity-kernel node and produce the TAU-style per-activity
kernel profile — which kernel operations ran, how often, how long, and
what share of the application's window they stole.  This is the table
indirect benchmarks (E1) cannot produce: FTQ sees *that* CPU vanished,
the observer sees *who took it*.
"""

from __future__ import annotations

from ...core import Machine, MachineConfig
from ...apps import StencilApp
from ...ktau import EventKind, KtauTracer, build_kernel_profile
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E2"
TITLE = "Per-activity kernel profile under a running application"


def run(scale: Scale = "small", *, seed: int = 23) -> ExperimentReport:
    check_scale(scale)
    # The window must cover multiple activations of the slowest daemon
    # (kswapd at 1 Hz), so the simulated run spans a few seconds.
    iterations = 150 if scale == "small" else 600
    machine = Machine(MachineConfig(n_nodes=4, kernel="commodity-linux",
                                    seed=seed))
    tracer = KtauTracer(machine, level="trace", overhead="profile")
    app = StencilApp(work_ns=20_000_000, halo_bytes=8192,
                     iterations=iterations).bind_tracer(tracer)
    machine.run_to_completion(machine.launch(app))

    profile = build_kernel_profile(tracer, 0, 0, machine.env.now)
    headers = ["source", "kind", "count", "total", "mean ns", "max ns",
               "% of window"]
    rows = []
    for entry in sorted(profile.entries, key=lambda e: e.total_ns,
                        reverse=True):
        rows.append([entry.source, entry.kind, entry.count,
                     f"{entry.total_ns / 1e6:.3f} ms",
                     round(entry.mean_ns, 1), entry.max_ns,
                     round(100 * entry.total_ns / profile.window_ns, 4)])

    kinds = profile.by_kind()
    sources = {e.source for e in profile.entries}
    timer = profile.entry("timer-irq")
    checks = {
        "timer interrupt observed": "timer-irq" in sources,
        "NIC softirq observed (halo traffic)": "nic-rx" in sources,
        "daemon activity observed":
            kinds.get(EventKind.DAEMON, 0) > 0,
        "observer cost visible and small":
            0 <= kinds.get(EventKind.OBSERVER, 0) < kinds.get(
                EventKind.INTERRUPT, 1),
        "timer dominates kernel event count":
            timer.count == max(e.count for e in profile.entries
                               if e.kind != EventKind.OBSERVER),
        "total kernel share plausible (<5%)":
            0 < profile.utilization < 0.05,
    }
    findings = {
        "window_ms": round(profile.window_ns / 1e6, 2),
        "kernel_share_pct": round(100 * profile.utilization, 3),
        "by_kind_pct": {k: round(100 * v / profile.window_ns, 4)
                        for k, v in kinds.items()},
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes="node 0 of 4, stencil app, "
                                  "commodity-linux kernel, trace observer")
