"""E16 — Critical-path attribution vs ground truth.

The cross-node dependency recorder (:mod:`repro.obs.critpath`) claims
it can walk backwards from the last rank's completion, reconstruct the
run's critical path, and charge every nanosecond of it to a named
cause.  This experiment validates that claim against a scenario whose
ground truth is known by construction:

* a **quiet** machine — lightweight kernel (tickless, daemonless, no
  NIC rx steals), no injected noise — whose critical path must contain
  *zero* noise charge;
* the same machine with a single ``"ghost"`` periodic source planted
  on **one** node; every extra nanosecond of makespan must be charged
  to that source, on that node, because nothing else changed.

BSP + allreduce couples every rank each iteration, so the one slow
node drags the whole machine — the paper's core amplification
mechanism — and the critical path must route through it.

Checks
------
1. **accounting closure** — critical-path segments sum exactly to the
   makespan (the backward walk telescopes; anything else is a bug);
2. **attribution** — ≥90 % of the quiet-vs-noisy makespan gap is
   charged to the ghost (the rest is collective re-timing slop);
3. **no false positives** — the quiet run charges 0 ns to noise;
4. **localization** — every ghost nanosecond lands on the planted node.
"""

from __future__ import annotations

from ...apps import BSPApp
from ...core import Machine, MachineConfig
from ...noise import PeriodicNoise
from ...obs.critpath import diff_critical_paths
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E16"
TITLE = "Critical-path attribution vs planted ground truth"

#: The planted source: 25 us stolen every 250 us (10 % of one node).
_GHOST_PERIOD = 250_000
_GHOST_DURATION = 25_000
_GHOST_NAME = "ghost"


def _run_once(n_nodes: int, iterations: int, seed: int,
              *, ghost_node: int | None) -> tuple[int, dict]:
    """One recorded run; returns (makespan_ns, critical-path dict)."""
    machine = Machine(MachineConfig(
        n_nodes=n_nodes, kernel="lightweight", seed=seed,
        critical_path=True))
    if ghost_node is not None:
        machine.nodes[ghost_node].add_noise_source(
            PeriodicNoise(_GHOST_PERIOD, _GHOST_DURATION, name=_GHOST_NAME))
    app = BSPApp(work_ns=400_000, iterations=iterations,
                 collective="allreduce")
    machine.run_to_completion(machine.launch(app))
    return app.makespan_ns(), machine.critical_path().as_dict()


def run(scale: Scale = "small", *, seed: int = 161) -> ExperimentReport:
    check_scale(scale)
    n_nodes = 8 if scale == "small" else 32
    iterations = 20 if scale == "small" else 80
    ghost_node = n_nodes // 2

    quiet_span, quiet_cp = _run_once(n_nodes, iterations, seed,
                                     ghost_node=None)
    noisy_span, noisy_cp = _run_once(n_nodes, iterations, seed,
                                     ghost_node=ghost_node)
    diff = diff_critical_paths(quiet_cp, noisy_cp)

    gap = noisy_span - quiet_span
    ghost_total = noisy_cp["by_source"].get(_GHOST_NAME, 0)
    ghost_on_planted = (noisy_cp["by_node"]
                        .get(str(ghost_node), {}).get(_GHOST_NAME, 0))

    headers = ["node", "source", "charged ms", "% of path"]
    rows = []
    total = noisy_cp["total_ns"]
    for node, charges in sorted(noisy_cp["by_node"].items(),
                                key=lambda kv: int(kv[0])):
        for source, ns in sorted(charges.items()):
            rows.append([int(node), source, round(ns / 1e6, 3),
                         round(100 * ns / total, 2)])

    checks = {
        "segments sum to makespan (quiet and noisy, exact)":
            quiet_cp["total_ns"] == quiet_span
            and noisy_cp["total_ns"] == noisy_span,
        "quiet critical path charges 0 ns to noise":
            quiet_cp["noise_ns"] == 0,
        ">=90% of the makespan gap is charged to the ghost":
            gap > 0 and ghost_total >= 0.9 * gap,
        "every ghost ns lands on the planted node":
            ghost_total > 0 and ghost_on_planted == ghost_total,
        "diff names the ghost as top thief":
            diff["top_thief"] == _GHOST_NAME,
    }
    findings = {
        "quiet_makespan_ms": round(quiet_span / 1e6, 3),
        "noisy_makespan_ms": round(noisy_span / 1e6, 3),
        "gap_ms": round(gap / 1e6, 3),
        "ghost_charged_ms": round(ghost_total / 1e6, 3),
        "ghost_share_of_gap": round(ghost_total / gap, 4) if gap else 0.0,
        "net_hops": noisy_cp["n_net_hops"],
        "end_node": noisy_cp["end_node"],
    }
    return ExperimentReport(
        EXPERIMENT_ID, TITLE, headers, rows, checks=checks,
        findings=findings,
        notes=f"lightweight kernel, BSP+allreduce x{iterations}; "
              f"ghost = {_GHOST_DURATION / 1e3:.0f}us every "
              f"{_GHOST_PERIOD / 1e3:.0f}us planted on node {ghost_node} "
              f"of {n_nodes}")
