"""E14 — Indirect measurement vs direct observation (the thesis).

The study's core methodological argument, as one experiment:

1. **Indirect, naive** — run FTQ on a node of the noisy machine.  It
   measures the stolen CPU share faithfully (≈ the injected 2.5 %), and
   the naive reading — "we lose 2.5 % of CPU, so the application loses
   2.5 %" — is what capacity planning did before the noise literature.
2. **Indirect, model-informed** — capture per-event structure with the
   selfish benchmark, feed (period, duration) into the analytic
   order-statistics model: granularity-aware prediction.
3. **Direct** — run the application under the observer: the measured
   slowdown, with the per-iteration attribution that *names* the cause.

Expected shape: FTQ gets the utilization right; the naive prediction
underestimates the application's measured slowdown several-fold; the
model-informed prediction lands within a small factor; direct
observation both measures the real slowdown and attributes it to the
injected source.
"""

from __future__ import annotations

import numpy as np

from ...analysis.absorption import BSPModel
from ...core import ExperimentConfig, run_experiment, run_with_baseline
from ...ktau import attribute_intervals
from ...microbench import FTQBenchmark, SelfishBenchmark
from ...noise import InjectionPlan
from ...core import Machine, MachineConfig
from ...sim import MICROSECOND, MILLISECOND, SECOND
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E14"
TITLE = "Indirect inference vs direct observation of noise impact"

_PATTERN = "2.5pct@10Hz"
_WORK = 1 * MILLISECOND
_ROUND = 2 * 500 + 2 * MICROSECOND + 1000  # seastar critical-path round


def run(scale: Scale = "small", *, seed: int = 149) -> ExperimentReport:
    check_scale(scale)
    nodes = 32 if scale == "small" else 128
    iterations = 60 if scale == "small" else 200

    # --- 1. Indirect: FTQ on one node of the noisy machine. -------------
    probe = Machine(MachineConfig(
        n_nodes=1, kernel="lightweight",
        injection=InjectionPlan(_PATTERN, seed=seed), seed=seed))
    ftq = FTQBenchmark(n_quanta=4096).run(probe.nodes[0], start_time=0)
    naive_prediction = ftq.noise_fraction  # "you lose what is stolen"

    # --- 2. Indirect + structure: selfish capture feeds the model. -------
    selfish = SelfishBenchmark(window_ns=2 * SECOND).run(probe.nodes[0],
                                                         start_time=0)
    if selfish.count >= 2:
        period_est = int(np.median(selfish.inter_arrival_ns()))
        duration_est = int(np.median(selfish.durations_ns()))
    else:  # pragma: no cover - pattern guarantees events
        period_est, duration_est = 100 * MILLISECOND, 2500 * MICROSECOND
    model = BSPModel(work_ns=_WORK, round_cost_ns=_ROUND)
    model_prediction = model.predict(nodes, period_est,
                                     duration_est).slowdown_fraction

    # --- 3. Direct: measured slowdown + attribution. ----------------------
    cmp = run_with_baseline(ExperimentConfig(
        app="bsp", nodes=nodes, noise_pattern=_PATTERN, seed=seed,
        app_params=dict(work_ns=_WORK, iterations=iterations)))
    measured = cmp.slowdown.slowdown_fraction

    _result, tracer = run_experiment(
        ExperimentConfig(app="bsp", nodes=nodes, noise_pattern=_PATTERN,
                         seed=seed, observer="trace",
                         app_params=dict(work_ns=_WORK,
                                         iterations=iterations)),
        return_tracer=True)
    atts = attribute_intervals(tracer, 0, "bsp:iteration")
    injected_name = _PATTERN.lower()
    charged = sum(a.stolen_by_source.get(injected_name, 0) for a in atts)
    total_noise = sum(a.noise_ns for a in atts)
    attribution_share = charged / total_noise if total_noise else 0.0

    headers = ["method", "predicted/measured slowdown %", "notes"]
    rows = [
        ["FTQ utilization (naive indirect)",
         round(100 * naive_prediction, 2), "stolen share == app cost?"],
        ["selfish capture + analytic model",
         round(100 * model_prediction, 2),
         f"est {period_est / 1e6:.0f} ms / {duration_est / 1e3:.0f} us"],
        ["direct measurement (DES)",
         round(100 * measured, 2), f"P={nodes} BSP"],
        ["observer attribution",
         None, f"{100 * attribution_share:.1f}% of charged noise "
               f"named '{injected_name}'"],
    ]

    checks = {
        "FTQ measures the injected share correctly":
            abs(naive_prediction - 0.025) < 0.005,
        "naive indirect underestimates impact >2x":
            measured > 2 * naive_prediction,
        "selfish capture recovers the event structure":
            abs(period_est - 100 * MILLISECOND) < 10 * MILLISECOND
            and abs(duration_est - 2500 * MICROSECOND) < 300 * MICROSECOND,
        "model-informed indirect within 3x of measured":
            measured / 3 < model_prediction < measured * 3,
        "observer attributes the slowdown to the injected source":
            attribution_share > 0.8,
    }
    findings = {
        "naive_pct": round(100 * naive_prediction, 2),
        "model_pct": round(100 * model_prediction, 2),
        "measured_pct": round(100 * measured, 2),
        "attribution_share": round(attribution_share, 3),
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes=f"pattern {_PATTERN}, BSP 1 ms grain, "
                                  f"P={nodes}")
