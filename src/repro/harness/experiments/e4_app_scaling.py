"""E4 — Application slowdown vs machine size per noise granularity.

The paper-style application figure: for three applications with very
different communication structures — the allreduce-storm ocean skeleton
(pop), the halo-exchange hydro skeleton (stencil), and the mixed CG
skeleton — measure slowdown against a quiet baseline as node count
grows, for the fixed-2.5 %-net granularity sweep.

Expected shape: pop is by far the most sensitive and its coarse-noise
slowdown grows with scale; stencil absorbs almost everything; coarse
noise hurts more than fine noise for every app.
"""

from __future__ import annotations

from ...core import ExperimentConfig, sweep
from ...noise import CANONICAL_SWEEP
from ..base import ExperimentReport, Scale, check_scale, execution_policy

EXPERIMENT_ID = "E4"
TITLE = "Application slowdown vs node count per noise granularity"

#: Per-app parameters sized so one run is seconds of wall clock.
_APP_PARAMS = {
    "pop": dict(baroclinic_ns=5_000_000, solver_iterations=40,
                solver_compute_ns=10_000, iterations=4),
    "stencil": dict(work_ns=20_000_000, halo_bytes=8192, iterations=12,
                    dt_interval=6),
    "cg": dict(spmv_ns=5_000_000, exchange_bytes=8192, iterations=12),
}


def run(scale: Scale = "small", *, seed: int = 41) -> ExperimentReport:
    check_scale(scale)
    node_counts = [4, 16, 36] if scale == "small" else [4, 16, 64, 121]
    patterns = list(CANONICAL_SWEEP)

    headers = ["app", "nodes", "pattern", "quiet ms", "noisy ms",
               "slowdown %", "amplification"]
    rows = []
    slow: dict[tuple[str, int, str], float] = {}
    policy = execution_policy()
    for app, params in _APP_PARAMS.items():
        base = ExperimentConfig(app=app, seed=seed, kernel="lightweight",
                                app_params=params)
        results = sweep(base, nodes=node_counts, patterns=patterns,
                        workers=policy.workers, cache=policy.cache)
        for (p, pattern), cmp in sorted(results.items()):
            sd = cmp.slowdown
            slow[(app, p, pattern)] = sd.slowdown_fraction
            rows.append([app, p, pattern,
                         round(cmp.quiet.makespan_ns / 1e6, 2),
                         round(cmp.noisy.makespan_ns / 1e6, 2),
                         round(sd.slowdown_percent, 2),
                         round(sd.amplification, 2)])

    p_hi = node_counts[-1]
    coarse, _mid, fine = CANONICAL_SWEEP
    checks = {
        "pop most sensitive to coarse noise at scale":
            slow[("pop", p_hi, coarse)]
            > max(slow[("stencil", p_hi, coarse)],
                  slow[("cg", p_hi, coarse)]),
        "stencil least sensitive to coarse noise at scale":
            slow[("stencil", p_hi, coarse)]
            <= min(slow[("pop", p_hi, coarse)],
                   slow[("cg", p_hi, coarse)]),
        "coarse > fine for pop at scale":
            slow[("pop", p_hi, coarse)] > slow[("pop", p_hi, fine)],
        "pop coarse slowdown grows with scale":
            slow[("pop", p_hi, coarse)] > slow[("pop", node_counts[0],
                                                coarse)],
        "pop coarse noise amplified (>2x injected)":
            slow[("pop", p_hi, coarse)] > 2 * 0.025,
        "stencil coarse slowdown < half of pop's":
            slow[("stencil", p_hi, coarse)]
            < 0.5 * slow[("pop", p_hi, coarse)],
        "stencil near-absorbs fine noise (<2x injected)":
            slow[("stencil", p_hi, fine)] < 2 * 0.025,
    }
    findings = {
        "slowdown_pct_at_max_scale": {
            app: {pat: round(100 * slow[(app, p_hi, pat)], 2)
                  for pat in patterns}
            for app in _APP_PARAMS},
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes="2.5% net injected noise, random per-node "
                                  "phases, lightweight kernel substrate")
