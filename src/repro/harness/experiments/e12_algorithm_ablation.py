"""E12 — Ablation: collective algorithm choice under noise.

DESIGN.md calls out that collectives are real algorithms precisely so
their dependency structures can be compared under identical noise.
Run the BSP workload with each registered allreduce algorithm, quiet
and under coarse noise, at a fixed machine size.

Expected shape: quiet, recursive doubling wins for small messages
(log P rounds vs 2·log P for reduce+bcast and 2(P−1) for ring); under
coarse noise every algorithm amplifies, and the ring's long dependency
chain makes it the most fragile in absolute time.
"""

from __future__ import annotations

from ...core import ExperimentConfig, run_with_baseline
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E12"
TITLE = "Allreduce algorithm ablation under identical noise"

_ALGORITHMS = ("recursive-doubling", "reduce-bcast", "ring")


def run(scale: Scale = "small", *, seed: int = 127) -> ExperimentReport:
    check_scale(scale)
    nodes = 32 if scale == "small" else 64
    pattern = "2.5pct@10Hz"

    headers = ["algorithm", "quiet ms", "noisy ms", "slowdown %"]
    rows = []
    quiet_span: dict[str, int] = {}
    noisy_span: dict[str, int] = {}
    for alg in _ALGORITHMS:
        cfg = ExperimentConfig(
            app="bsp", nodes=nodes, noise_pattern=pattern, seed=seed,
            app_params=dict(work_ns=1_000_000, iterations=30,
                            algorithm=alg))
        cmp = run_with_baseline(cfg)
        quiet_span[alg] = cmp.quiet.makespan_ns
        noisy_span[alg] = cmp.noisy.makespan_ns
        rows.append([alg, round(cmp.quiet.makespan_ns / 1e6, 3),
                     round(cmp.noisy.makespan_ns / 1e6, 3),
                     round(cmp.slowdown.slowdown_percent, 2)])

    checks = {
        "recursive doubling fastest quiet (small messages)":
            quiet_span["recursive-doubling"] == min(quiet_span.values()),
        "ring slowest quiet (2(P-1) rounds)":
            quiet_span["ring"] == max(quiet_span.values()),
        "every algorithm amplifies coarse noise":
            all(noisy_span[a] > quiet_span[a] * 1.05 for a in _ALGORITHMS),
        "ring worst absolute time under noise":
            noisy_span["ring"] == max(noisy_span.values()),
    }
    findings = {
        "quiet_ms": {a: round(v / 1e6, 3) for a, v in quiet_span.items()},
        "noisy_ms": {a: round(v / 1e6, 3) for a, v in noisy_span.items()},
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes=f"BSP 8-byte allreduce, P={nodes}, "
                                  f"pattern={pattern}")
