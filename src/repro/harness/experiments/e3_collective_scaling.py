"""E3 — Collective latency vs machine size under fixed-net noise.

The amplification figure for the machine's most noise-sensitive
operation: 8-byte allreduce latency as node count grows, for the same
2.5 % net injected noise delivered at three granularities.

Expected shape: quiet latency grows ~log P; the coarse 10 Hz pattern's
mean (and especially p99) latency diverges from quiet dramatically as P
grows, with a strict granularity ordering (10 Hz > 100 Hz > 1000 Hz).
Note that a *bare* collective benchmark amplifies even fine noise (a
25 µs event dwarfs an 18 µs allreduce), which is exactly why collective
microbenchmarks overstate noise impact relative to applications that
also compute — compare E4.
"""

from __future__ import annotations

from ...core import MachineConfig
from ...microbench import CollectiveBenchmark
from ...noise import CANONICAL_SWEEP, InjectionPlan
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E3"
TITLE = "Allreduce latency vs node count per noise granularity"


def run(scale: Scale = "small", *, seed: int = 31) -> ExperimentReport:
    check_scale(scale)
    if scale == "small":
        node_counts = [4, 16, 64]
        reps = 40
    else:
        node_counts = [4, 16, 64, 128, 256, 1024, 4096]
        reps = 100
    patterns = ["quiet", *CANONICAL_SWEEP]

    headers = ["nodes", "pattern", "mean us", "p99 us", "mean/quiet"]
    rows = []
    mean_ratio: dict[tuple[int, str], float] = {}
    for p in node_counts:
        quiet_mean = None
        for pattern in patterns:
            injection = (None if pattern == "quiet"
                         else InjectionPlan(pattern, seed=seed))
            config = MachineConfig(n_nodes=p, kernel="lightweight",
                                   injection=injection, seed=seed)
            # Beyond the generator's practical range the bulk-rank fast
            # path (repro.sim.bulk) carries the curve; round-order tie
            # resolution keeps the noisy large-P points on it (each
            # resolved tie deviates at most one NIC gap from the DES).
            tie = "deterministic" if p >= 1024 else "strict"
            res = CollectiveBenchmark("allreduce", repetitions=reps,
                                      gap_ns=500_000).run_auto(
                                          config, tie_break=tie)
            if pattern == "quiet":
                quiet_mean = res.mean_ns
            ratio = res.mean_ns / quiet_mean
            mean_ratio[(p, pattern)] = ratio
            rows.append([p, pattern, round(res.mean_ns / 1e3, 2),
                         round(res.p99_ns / 1e3, 2), round(ratio, 3)])

    p_hi = node_counts[-1]
    p_lo = node_counts[0]
    coarse, mid, fine = CANONICAL_SWEEP
    checks = {
        "coarse noise amplifies with scale":
            mean_ratio[(p_hi, coarse)] > mean_ratio[(p_lo, coarse)],
        "coarse hurts more than fine at scale":
            mean_ratio[(p_hi, coarse)] > 2 * mean_ratio[(p_hi, fine)],
        "granularity ordering at scale (10Hz >= 100Hz >= ~1000Hz)":
            mean_ratio[(p_hi, coarse)] >= mean_ratio[(p_hi, mid)]
            >= 0.8 * mean_ratio[(p_hi, fine)],
        "fine noise amplification bounded":
            mean_ratio[(p_hi, fine)] < 6.0,
    }
    findings = {
        "amplification_at_max_scale":
            {pat: round(mean_ratio[(p_hi, pat)], 2)
             for pat in CANONICAL_SWEEP},
    }
    notes = f"8-byte recursive-doubling allreduce, {reps} reps per point"
    if node_counts[-1] >= 1024:
        notes += ("; points at >=1024 nodes use the bulk-rank fast "
                  "path with round-order tie resolution")
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings, notes=notes)
