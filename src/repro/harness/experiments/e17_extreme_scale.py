"""E17 — Noise amplification at extreme scale (1k–131k ranks).

Extends the E3/E4 amplification and absorption curves far past the
per-rank generator's practical range using the bulk-rank fast path
(:mod:`repro.sim.bulk`) over hierarchical fat-tree machine shapes,
comparing the flat recursive-doubling allreduce against the
topology-aware two-level algorithm (intra-node fan-in → leader
recursive doubling → intra-node bcast).

Expected shape: the quiet baseline grows ~log P for both algorithms
(flat wins slightly on pure round count); injected noise is what
separates scales — fine 1000 Hz noise stays a small constant factor
while coarse 10 Hz noise is amplified by two orders of magnitude, and
the gap widens with P.  At 131072 ranks the flat algorithm's noisy
arrival cascade no longer settles outside the event path (every rank
talks to every distance class), so the hierarchy is also what keeps
the *model itself* tractable at 100k ranks: only the two-level
algorithm is carried to the top scale.
"""

from __future__ import annotations

from ...core import MachineConfig
from ...microbench import CollectiveBenchmark
from ...noise import InjectionPlan
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E17"
TITLE = "Extreme-scale allreduce amplification, flat vs two-level"

#: (nodes, fat-tree shape, reps per quiet point).
_FULL_POINTS = (
    (1024, "32x8x4@fat-tree", 40),
    (16384, "32x32x16@fat-tree", 20),
    (131072, "32x64x64@fat-tree", 6),
)
_SMALL_POINTS = (
    (256, "32x4x2@fat-tree", 10),
    (1024, "32x8x4@fat-tree", 10),
)
_PATTERNS = ("quiet", "2.5pct@1000Hz", "2.5pct@10Hz")
#: Flat recursive doubling diverges from every slot-table prediction
#: at this scale under noise (and costs minutes per repetition), so
#: the flat column stops below it.
_FLAT_LIMIT = 16384


def _reps_for(pattern: str, nodes: int, reps: int) -> int:
    # The 131k noisy cells are the expensive ones (~10 s per
    # repetition through the arrival fixpoint); trim them so the whole
    # 100k-rank portion stays inside the CI budget.
    if nodes >= 100_000 and pattern != "quiet":
        return min(reps, 3)
    return reps


def run(scale: Scale = "small", *, seed: int = 31) -> ExperimentReport:
    check_scale(scale)
    points = _SMALL_POINTS if scale == "small" else _FULL_POINTS
    algorithms = ("recursive-doubling", "two-level")

    headers = ["nodes", "algorithm", "pattern", "mean us", "p99 us",
               "mean/quiet"]
    rows = []
    mean_ratio: dict[tuple[int, str, str], float] = {}
    quiet_mean: dict[tuple[int, str], float] = {}
    stats: dict[str, int] = {}
    for nodes, shape, base_reps in points:
        for algo in algorithms:
            if algo == "recursive-doubling" and nodes > _FLAT_LIMIT:
                continue
            for pattern in _PATTERNS:
                injection = (None if pattern == "quiet"
                             else InjectionPlan(pattern, seed=seed))
                config = MachineConfig(
                    n_nodes=nodes, kernel="lightweight", network="seastar",
                    topology=f"hier:{shape}", shape=shape,
                    injection=injection, seed=seed)
                bench = CollectiveBenchmark(
                    "allreduce", repetitions=_reps_for(pattern, nodes,
                                                       base_reps),
                    message_size=8, algorithm=algo, gap_ns=500_000)
                res = bench.run_auto(config, bulk_min_nodes=512,
                                     tie_break="deterministic",
                                     stats_out=stats)
                if pattern == "quiet":
                    quiet_mean[(nodes, algo)] = res.mean_ns
                ratio = res.mean_ns / quiet_mean[(nodes, algo)]
                mean_ratio[(nodes, algo, pattern)] = ratio
                rows.append([nodes, algo, pattern,
                             round(res.mean_ns / 1e3, 2),
                             round(res.p99_ns / 1e3, 2), round(ratio, 3)])

    p_lo = points[0][0]
    p_hi = points[-1][0]
    fine, coarse = _PATTERNS[1], _PATTERNS[2]
    checks = {
        "fine-noise amplification grows with scale (two-level)":
            mean_ratio[(p_hi, "two-level", fine)]
            > mean_ratio[(p_lo, "two-level", fine)],
        "coarse noise amplified >=10x more than fine at top scale":
            mean_ratio[(p_hi, "two-level", coarse)]
            > 10 * mean_ratio[(p_hi, "two-level", fine)],
        "coarse-noise amplification exceeds 50x at top scale":
            mean_ratio[(p_hi, "two-level", coarse)] > 50,
        "quiet two-level within 2x of flat recursive doubling":
            all(quiet_mean[(n, "two-level")] < 2 * quiet_mean[(n, "recursive-doubling")]
                for n, _s, _r in points if n <= _FLAT_LIMIT),
    }
    findings = {
        "two_level_amplification_at_top_scale": {
            pat: round(mean_ratio[(p_hi, "two-level", pat)], 2)
            for pat in _PATTERNS[1:]},
        "top_scale_nodes": p_hi,
    }
    notes = ("8-byte allreduce over hierarchical fat-tree shapes via the "
             "bulk-rank fast path with round-order tie resolution; flat "
             f"recursive doubling stops at {_FLAT_LIMIT} nodes (noisy "
             "arrival cascades only settle on the event path beyond it)")
    if stats.get("fixpoint_reps") or stats.get("tie_breaks"):
        notes += (f"; {stats.get('fixpoint_reps', 0)} repetitions needed "
                  f"the arrival fixpoint, {stats.get('tie_breaks', 0)} "
                  f"ties resolved")
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings, notes=notes)
