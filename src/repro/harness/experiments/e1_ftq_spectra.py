"""E1 — FTQ traces and spectra: quiet kernel vs noisy kernels.

Regenerates the classic noise-signature figure: per-quantum FTQ counts
on (a) a lightweight kernel, (b) a commodity Linux kernel, and (c) a
lightweight kernel with an injected 10 Hz pattern; the spectrum of each
series exposes the periodic structure the time series hides.

Expected shape: the quiet kernel is perfectly flat (zero lost work, no
spectral peaks); the commodity kernel shows its timer-tick line; the
injected pattern shows a sharp line at the injection frequency.
"""

from __future__ import annotations

from ...analysis.spectral import find_peaks
from ...core import Machine, MachineConfig
from ...microbench import FTQBenchmark
from ...noise import InjectionPlan
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E1"
TITLE = "FTQ noise signatures and spectra per kernel"


def _node(kernel: str, injection: InjectionPlan | None, seed: int):
    machine = Machine(MachineConfig(n_nodes=1, kernel=kernel,
                                    injection=injection, seed=seed))
    return machine.nodes[0]


def run(scale: Scale = "small", *, seed: int = 11) -> ExperimentReport:
    check_scale(scale)
    n_quanta = 2048 if scale == "small" else 16384
    bench = FTQBenchmark(n_quanta=n_quanta)

    configs = [
        ("lightweight (quiet)", _node("lightweight", None, seed)),
        ("commodity-linux", _node("commodity-linux", None, seed)),
        ("tuned-linux", _node("tuned-linux", None, seed)),
        ("lightweight + 2.5pct@10Hz",
         _node("lightweight",
               InjectionPlan("2.5pct@10Hz", alignment="synchronized",
                             seed=seed), seed)),
    ]

    headers = ["kernel", "noise %", "min count", "mean count", "cov",
               "peak1 Hz", "peak2 Hz"]
    rows = []
    peaks_by_name = {}
    results = {}
    for name, node in configs:
        res = bench.run(node, start_time=0)
        stats = res.stats()
        peaks = find_peaks(res.spectrum(), top=2)
        peaks_by_name[name] = [p.frequency_hz for p in peaks]
        results[name] = res
        rows.append([name, round(100 * res.noise_fraction, 3),
                     int(stats.minimum), round(stats.mean, 1),
                     round(stats.cov, 5),
                     round(peaks[0].frequency_hz, 1) if peaks else None,
                     round(peaks[1].frequency_hz, 1) if len(peaks) > 1 else None])

    quiet = results["lightweight (quiet)"]
    injected_peaks = peaks_by_name["lightweight + 2.5pct@10Hz"]
    commodity = results["commodity-linux"]

    checks = {
        "quiet kernel is flat (zero noise)": quiet.noise_fraction == 0.0,
        "quiet kernel has no spectral peaks":
            not peaks_by_name["lightweight (quiet)"],
        "injected 10 Hz line detected (fundamental or harmonic)":
            any(abs(f / 10.0 - round(f / 10.0)) < 0.05 and f <= 50
                for f in injected_peaks),
        "commodity kernel loses CPU": commodity.noise_fraction > 0,
        "commodity kernel noisier than tuned":
            commodity.noise_fraction
            > results["tuned-linux"].noise_fraction,
        "injected net utilization ≈ 2.5%":
            abs(results["lightweight + 2.5pct@10Hz"].noise_fraction - 0.025)
            < 0.005,
    }
    findings = {
        "commodity_noise_pct": round(100 * commodity.noise_fraction, 3),
        "injected_detected_peaks_hz":
            [round(f, 1) for f in injected_peaks],
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes=f"{n_quanta} quanta of 1 ms FTQ per kernel")
