"""E11 — Mitigation ablation: core specialization.

The era's practical fix for kernel noise: dedicate a spare core to the
kernel (interrupts, daemons, packet processing) and leave the
application core clean.  Compare three machines running the POP-like
workload: a lightweight kernel (the ideal), a commodity kernel sharing
the application core (the problem), and the same commodity kernel with
core specialization (the mitigation).

Expected shape: the shared commodity kernel is measurably slower than
lightweight; specialization recovers most of that gap (not all — the
spare core cannot hide *injected* app-core interference, and packet
processing still adds delivery latency).
"""

from __future__ import annotations

from ...apps import POPLikeApp
from ...core import Machine, MachineConfig
from ...kernel import KernelConfig, NICCostModel
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E11"
TITLE = "Core-specialization mitigation (kernel off the app core)"


def _span(kernel, isolate: bool, nodes: int, seed: int) -> int:
    machine = Machine(MachineConfig(n_nodes=nodes, kernel=kernel,
                                    seed=seed, isolate_noise=isolate))
    app = POPLikeApp(baroclinic_ns=5_000_000, solver_iterations=30,
                     solver_compute_ns=20_000, iterations=4)
    machine.run_to_completion(machine.launch(app))
    return app.makespan_ns()


def run(scale: Scale = "small", *, seed: int = 113) -> ExperimentReport:
    check_scale(scale)
    nodes = 32 if scale == "small" else 128

    # The achievable floor for a host-driven NIC: identical hardware and
    # NIC cost model, but zero kernel background activity.  The
    # lightweight ideal additionally enjoys an offloaded NIC, which no
    # scheduling mitigation can emulate.
    silent_commodity = KernelConfig(
        name="commodity-silent", hz=0, tick_cost_ns=0, tick_heavy_cost_ns=0,
        tick_heavy_probability=0.0, daemons=(), syscall_ns=1000,
        nic=NICCostModel())

    spans = {
        "lightweight ideal (offloaded NIC)":
            _span("lightweight", False, nodes, seed),
        "commodity floor (silent kernel)":
            _span(silent_commodity, False, nodes, seed),
        "commodity shared core": _span("commodity-linux", False, nodes, seed),
        "commodity + specialization": _span("commodity-linux", True, nodes,
                                            seed),
    }
    ideal = spans["lightweight ideal (offloaded NIC)"]
    floor = spans["commodity floor (silent kernel)"]
    shared = spans["commodity shared core"]
    isolated = spans["commodity + specialization"]

    headers = ["configuration", "makespan ms", "vs ideal %"]
    rows = [[name, round(span / 1e6, 3),
             round(100 * (span / ideal - 1), 3)]
            for name, span in spans.items()]

    gap_kernel = shared - floor          # the part mitigation can address
    gap_after = max(0, isolated - floor)
    recovered = (1 - gap_after / gap_kernel) if gap_kernel > 0 else 0.0
    checks = {
        "shared commodity kernel slower than lightweight":
            shared > ideal * 1.001,
        "specialization helps": isolated < shared,
        "specialization recovers most of the kernel-noise gap (>60%)":
            recovered > 0.60,
        "specialization cannot beat the silent-kernel floor":
            isolated >= floor * 0.999,
        "NIC latency gap remains (floor above offloaded ideal)":
            floor > ideal,
    }
    findings = {
        "noise_cost_shared_pct": round(100 * (shared / ideal - 1), 3),
        "noise_cost_isolated_pct": round(100 * (isolated / ideal - 1), 3),
        "kernel_gap_recovered_pct": round(100 * recovered, 1),
        "nic_latency_gap_pct": round(100 * (floor / ideal - 1), 3),
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes=f"POP-like, P={nodes}; specialization "
                                  "moves kernel activity + NIC rx to a "
                                  "spare core")
