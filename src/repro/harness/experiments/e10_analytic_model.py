"""E10 — Analytic absorption model vs discrete-event simulation.

Validates the semi-analytic order-statistics model
(:class:`repro.analysis.BSPModel`) against the simulator on the BSP
workload it describes, then uses the validated model to extrapolate the
amplification curves to machine sizes Python cannot simulate
(P up to 65 536).

Expected shape: model and simulation agree on ordering and rough
magnitude at every simulated size; extrapolation shows the coarse-noise
curve saturating at slowdown ≈ event_duration / iteration_time while
the fine-noise curve stays flat near the injected share.
"""

from __future__ import annotations

from ...analysis.absorption import BSPModel
from ...core import ExperimentConfig, run_with_baseline
from ...noise import parse_pattern
from ...sim.timebase import MICROSECOND, MILLISECOND
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E10"
TITLE = "Analytic model vs simulation; large-P extrapolation"

_WORK = 1 * MILLISECOND
#: Critical-path cost of one collective round on the seastar preset
#: (2 o + L + NIC descriptor post, small message).
_ROUND = 2 * 500 + 2 * MICROSECOND + 1000


def run(scale: Scale = "small", *, seed: int = 103) -> ExperimentReport:
    check_scale(scale)
    sim_nodes = [4, 16, 64] if scale == "small" else [4, 16, 64, 256]
    extrapolate = [256, 4096, 65536]
    patterns = ["2.5pct@10Hz", "2.5pct@1000Hz"]
    model = BSPModel(work_ns=_WORK, round_cost_ns=_ROUND)

    headers = ["nodes", "pattern", "sim slowdown %", "model slowdown %",
               "model/sim"]
    rows = []
    agreement: list[float] = []
    sim_slow: dict[tuple[int, str], float] = {}
    for p in sim_nodes:
        for pattern in patterns:
            src = parse_pattern(pattern)
            cmp = run_with_baseline(ExperimentConfig(
                app="bsp", nodes=p, noise_pattern=pattern, seed=seed,
                kernel="lightweight",
                app_params=dict(work_ns=_WORK, iterations=60)))
            sim = cmp.slowdown.slowdown_fraction
            pred = model.predict(p, src.period, src.duration)
            sim_slow[(p, pattern)] = sim
            ratio = (pred.slowdown_fraction / sim) if sim > 0 else float("nan")
            agreement.append(ratio)
            rows.append([p, pattern, round(100 * sim, 2),
                         round(100 * pred.slowdown_fraction, 2),
                         round(ratio, 2)])

    # Extrapolation rows (model only).
    for p in extrapolate:
        for pattern in patterns:
            src = parse_pattern(pattern)
            pred = model.predict(p, src.period, src.duration)
            rows.append([p, pattern, None,
                         round(100 * pred.slowdown_fraction, 2), None])

    coarse_src = parse_pattern(patterns[0])
    fine_src = parse_pattern(patterns[1])
    big_coarse = model.predict(65536, coarse_src.period, coarse_src.duration)
    big_fine = model.predict(65536, fine_src.period, fine_src.duration)

    finite = [r for r in agreement if r == r]
    checks = {
        "model within 3x of simulation everywhere":
            all(1 / 3 < r < 3 for r in finite),
        "model reproduces granularity ordering at P=64":
            (model.predict(64, coarse_src.period,
                           coarse_src.duration).slowdown_fraction
             > model.predict(64, fine_src.period,
                             fine_src.duration).slowdown_fraction)
            == (sim_slow[(64, patterns[0])] > sim_slow[(64, patterns[1])]),
        "extrapolated coarse curve saturates near D/T":
            0.5 < big_coarse.slowdown_fraction / (
                coarse_src.duration / model.quiet_iteration(65536)) < 1.5,
        "extrapolated fine curve stays near injected share":
            big_fine.slowdown_fraction < 4 * 0.025,
    }
    findings = {
        "model_over_sim_ratios": [round(r, 2) for r in finite],
        "extrapolated_slowdown_pct_P65536": {
            patterns[0]: round(100 * big_coarse.slowdown_fraction, 1),
            patterns[1]: round(100 * big_fine.slowdown_fraction, 1)},
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes="BSP allreduce, 1 ms grain; model rounds "
                                  "= ceil(log2 P) x (2o+L+tx)")
