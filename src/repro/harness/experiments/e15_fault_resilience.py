"""E15 — Fault resilience: the cost of recovering from a lossy fabric.

The reliable machine of E1–E14 never loses a byte; this experiment
turns on the :mod:`repro.faults` layer and measures what message loss
costs once the MPI point-to-point layer has to detect it (ack
timeouts) and repair it (retransmission with exponential backoff).  A
drop-rate × ack-timeout grid is swept against the fault-free baseline;
one extra row exercises duplicate delivery to show the suppression
path.

Expected shape: slowdown grows monotonically with drop rate at fixed
timeout (the seed-derived drop decisions are superset-stable: raising
the rate only adds drops); a timeout much longer than the network RTT
pays more per loss than a tight one; the drop=0 grid point is
bit-identical to the fault-free machine (the protocol engages only
when faults can occur); and duplicate delivery alone is nearly free —
receivers suppress replays by protocol id without retransmission.
"""

from __future__ import annotations

from dataclasses import replace

from ...core import ExperimentConfig
from ...faults import FaultPlan
from ...parallel import SweepExecutor
from ..base import ExperimentReport, Scale, check_scale, execution_policy

EXPERIMENT_ID = "E15"
TITLE = "Fault resilience: drop-rate x ack-timeout recovery cost"

_DROP_RATES = (0.0, 0.01, 0.03, 0.08)
_TIMEOUTS_NS = (200_000, 1_000_000)  # 200 us (tight), 1 ms (lazy)
_DUP_RATE = 0.05


def _label(timeout_ns: int) -> str:
    return f"{timeout_ns // 1000}us"


def run(scale: Scale = "small", *, seed: int = 151) -> ExperimentReport:
    check_scale(scale)
    nodes = 8 if scale == "small" else 32
    iterations = 20 if scale == "small" else 60
    app_params = dict(work_ns=500_000, iterations=iterations,
                      collective="allreduce")
    base = ExperimentConfig(app="bsp", nodes=nodes, noise_pattern="quiet",
                            seed=seed, kernel="lightweight",
                            app_params=app_params)

    def plan(drop: float, timeout_ns: int, dup: float = 0.0) -> FaultPlan:
        return FaultPlan(drop_rate=drop, duplicate_rate=dup, seed=seed,
                         ack_timeout_ns=timeout_ns)

    configs: dict[tuple, ExperimentConfig] = {("base",): base}
    labels = {("base",): "fault-free baseline"}
    for timeout_ns in _TIMEOUTS_NS:
        for drop in _DROP_RATES:
            key = ("fault", drop, timeout_ns)
            configs[key] = replace(base, faults=plan(drop, timeout_ns))
            labels[key] = f"drop={drop} timeout={_label(timeout_ns)}"
    dup_key = ("dup", _DUP_RATE)
    configs[dup_key] = replace(base, faults=plan(0.0, _TIMEOUTS_NS[0],
                                              dup=_DUP_RATE))
    labels[dup_key] = f"dup={_DUP_RATE}"

    policy = execution_policy()
    executor = SweepExecutor(workers=policy.workers, cache=policy.cache)
    points, _timings = executor.run_configs(configs, labels=labels)
    base_ns = points[("base",)].makespan_ns

    headers = ["drop rate", "ack timeout", "makespan ms", "slowdown %",
               "retries", "dropped", "dup suppressed"]
    rows = []
    slowdowns: dict[int, list[float]] = {t: [] for t in _TIMEOUTS_NS}
    retries: dict[int, list[int]] = {t: [] for t in _TIMEOUTS_NS}
    per_node: dict[str, dict[str, int]] = {}
    for timeout_ns in _TIMEOUTS_NS:
        for drop in _DROP_RATES:
            res = points[("fault", drop, timeout_ns)]
            sd = res.makespan_ns / base_ns - 1.0
            fs = res.meta.get("faults") or {}
            slowdowns[timeout_ns].append(sd)
            retries[timeout_ns].append(fs.get("total_retries", 0))
            if drop > 0:
                per_node[f"drop={drop}@{_label(timeout_ns)}"] = {
                    "retries_by_node": fs.get("retries", {}),
                    "drops_by_node": fs.get("drops_by_node", {}),
                }
            rows.append([drop, _label(timeout_ns),
                         round(res.makespan_ns / 1e6, 3),
                         round(100 * sd, 2),
                         fs.get("total_retries", 0),
                         fs.get("messages_dropped", 0),
                         fs.get("total_duplicates_suppressed", 0)])
    dup_res = points[dup_key]
    dup_fs = dup_res.meta.get("faults") or {}
    rows.append([f"0 (dup={_DUP_RATE})", _label(_TIMEOUTS_NS[0]),
                 round(dup_res.makespan_ns / 1e6, 3),
                 round(100 * (dup_res.makespan_ns / base_ns - 1.0), 2),
                 dup_fs.get("total_retries", 0),
                 dup_fs.get("messages_dropped", 0),
                 dup_fs.get("total_duplicates_suppressed", 0)])

    tight, lazy = _TIMEOUTS_NS
    checks = {
        "drop=0 is bit-identical to the fault-free machine": all(
            points[("fault", 0.0, t)].makespan_ns == base_ns
            for t in _TIMEOUTS_NS),
        "slowdown non-decreasing in drop rate (tight timeout)":
            all(a <= b for a, b in zip(slowdowns[tight],
                                       slowdowns[tight][1:])),
        "slowdown non-decreasing in drop rate (lazy timeout)":
            all(a <= b for a, b in zip(slowdowns[lazy],
                                       slowdowns[lazy][1:])),
        "losses trigger retransmissions":
            all(r > 0 for r in retries[tight][1:] + retries[lazy][1:]),
        "lazy timeout pays more at the highest drop rate":
            slowdowns[lazy][-1] >= slowdowns[tight][-1],
        "duplicates are suppressed without retransmission cost":
            dup_fs.get("total_duplicates_suppressed", 0) > 0
            and dup_res.makespan_ns < points[
                ("fault", _DROP_RATES[-1], tight)].makespan_ns,
    }
    findings = {
        "slowdown_pct_by_timeout": {
            _label(t): [round(100 * s, 2) for s in slowdowns[t]]
            for t in _TIMEOUTS_NS},
        "per_node_counters": per_node,
        "duplicates_suppressed": dup_fs.get(
            "total_duplicates_suppressed", 0),
    }
    return ExperimentReport(
        EXPERIMENT_ID, TITLE, headers, rows, checks=checks,
        findings=findings,
        notes=(f"BSP allreduce, P={nodes}, quiet noise; drop rates "
               f"{list(_DROP_RATES)} x ack timeouts "
               f"{[_label(t) for t in _TIMEOUTS_NS]}, seed={seed}"))
