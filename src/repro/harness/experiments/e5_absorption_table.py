"""E5 — The absorption/amplification table.

At a fixed machine size, cross every application with every noise
pattern (plus a Poisson variant and a burst variant at the same net
utilization) and classify each cell: *absorbed* (slowdown well under
the injected share), *transferred* (≈ the injected share), or
*amplified* (a multiple of it).

Expected shape: the verdict depends far more on the (app, granularity)
pair than on the net percentage — the table's whole point.
"""

from __future__ import annotations

from ...core import ExperimentConfig, run_with_baseline
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E5"
TITLE = "Absorption vs amplification per (application, pattern)"

_PATTERNS = ["2.5pct@10Hz", "2.5pct@100Hz", "2.5pct@1000Hz",
             "2.5pct@100HzPoisson", "2.5pct@10Hzburst8"]

_APP_PARAMS = {
    "pop": dict(baroclinic_ns=5_000_000, solver_iterations=40,
                solver_compute_ns=10_000, iterations=4),
    "stencil": dict(work_ns=20_000_000, halo_bytes=8192, iterations=12,
                    dt_interval=6),
    "cg": dict(spmv_ns=5_000_000, exchange_bytes=8192, iterations=12),
    "sweep": dict(block_work_ns=500_000, blocks_per_rank=6, iterations=4),
}


def run(scale: Scale = "small", *, seed: int = 53) -> ExperimentReport:
    check_scale(scale)
    nodes = 16 if scale == "small" else 64

    headers = ["app", "pattern", "injected %", "slowdown %",
               "amplification", "verdict"]
    rows = []
    verdicts: dict[tuple[str, str], str] = {}
    amps: dict[tuple[str, str], float] = {}
    for app, params in _APP_PARAMS.items():
        for pattern in _PATTERNS:
            cmp = run_with_baseline(ExperimentConfig(
                app=app, nodes=nodes, noise_pattern=pattern, seed=seed,
                kernel="lightweight", app_params=params))
            sd = cmp.slowdown
            verdicts[(app, pattern)] = sd.verdict
            amps[(app, pattern)] = sd.amplification
            rows.append([app, pattern,
                         round(100 * sd.injected_utilization, 2),
                         round(sd.slowdown_percent, 2),
                         round(sd.amplification, 2), sd.verdict])

    checks = {
        "pop amplifies coarse noise":
            verdicts[("pop", "2.5pct@10Hz")] == "amplified",
        "stencil does not amplify fine noise":
            verdicts[("stencil", "2.5pct@1000Hz")] in ("absorbed",
                                                       "transferred"),
        "every app: coarse amplification > fine amplification":
            all(amps[(a, "2.5pct@10Hz")] > amps[(a, "2.5pct@1000Hz")]
                for a in _APP_PARAMS),
        "Poisson ~ periodic at same rate (within 3x)":
            all(amps[(a, "2.5pct@100HzPoisson")]
                < 3 * max(amps[(a, "2.5pct@100Hz")], 1.0)
                for a in _APP_PARAMS),
        "bursty 10Hz behaves like coarse noise (amplified for pop)":
            amps[("pop", "2.5pct@10Hzburst8")] > 2.0,
        "same net % spans absorbed..amplified across the table":
            any(v == "amplified" for v in verdicts.values())
            and any(v in ("absorbed", "transferred")
                    for v in verdicts.values()),
    }
    findings = {"amplification_matrix":
                {f"{a}/{p}": round(amps[(a, p)], 2)
                 for a in _APP_PARAMS for p in _PATTERNS}}
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes=f"P={nodes}, random per-node phases")
