"""E6 — Attribution accuracy: does the observer explain app slowdown?

Run an observed application under a mix of kernel + injected noise and
score the observer three ways:

1. **accounting closure** — per interval, charged kernel time vs the
   simulator's ground truth (the observer should account for all of it);
2. **variance explanation** — correlation between interval duration and
   charged noise across intervals (slow iterations should be slow
   *because of* charged activity);
3. **slow-interval explanation** — every ≥1.5×-median interval should
   have a named thief, and the thief should be the big injected source.

This is the experiment that justifies trusting E2/E4's attributions.
"""

from __future__ import annotations

from ...analysis.correlation import score_attribution
from ...apps import BSPApp
from ...core import Machine, MachineConfig
from ...ktau import KtauTracer, attribute_intervals, explain_slow_intervals
from ...noise import InjectionPlan
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E6"
TITLE = "Observer attribution vs ground truth"


def run(scale: Scale = "small", *, seed: int = 61) -> ExperimentReport:
    check_scale(scale)
    iterations = 60 if scale == "small" else 400
    machine = Machine(MachineConfig(
        n_nodes=4, kernel="tuned-linux",
        injection=InjectionPlan("2.5pct@10Hz", seed=seed), seed=seed))
    tracer = KtauTracer(machine, level="trace", overhead="profile")
    app = BSPApp(work_ns=3_000_000, iterations=iterations,
                 collective="none").bind_tracer(tracer)
    machine.run_to_completion(machine.launch(app))

    headers = ["node", "intervals", "duration~charged r", "coverage",
               "mean abs err ns", "slow intervals", "thief==injected"]
    rows = []
    all_r, all_cov = [], []
    thief_ok_all = True
    for node in range(machine.n_nodes):
        atts = attribute_intervals(tracer, node, "bsp:iteration")
        durations = [a.duration_ns for a in atts]
        charged = [a.noise_ns for a in atts]
        # Ground truth: the simulator's own noise accounting (kernel +
        # injected, exclusive of syscalls — there are none here).
        truth = [machine.nodes[node].noise.stolen_between(
            a.interval.start, a.interval.end) for a in atts]
        score = score_attribution(durations, charged, truth)
        slow = explain_slow_intervals(atts, threshold=1.5)
        thieves_ok = all(s.thief == "2.5pct@10hz" for s in slow)
        thief_ok_all = thief_ok_all and thieves_ok
        all_r.append(score.duration_vs_charged)
        all_cov.append(score.coverage)
        rows.append([node, len(atts),
                     round(score.duration_vs_charged, 4),
                     round(score.coverage, 4),
                     round(score.mean_abs_error_ns, 1),
                     len(slow), thieves_ok])

    checks = {
        # Charged may exceed truth by the observer's own live marker
        # cost (a few tens of ns per interval) — require closure within
        # 0.01 % and sub-100 ns mean error.
        "charged time matches ground truth (within 0.01%)":
            max(abs(c - 1.0) for c in all_cov) < 1e-4
            and max(float(r[4]) for r in rows) < 100,
        "duration variance explained (r > 0.95)":
            min(all_r) > 0.95,
        "every slow interval's thief is the injected source":
            thief_ok_all,
        "slow intervals exist to explain":
            any(row[5] > 0 for row in rows),
    }
    findings = {
        "min_r": round(min(all_r), 4),
        "coverage": [round(c, 6) for c in all_cov],
    }
    return ExperimentReport(
        EXPERIMENT_ID, TITLE, headers, rows, checks=checks,
        findings=findings,
        notes="BSP (no collective) so per-node intervals isolate per-node "
              "noise; tuned-linux kernel + 2.5pct@10Hz injected")
