"""E13 — Interconnect substrate vs noise cost.

A question the paper's era debated: does a slower network "hide" kernel
noise (the event is a smaller fraction of an already-slow iteration)?
The answer this experiment demonstrates is *no* for host-driven
fabrics: a slower commodity network means larger per-message CPU
overhead (LogGP ``o``) and longer collectives, i.e. **more exposure**
— more CPU on the messaging path for the kernel to steal and longer
dependency chains for a single strike to stall.  The offload-class
fabric (seastar) suffers least in both relative and absolute terms;
absolute added time *grows* toward the host-driven gigabit stack.

This is the double penalty commodity clusters paid: noisy kernels and
noise-exposed networking, compounding.
"""

from __future__ import annotations

from ...core import ExperimentConfig, run_with_baseline
from ..base import ExperimentReport, Scale, check_scale

EXPERIMENT_ID = "E13"
TITLE = "Noise amplification vs interconnect speed"

_NETWORKS = ("seastar", "infiniband", "gige")


def run(scale: Scale = "small", *, seed: int = 131) -> ExperimentReport:
    check_scale(scale)
    nodes = 16 if scale == "small" else 64
    app_params = dict(baroclinic_ns=2_000_000, solver_iterations=30,
                      solver_compute_ns=10_000, iterations=4)

    headers = ["network", "quiet ms", "noisy ms", "slowdown %",
               "added ms"]
    rows = []
    rel: dict[str, float] = {}
    added: dict[str, float] = {}
    for net in _NETWORKS:
        cmp = run_with_baseline(ExperimentConfig(
            app="pop", nodes=nodes, noise_pattern="2.5pct@10Hz",
            network=net, seed=seed, kernel="lightweight",
            app_params=app_params))
        rel[net] = cmp.slowdown.slowdown_fraction
        added[net] = (cmp.noisy.makespan_ns - cmp.quiet.makespan_ns) / 1e6
        rows.append([net, round(cmp.quiet.makespan_ns / 1e6, 2),
                     round(cmp.noisy.makespan_ns / 1e6, 2),
                     round(cmp.slowdown.slowdown_percent, 2),
                     round(added[net], 2)])

    checks = {
        "offload-class fabric suffers least (relative)":
            rel["seastar"] == min(rel.values()),
        "offload-class fabric suffers least (absolute)":
            added["seastar"] == min(added.values()),
        "absolute noise cost grows toward host-driven fabrics":
            added["seastar"] < added["infiniband"] < added["gige"],
        "noise hurts on every fabric":
            all(v > 0 for v in rel.values()),
    }
    findings = {
        "relative_slowdown_pct": {n: round(100 * v, 2)
                                  for n, v in rel.items()},
        "absolute_added_ms": {n: round(v, 2) for n, v in added.items()},
    }
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes=f"POP-like, P={nodes}, 2.5pct@10Hz, "
                                  "random phases")
