"""E9 — Cross-node noise alignment: co-scheduling the ghost.

The same 2.5 % @ 10 Hz pattern is injected three ways: with every node
struck simultaneously (idealized gang-scheduled kernel work), with
independent random phases (reality on unsynchronized kernels), and
deliberately staggered so some node is always down (adversarial).

Expected shape: synchronized noise costs ≈ the injected share (nodes
lose the same instants, collectives don't wait extra); random phases
amplify; staggering is at least as bad as random.  This is the
experiment behind the era's co-scheduled-daemons folklore.
"""

from __future__ import annotations

from ...core import ExperimentConfig
from ...parallel import SweepExecutor
from ..base import ExperimentReport, Scale, check_scale, execution_policy

EXPERIMENT_ID = "E9"
TITLE = "Synchronized vs unsynchronized noise across nodes"

_ALIGNMENTS = ("synchronized", "random", "staggered")


def run(scale: Scale = "small", *, seed: int = 97) -> ExperimentReport:
    check_scale(scale)
    nodes = 32 if scale == "small" else 128
    app_params = dict(work_ns=2_000_000, iterations=40,
                      collective="allreduce")

    headers = ["alignment", "quiet ms", "noisy ms", "slowdown %",
               "amplification"]
    rows = []
    slow: dict[str, float] = {}
    policy = execution_policy()
    executor = SweepExecutor(workers=policy.workers, cache=policy.cache)
    comparisons = executor.run_comparisons({
        alignment: ExperimentConfig(
            app="bsp", nodes=nodes, noise_pattern="2.5pct@10Hz",
            alignment=alignment, seed=seed, kernel="lightweight",
            app_params=app_params)
        for alignment in _ALIGNMENTS})
    for alignment in _ALIGNMENTS:
        cmp = comparisons[alignment]
        sd = cmp.slowdown
        slow[alignment] = sd.slowdown_fraction
        rows.append([alignment, round(cmp.quiet.makespan_ns / 1e6, 2),
                     round(cmp.noisy.makespan_ns / 1e6, 2),
                     round(sd.slowdown_percent, 2),
                     round(sd.amplification, 2)])

    checks = {
        "synchronized noise ~ absorbed (amp < 2)":
            slow["synchronized"] < 2 * 0.025,
        "random phases amplify (amp > 3)":
            slow["random"] > 3 * 0.025,
        "synchronized beats random by > 2x":
            slow["random"] > 2 * slow["synchronized"],
        "staggered at least as bad as synchronized":
            slow["staggered"] >= slow["synchronized"],
    }
    findings = {"slowdown_pct": {a: round(100 * s, 2)
                                 for a, s in slow.items()}}
    return ExperimentReport(EXPERIMENT_ID, TITLE, headers, rows,
                            checks=checks, findings=findings,
                            notes=f"BSP allreduce, P={nodes}, 2.5pct@10Hz")
