"""E20 — Idle-wave propagation & decay from a planted one-off delay.

Afzal, Hager & Wellein (arXiv:1905.10603) turned the paper's causal
story — kernel noise does its damage by *propagating* through
communication dependencies — into a sharp, testable prediction.  Delay
one rank, once, and the delay does not stay put: it travels through
the program as an *idle wave* whose speed is set by the communication
pattern and whose decay length shrinks as background noise supplies
the slack that absorbs it.  This experiment plants exactly that probe
(:attr:`repro.faults.FaultPlan.one_off`) and measures the wave with
:mod:`repro.obs.wavefront` on two axes:

* **speed axis** — a tightly coupled BSP + allreduce program on a
  quiet machine, once with the ``ring`` algorithm and once with the
  topology-aware ``two-level`` algorithm.  The ring serializes the
  wave through P−1 forward hops (arrival order *is* the forward ring
  order); the two-level tree crosses the machine in O(tree-depth)
  hops, so the same delay sweeps the machine far faster.  Same
  machine, same delay — only the collective's dependency structure
  differs, and the wave speed follows it.
* **decay axis** — a loosely coupled halo-exchange stencil (no global
  collective), where the wave creeps neighbour-to-neighbour and
  background noise gets many iterations to act on it.  Quiet: the
  wave is undamped — every rank receives the full planted delay.
  Fine-grained Poisson noise (1000 Hz): each hop absorbs a little,
  finite decay length.  Coarse-grained Poisson noise (10 Hz, same
  utilization): rare-but-huge stalls create rank-sized slack pools
  that swallow the wave within a hop or two.  Decay length must
  *strictly decrease* from quiet → 1000 Hz → 10 Hz.  (Poisson
  arrivals, because damping is driven by cross-rank *variance* in
  stolen time — strictly periodic noise steals nearly equally from
  every rank per iteration and can leave the wave untouched.)

Every run is routed through :class:`~repro.parallel.SweepExecutor`,
so ``--workers`` fan-out must reproduce the serial report
byte-for-byte (the wavefront extractor is pure arithmetic over edge
logs that ride home in ``RunResult.meta``).

Checks
------
1. ring arrival order matches the forward ring order exactly, and the
   measured hop count of every rank equals its forward ring distance;
2. the wave reaches every rank under both collective algorithms;
3. the collective pattern sets the speed: the ring wave needs more
   hops and takes strictly longer to cross the machine;
4. quiet runs preserve the delay undamped (full residual everywhere,
   and the BSP makespan shifts by exactly the planted duration);
5. effective decay length strictly decreases quiet → 1000 Hz → 10 Hz;
6. background noise damps the wave: both noisy decay lengths are
   finite.
"""

from __future__ import annotations

import math
from dataclasses import replace

from ...core import ExperimentConfig
from ...faults import FaultPlan
from ...obs.wavefront import WavefrontResult, extract_wavefront
from ...parallel import SweepExecutor
from ..base import ExperimentReport, Scale, check_scale, execution_policy

EXPERIMENT_ID = "E20"
TITLE = "Idle-wave propagation & decay from a planted one-off delay"

#: Speed axis: BSP + allreduce, quiet machine.
_SPEED_T0_NS = 2_000_000
_SPEED_DURATION_NS = 500_000
_SPEED_SOURCE = 2
_SPEED_WORK_NS = 200_000

#: Decay axis: halo-exchange stencil, no global collective.
_DECAY_T0_NS = 50_000_000
_DECAY_DURATION_NS = 750_000
_DECAY_WORK_NS = 2_000_000
#: Decay-axis noise ladder per scale: coarse 10 Hz events are rare, so
#: the small 16-rank box needs a higher utilization for the handful of
#: events to reliably intersect the wave's transit cone; at 32 ranks
#: the canonical 2.5 % is plenty.
_DECAY_UTIL = {"small": "10pct", "full": "2.5pct"}


def _decay_patterns(scale: Scale) -> tuple[str, str, str]:
    util = _DECAY_UTIL[scale]
    return ("quiet", f"{util}@1000HzPoisson", f"{util}@10HzPoisson")


def _grid_interior_rank(n_nodes: int) -> int:
    """Rank at grid coordinate (1, 1) — an interior wave source."""
    from ...apps.base import grid_dims
    px, _py = grid_dims(n_nodes)
    return px + 1

def _crossing_ns(wave: WavefrontResult) -> int:
    """Time for the wave to sweep from its first to its last arrival
    (source excluded: the interval that measures hop serialization)."""
    others = [t for r, t in wave.arrival_ns.items()
              if r != wave.source_rank]
    return max(others) - min(others) if others else 0


def _fmt_decay(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value:.2f}"


def run(scale: Scale = "small", *, seed: int = 201) -> ExperimentReport:
    check_scale(scale)
    nodes = 16 if scale == "small" else 32
    shape = "4x2x2@fat-tree" if scale == "small" else "4x4x2@fat-tree"
    bsp_iterations = 30 if scale == "small" else 40
    stencil_iterations = 100 if scale == "small" else 140
    decay_source = _grid_interior_rank(nodes)
    decay_patterns = _decay_patterns(scale)

    speed_base = ExperimentConfig(
        app="bsp", nodes=nodes, noise_pattern="quiet", seed=seed,
        kernel="lightweight", record_edges=True,
        app_params=dict(work_ns=_SPEED_WORK_NS, iterations=bsp_iterations))
    speed_delay = FaultPlan(
        one_off=((_SPEED_SOURCE, _SPEED_T0_NS, _SPEED_DURATION_NS),),
        seed=seed)
    decay_base = ExperimentConfig(
        app="stencil", nodes=nodes, noise_pattern="quiet", seed=seed,
        kernel="lightweight", record_edges=True,
        app_params=dict(work_ns=_DECAY_WORK_NS,
                        iterations=stencil_iterations, dt_interval=0))
    decay_delay = FaultPlan(
        one_off=((decay_source, _DECAY_T0_NS, _DECAY_DURATION_NS),),
        seed=seed)

    configs: dict[tuple, ExperimentConfig] = {}
    labels: dict[tuple, str] = {}
    for algo in ("ring", "two-level"):
        cfg = replace(speed_base, collectives={"allreduce": algo},
                      shape=shape if algo == "two-level" else None)
        configs[("speed", algo, "base")] = cfg
        configs[("speed", algo, "delayed")] = replace(cfg,
                                                      faults=speed_delay)
        labels[("speed", algo, "base")] = f"speed {algo} baseline"
        labels[("speed", algo, "delayed")] = f"speed {algo} delayed"
    for pattern in decay_patterns:
        cfg = replace(decay_base, noise_pattern=pattern)
        configs[("decay", pattern, "base")] = cfg
        configs[("decay", pattern, "delayed")] = replace(cfg,
                                                         faults=decay_delay)
        labels[("decay", pattern, "base")] = f"decay {pattern} baseline"
        labels[("decay", pattern, "delayed")] = f"decay {pattern} delayed"

    policy = execution_policy()
    executor = SweepExecutor(workers=policy.workers, cache=policy.cache)
    points, _timings = executor.run_configs(configs, labels=labels)

    speed_waves: dict[str, WavefrontResult] = {}
    for algo in ("ring", "two-level"):
        speed_waves[algo] = extract_wavefront(
            points[("speed", algo, "base")].meta["edge_log"],
            points[("speed", algo, "delayed")].meta["edge_log"],
            source_rank=_SPEED_SOURCE, t0_ns=_SPEED_T0_NS,
            duration_ns=_SPEED_DURATION_NS)
    decay_waves: dict[str, WavefrontResult] = {}
    for pattern in decay_patterns:
        decay_waves[pattern] = extract_wavefront(
            points[("decay", pattern, "base")].meta["edge_log"],
            points[("decay", pattern, "delayed")].meta["edge_log"],
            source_rank=decay_source, t0_ns=_DECAY_T0_NS,
            duration_ns=_DECAY_DURATION_NS)

    headers = ["axis", "cell", "reached", "max hops", "ns/hop",
               "crossing us", "decay length", "undamped"]
    rows = []
    for algo, wave in speed_waves.items():
        per_hop = wave.speed_ns_per_hop
        rows.append(["speed", f"bsp/{algo}",
                     f"{wave.ranks_reached}/{wave.n_ranks}",
                     max(wave.hops.values()),
                     round(per_hop, 1) if per_hop is not None else "-",
                     round(_crossing_ns(wave) / 1e3, 3),
                     _fmt_decay(wave.effective_decay_length),
                     wave.undamped])
    for pattern, wave in decay_waves.items():
        per_hop = wave.speed_ns_per_hop
        rows.append(["decay", f"stencil/{pattern}",
                     f"{wave.ranks_reached}/{wave.n_ranks}",
                     max(wave.hops.values()),
                     round(per_hop, 1) if per_hop is not None else "-",
                     round(_crossing_ns(wave) / 1e3, 3),
                     _fmt_decay(wave.effective_decay_length),
                     wave.undamped])

    ring = speed_waves["ring"]
    two_level = speed_waves["two-level"]
    ring_order = [(_SPEED_SOURCE + k) % nodes for k in range(nodes)]
    ring_makespan_shift = (
        points[("speed", "ring", "delayed")].makespan_ns
        - points[("speed", "ring", "base")].makespan_ns)
    decay_lengths = [decay_waves[p].effective_decay_length
                     for p in decay_patterns]

    checks = {
        "ring arrival order is the forward ring order, hop-exact":
            ring.arrival_order() == ring_order
            and all(ring.hops.get(r) == (r - _SPEED_SOURCE) % nodes
                    for r in ring_order),
        "wave reaches every rank under both collective algorithms":
            ring.ranks_reached == nodes
            and two_level.ranks_reached == nodes,
        "collective pattern sets the speed (ring slower than two-level)":
            max(ring.hops.values()) > max(two_level.hops.values())
            and _crossing_ns(ring) > _crossing_ns(two_level),
        "quiet runs preserve the delay undamped":
            ring.undamped and two_level.undamped
            and decay_waves["quiet"].undamped
            and ring_makespan_shift == _SPEED_DURATION_NS,
        "decay length strictly decreases quiet -> 1000Hz -> 10Hz":
            decay_lengths[0] > decay_lengths[1] > decay_lengths[2],
        "background noise damps the wave (finite decay lengths)":
            all(math.isfinite(d) for d in decay_lengths[1:]),
    }
    findings = {
        "ring_crossing_us": round(_crossing_ns(ring) / 1e3, 3),
        "two_level_crossing_us": round(_crossing_ns(two_level) / 1e3, 3),
        "ring_max_hops": max(ring.hops.values()),
        "two_level_max_hops": max(two_level.hops.values()),
        "ring_makespan_shift_ns": ring_makespan_shift,
        "decay_length_quiet": _fmt_decay(decay_lengths[0]),
        "decay_length_1000Hz": _fmt_decay(decay_lengths[1]),
        "decay_length_10Hz": _fmt_decay(decay_lengths[2]),
        "decay_ranks_reached": {
            p: decay_waves[p].ranks_reached for p in decay_patterns},
    }
    return ExperimentReport(
        EXPERIMENT_ID, TITLE, headers, rows, checks=checks,
        findings=findings,
        notes=f"one-off delay {_SPEED_DURATION_NS / 1e3:.0f}us on rank "
              f"{_SPEED_SOURCE} (bsp) / {_DECAY_DURATION_NS / 1e3:.0f}us "
              f"on rank {decay_source} (stencil), {nodes} ranks; "
              f"speed axis quiet ring vs two-level@{shape}, decay axis "
              f"stencil dt_interval=0 under "
              f"{', '.join(decay_patterns)}")
