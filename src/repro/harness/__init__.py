"""The paper-experiment harness: E1–E10, one module each.

Each experiment regenerates one table/figure of the evaluation with
executable *shape checks* (DESIGN.md's reproduction criteria)::

    from repro.harness import run_experiment, run_all, render_markdown

    report = run_experiment("E4")       # one experiment
    print(report.render())

    reports = run_all("small")          # the whole evaluation
    open("EXPERIMENTS.md", "w").write(render_markdown(reports))
"""

from .base import (
    ExecutionPolicy,
    ExperimentReport,
    Scale,
    execution_policy,
    set_execution_policy,
)
from .registry import EXPERIMENTS, experiment_ids, run_all, run_experiment
from .report import render_markdown, render_summary

__all__ = [
    "ExperimentReport", "Scale",
    "ExecutionPolicy", "execution_policy", "set_execution_policy",
    "EXPERIMENTS", "experiment_ids", "run_experiment", "run_all",
    "render_markdown", "render_summary",
]
