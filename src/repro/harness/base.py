"""Experiment harness plumbing.

Every paper experiment (E1–E10) is one module exposing a
``run(scale) -> ExperimentReport``.  A report carries the table the
experiment regenerates (headers + rows), free-form findings, and a
``checks`` dict of named booleans asserting the *shape* of the result
(who wins, what grows, what stays flat) — the reproduction criteria
from DESIGN.md, executable.

Scales:

* ``"small"`` — CI-sized: runs in seconds, same qualitative shape.
* ``"full"`` — paper-sized curves (minutes; used for EXPERIMENTS.md).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from ..analysis.tables import format_csv, format_table
from ..errors import ConfigError

__all__ = ["ExperimentReport", "Scale", "check_scale",
           "ExecutionPolicy", "execution_policy", "set_execution_policy"]

Scale = str
_SCALES = ("small", "full")


def check_scale(scale: Scale) -> Scale:
    if scale not in _SCALES:
        raise ConfigError(f"scale must be one of {_SCALES}, got {scale!r}")
    return scale


@dataclass
class ExecutionPolicy:
    """How harness experiments execute their sweeps.

    Experiments stay pure ``run(scale) -> report`` functions; the CLI
    (``--workers`` / ``--cache``) sets this process-wide policy and
    sweep-shaped experiments route through
    :class:`repro.parallel.SweepExecutor` accordingly.

    Attributes
    ----------
    workers:
        Process fan-out for sweep points (1 = serial in-process;
        ``None``/0 = one per CPU).
    cache:
        Optional on-disk result-cache directory (or a
        :class:`~repro.parallel.ResultCache`).
    """

    workers: int | None = 1
    cache: _t.Any = None


_POLICY = ExecutionPolicy()


def execution_policy() -> ExecutionPolicy:
    """The process-wide harness execution policy."""
    return _POLICY


def set_execution_policy(*, workers: int | None = None,
                         cache: _t.Any = None) -> ExecutionPolicy:
    """Update the process-wide policy; returns it.

    ``workers=None`` leaves the current worker setting untouched (use
    ``workers=0`` for "one per CPU"); ``cache=None`` leaves caching
    untouched and ``cache=""`` disables it.
    """
    if workers is not None:
        _POLICY.workers = workers
    if cache is not None:
        _POLICY.cache = cache or None
    return _POLICY


@dataclass
class ExperimentReport:
    """The output of one harness experiment."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[_t.Any]]
    #: Named shape assertions; all must be True for the reproduction
    #: to count as matching the paper's qualitative result.
    checks: dict[str, bool] = field(default_factory=dict)
    #: Free-form measured quantities quoted in EXPERIMENTS.md.
    findings: dict[str, _t.Any] = field(default_factory=dict)
    notes: str = ""
    #: Telemetry attached by the registry when :mod:`repro.obs` metrics
    #: are enabled (per-experiment snapshot delta).  Rendered only when
    #: explicitly requested so default report bytes never change.
    metrics: dict[str, _t.Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def table(self) -> str:
        return format_table(self.headers, self.rows,
                            title=f"{self.experiment_id}: {self.title}")

    def csv(self) -> str:
        return format_csv(self.headers, self.rows)

    def render(self, *, include_metrics: bool = False) -> str:
        """Full plain-text report.

        ``include_metrics`` appends the telemetry block (when one was
        collected); the default output is byte-identical to pre-obs
        builds.
        """
        parts = [self.table()]
        if self.findings:
            parts.append("findings:")
            for key, value in self.findings.items():
                parts.append(f"  {key}: {value}")
        parts.append("checks:")
        for name, ok in self.checks.items():
            parts.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        if include_metrics and self.metrics:
            parts.append("metrics:")
            for key, value in self.metrics.items():
                parts.append(f"  {key}: {value}")
        return "\n".join(parts) + "\n"
