"""Checked-in baseline of grandfathered detlint findings.

A baseline entry pins one finding by its content fingerprint (rule id +
normalized path + offending line text + occurrence index — line-number
independent, see :func:`repro.lint.engine._assign_fingerprints`) plus a
human justification.  Baselined findings do not fail the run but are
reported separately, so the debt stays visible.

Policy (docs/STATIC_ANALYSIS.md): new findings are fixed or inline-
suppressed with a justification; the baseline exists for pre-existing
findings grandfathered at rule-introduction time and should only ever
shrink.  ``python -m repro.lint --write-baseline`` regenerates it.
"""

from __future__ import annotations

import json
import typing as _t
from pathlib import Path

from ..errors import ConfigError
from .engine import Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "detlint-baseline.json"


class Baseline:
    """A set of fingerprinted, justified findings that do not fail CI."""

    def __init__(self, entries: _t.Iterable[dict[str, _t.Any]] = ()) -> None:
        self.entries: list[dict[str, _t.Any]] = list(entries)
        self._fingerprints = {e["fingerprint"] for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self._fingerprints

    @classmethod
    def from_findings(cls, findings: _t.Iterable[Finding],
                      justification: str = "grandfathered at "
                      "rule-introduction time") -> "Baseline":
        return cls({"rule": f.rule, "path": f.path, "line": f.line,
                    "fingerprint": f.fingerprint,
                    "justification": justification}
                   for f in findings)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("tool") != "detlint":
            raise ConfigError(f"{path} is not a detlint baseline")
        if doc.get("version") != BASELINE_VERSION:
            raise ConfigError(
                f"baseline {path} has version {doc.get('version')!r}; "
                f"this detlint reads version {BASELINE_VERSION}")
        entries = doc.get("entries", [])
        for e in entries:
            if "fingerprint" not in e:
                raise ConfigError(f"baseline {path} entry missing "
                                  f"fingerprint: {e!r}")
        return cls(entries)

    def stale_entries(self, fired: _t.Collection[str]
                      ) -> list[dict[str, _t.Any]]:
        """Entries whose fingerprint no longer fires anywhere.

        ``fired`` is the set of fingerprints produced by a lint run
        over the full tree *without* baseline filtering.  Stale
        entries are baseline rot: the finding was fixed but the
        grandfather clause stayed behind, ready to mask a future
        regression that happens to hash the same.
        """
        fired = set(fired)
        return [e for e in self.entries if e["fingerprint"] not in fired]

    def pruned(self, fired: _t.Collection[str]) -> "Baseline":
        """A new baseline with stale entries dropped."""
        fired = set(fired)
        return Baseline(e for e in self.entries
                        if e["fingerprint"] in fired)

    def dump(self, path: str | Path) -> None:
        doc = {"tool": "detlint", "version": BASELINE_VERSION,
               "entries": sorted(self.entries,
                                 key=lambda e: (e.get("path", ""),
                                                e.get("line", 0),
                                                e.get("rule", "")))}
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True)
                              + "\n", encoding="utf-8")
