"""Mechanical fixers for ``repro lint --fix``.

A fixer turns one finding into an exact byte-span :class:`Patch`
against the original source — no reformatting, no AST round-trip, so a
fix touches only the bytes it must.  Three rules have fixers today:

* **DET003** — wrap the offending set iterable in ``sorted(...)``.
* **DET005** — wrap the set argument of ``sum()``/``fsum()`` in
  ``sorted(...)``.
* **PERF001** — insert a ``__slots__`` declaration (attribute names
  harvested from ``self.x = ...`` assignments in definition order).

``--suppress RULE[,RULE...]`` additionally appends an inline
``# detlint: disable=RULE -- TODO: justify`` comment to every finding
of the named rules — a deliberate escape hatch that leaves a visible
TODO rather than silently hiding debt.

Patches are validated to be non-overlapping and applied right-to-left,
so earlier patches never shift later spans; running ``--fix`` twice is
a no-op by construction (the rewritten code no longer triggers the
rule).
"""

from __future__ import annotations

import ast
import dataclasses
import difflib
import typing as _t
from pathlib import Path

from .engine import Finding, LintReport, ModuleUnderLint, lint_paths

__all__ = ["Patch", "FixResult", "plan_fixes", "apply_patches",
           "fix_tree", "FIXERS"]


@dataclasses.dataclass(frozen=True)
class Patch:
    """Replace ``source[start:end]`` with ``replacement``."""

    start: int
    end: int
    replacement: str


@dataclasses.dataclass
class FixResult:
    """Outcome of one ``--fix`` / ``--diff`` pass."""

    #: normalized path -> rewritten source (differs from the original).
    new_sources: dict[str, str] = dataclasses.field(default_factory=dict)
    #: normalized path -> unified diff against the original.
    diffs: dict[str, str] = dataclasses.field(default_factory=dict)
    #: number of individual patches applied across all files.
    patches: int = 0
    #: the lint report the fixes were planned from.
    report: LintReport | None = None

    @property
    def changed_files(self) -> int:
        return len(self.new_sources)


def _line_starts(source: str) -> list[int]:
    starts = [0]
    for i, ch in enumerate(source):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def _offset(starts: list[int], lineno: int, col: int) -> int:
    return starts[lineno - 1] + col


def _node_span(starts: list[int], node: ast.AST) -> tuple[int, int] | None:
    end_lineno = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_lineno is None or end_col is None:
        return None
    return (_offset(starts, node.lineno, node.col_offset),
            _offset(starts, end_lineno, end_col))


# -- per-rule fixers -------------------------------------------------------

def _fix_wrap_sorted(mod: ModuleUnderLint,
                     finding: Finding) -> Patch | None:
    """DET003/DET005: wrap the unordered iterable in ``sorted(...)``."""
    node = finding.fix_node
    if node is None:
        return None
    starts = _line_starts(mod.source)
    span = _node_span(starts, node)
    if span is None:
        return None
    start, end = span
    segment = mod.source[start:end]
    return Patch(start, end, f"sorted({segment})")


def _slot_names(cls: ast.ClassDef) -> list[str]:
    """Instance attribute names in first-assignment order."""
    seen: list[str] = []
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                if isinstance(t, ast.Attribute) \
                        and isinstance(t.value, ast.Name) \
                        and t.value.id == "self" \
                        and t.attr not in seen:
                    seen.append(t.attr)
    return seen


def _fix_missing_slots(mod: ModuleUnderLint,
                       finding: Finding) -> Patch | None:
    """PERF001: insert ``__slots__`` after the class docstring."""
    cls = finding.fix_node
    if not isinstance(cls, ast.ClassDef) or not cls.body:
        return None
    names = _slot_names(cls)
    anchor = cls.body[0]
    if isinstance(anchor, ast.Expr) \
            and isinstance(anchor.value, ast.Constant) \
            and isinstance(anchor.value.value, str) \
            and len(cls.body) > 1:
        anchor = cls.body[1]
    starts = _line_starts(mod.source)
    insert_at = starts[anchor.lineno - 1]
    indent = " " * anchor.col_offset
    if len(names) == 1:
        tuple_src = f'("{names[0]}",)'
    else:
        tuple_src = "(" + ", ".join(f'"{n}"' for n in names) + ")"
    blank = "\n" if anchor is not cls.body[0] else ""
    return Patch(insert_at, insert_at,
                 f"{indent}__slots__ = {tuple_src}\n{blank}")


#: rule id -> fixer; keep in sync with ``fixable = True`` on the rule
#: classes (asserted by tests/test_lint_fix.py).
FIXERS: dict[str, _t.Callable[[ModuleUnderLint, Finding], Patch | None]] = {
    "DET003": _fix_wrap_sorted,
    "DET005": _fix_wrap_sorted,
    "PERF001": _fix_missing_slots,
}


def _suppression_patches(mod: ModuleUnderLint,
                         findings: list[Finding]) -> list[Patch]:
    """One end-of-line suppression comment per (line, rule set)."""
    by_line: dict[int, set[str]] = {}
    for f in findings:
        by_line.setdefault(f.line, set()).add(f.rule)
    starts = _line_starts(mod.source)
    out: list[Patch] = []
    for lineno, rules in sorted(by_line.items()):
        line = mod.line_text(lineno)
        if "detlint:" in line:
            continue  # already carries a suppression; do not stack
        eol = (starts[lineno] - 1 if lineno < len(starts)
               else len(mod.source))
        spec = ",".join(sorted(rules))
        out.append(Patch(eol, eol,
                         f"  # detlint: disable={spec} -- TODO: justify"))
    return out


def plan_fixes(report: LintReport, *,
               rules: _t.Collection[str] | None = None,
               suppress: _t.Collection[str] = (),
               ) -> dict[str, list[Patch]]:
    """Patches per normalized path for the report's active findings.

    ``rules`` restricts which fixable rules are rewritten (default:
    all); ``suppress`` names rules whose findings get an inline
    suppression comment instead of a rewrite.  Baselined and
    already-suppressed findings are never touched.  Overlapping
    patches are dropped deterministically (first in span order wins).
    """
    plans: dict[str, list[Patch]] = {}
    to_suppress: dict[str, list[Finding]] = {}
    for f in report.findings:
        mod = report.modules.get(f.path)
        if mod is None:
            continue
        if f.rule in suppress:
            to_suppress.setdefault(f.path, []).append(f)
            continue
        if rules is not None and f.rule not in rules:
            continue
        fixer = FIXERS.get(f.rule)
        if fixer is None:
            continue
        patch = fixer(mod, f)
        if patch is not None:
            plans.setdefault(f.path, []).append(patch)
    for path, findings in to_suppress.items():
        plans.setdefault(path, []).extend(
            _suppression_patches(report.modules[path], findings))
    out: dict[str, list[Patch]] = {}
    for path, patches in plans.items():
        kept: list[Patch] = []
        last_end = -1
        for p in sorted(set(patches), key=lambda p: (p.start, p.end)):
            if p.start < last_end:
                continue  # overlaps the previous patch; skip
            kept.append(p)
            last_end = max(last_end, p.end) if p.end > p.start \
                else max(last_end, p.start + 1)
        if kept:
            out[path] = kept
    return out


def apply_patches(source: str, patches: _t.Sequence[Patch]) -> str:
    """Apply non-overlapping patches right-to-left."""
    for p in sorted(patches, key=lambda p: p.start, reverse=True):
        source = source[:p.start] + p.replacement + source[p.end:]
    return source


def fix_tree(paths: _t.Iterable[str | Path], *,
             rules: _t.Collection[str] | None = None,
             suppress: _t.Collection[str] = (),
             baseline: _t.Any = None,
             profile: str | None = None,
             write: bool = True) -> FixResult:
    """Lint ``paths``, plan fixes, and (optionally) write them back.

    Returns a :class:`FixResult` with per-file diffs; ``write=False``
    is the ``--diff`` preview mode.  A second run over the fixed tree
    plans zero patches (idempotence — covered by
    tests/test_lint_fix.py).
    """
    report = lint_paths(paths, baseline=baseline, profile=profile)
    plans = plan_fixes(report, rules=rules, suppress=suppress)
    result = FixResult(report=report)
    for norm in sorted(plans):
        mod = report.modules[norm]
        new_source = apply_patches(mod.source, plans[norm])
        if new_source == mod.source:
            continue
        result.patches += len(plans[norm])
        result.new_sources[norm] = new_source
        result.diffs[norm] = "".join(difflib.unified_diff(
            mod.source.splitlines(keepends=True),
            new_source.splitlines(keepends=True),
            fromfile=f"a/{norm}", tofile=f"b/{norm}"))
        if write:
            report.file_of[norm].write_text(new_source, encoding="utf-8")
    return result
