"""Interprocedural host-state taint analysis (rules DET007–DET009).

DET001/DET006 catch a ``time.time()`` or ``os.environ`` read written
*directly* in sim-scoped code.  They cannot see the same host state
arriving by value: a helper in ``harness/`` that returns
``time.time()``, a module global initialised from ``os.getpid()``, or a
default argument evaluated at import time.  This module runs a
conservative whole-program fixpoint over the
:class:`~repro.lint.callgraph.ProjectIndex`:

* **Sources** — calls that read host state: the DET001 wall-clock and
  entropy set, plus process identity (``os.getpid``), host identity
  (``socket.gethostname``, ``platform.*``), environment reads, and
  filesystem enumeration (``os.listdir``, ``glob.glob``).  A source on
  a line carrying a ``# detlint: disable=...`` suppression is treated
  as sanctioned and does **not** seed taint — a justified host-clock
  epoch (e.g. the oplog timestamp) must not cascade into DET007
  findings at every caller.
* **Sanitizers** — values derived from the seed tree: anything
  resolving into :mod:`repro.sim.rng` (``RandomTree`` streams).  Calls
  into the sanitizer namespace return untainted values regardless of
  their arguments.
* **Propagation** — taint flows through arithmetic, f-strings,
  containers, ``await``, value-passthrough builtins, assignments, and
  function returns.  Unresolvable calls do *not* propagate: precision
  over recall, so every finding is actionable.

The fixpoint produces two maps — functions whose return value is
tainted, and module globals holding tainted values — that the rules
below consume:

* **DET007** — sim-scoped code calls a function *defined in another
  module* whose return value is host-tainted (or reads a tainted
  cross-module global).
* **DET008** — sim-scoped code rebinds (``global X``) or mutates a
  mutable module-level container, making results depend on call
  history rather than on (config, seed).
* **DET009** — a sim-scoped default argument or dataclass field
  default is host-tainted (evaluated once at import time, different in
  every process).
"""

from __future__ import annotations

import ast
import threading
import typing as _t

from .callgraph import ProjectIndex, module_name
from .engine import Finding, ModuleUnderLint, _suppressions
from .rules import Rule, rule, _WALL_CLOCK_CALLS, _own_nodes

__all__ = ["TaintAnalysis", "TAINT_SOURCES", "SANITIZER_PREFIXES"]

#: Fully qualified callables whose return value is host state.
TAINT_SOURCES: frozenset[str] = _WALL_CLOCK_CALLS | frozenset({
    # process / host identity
    "os.getpid", "os.getppid", "os.getlogin", "os.uname", "os.cpu_count",
    "socket.gethostname", "socket.getfqdn",
    "platform.node", "platform.platform", "platform.machine",
    "platform.system", "platform.release", "platform.python_version",
    # environment and working directory
    "os.getenv", "os.getcwd",
    # filesystem enumeration (listing order / contents are host state)
    "os.listdir", "os.scandir", "os.stat",
    "glob.glob", "glob.iglob",
})

#: Dotted-prefix sources (every name under these is a source).
TAINT_SOURCE_PREFIXES: tuple[str, ...] = ("secrets.",)

#: Attribute reads (not calls) that are sources.
TAINT_ATTRS: frozenset[str] = frozenset({"os.environ", "sys.argv"})

#: Namespaces whose values are seed-derived: calls resolving here
#: return *untainted* values (the sanctioned randomness/time plane).
SANITIZER_PREFIXES: tuple[str, ...] = ("repro.sim.rng", "repro.sim.timebase")

#: Builtins that pass their argument's value (and hence taint) through.
_PASSTHROUGH_BUILTINS = frozenset({
    "int", "float", "str", "bool", "bytes", "round", "abs", "min", "max",
    "sum", "sorted", "list", "tuple", "dict", "set", "frozenset", "len",
    "divmod", "format", "repr", "next", "iter", "enumerate", "zip",
    "math.floor", "math.ceil", "math.fsum",
})

_MAX_FIXPOINT_PASSES = 20


def _is_sanitizer(dotted: str | None) -> bool:
    if dotted is None:
        return False
    return any(dotted == p or dotted.startswith(p + ".")
               for p in SANITIZER_PREFIXES)


def _is_source_name(dotted: str | None) -> str | None:
    """Reason string when ``dotted`` names a host-state source."""
    if dotted is None:
        return None
    if dotted in TAINT_SOURCES:
        return f"reads host state via `{dotted}()`"
    if any(dotted.startswith(p) for p in TAINT_SOURCE_PREFIXES):
        return f"reads host entropy via `{dotted}()`"
    return None


class TaintAnalysis:
    """Fixpoint taint facts over one :class:`ProjectIndex`.

    ``tainted_functions`` maps fully qualified function names to a
    human-readable reason their return value carries host state;
    ``tainted_globals`` does the same for module-level names.
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.tainted_functions: dict[str, str] = {}
        self.tainted_globals: dict[str, str] = {}
        #: modname -> {lineno: suppressed-rule-set or None}; sources on
        #: suppressed lines are sanctioned and seed no taint.
        self._suppressed: dict[str, dict[int, frozenset[str] | None]] = {
            name: _suppressions(mod.source)
            for name, mod in index.modules.items()
        }
        self._run()

    _of_lock = threading.Lock()

    @classmethod
    def of(cls, index: ProjectIndex) -> "TaintAnalysis":
        """Fixpoint for ``index``, computed once even under
        ``lint_paths(jobs=N)`` (rules on different threads share it)."""
        with cls._of_lock:
            cached = getattr(index, "_taint_analysis", None)
            if cached is None:
                cached = cls(index)
                index._taint_analysis = cached  # type: ignore[attr-defined]
        return cached

    # -- fixpoint ----------------------------------------------------------
    def _run(self) -> None:
        for _ in range(_MAX_FIXPOINT_PASSES):
            changed = False
            for qual, values in self.index.global_values.items():
                if qual in self.tainted_globals:
                    continue
                modname = self.index.module_of_symbol(qual) or ""
                for value in values:
                    reason = self.expr_taint(modname, value, frozenset())
                    if reason is not None:
                        self.tainted_globals[qual] = reason
                        changed = True
                        break
            for qual, fn in self.index.functions.items():
                if qual in self.tainted_functions:
                    continue
                modname = self.index.function_module[qual]
                reason = self._return_taint(modname, fn)
                if reason is not None:
                    self.tainted_functions[qual] = reason
                    changed = True
            if not changed:
                return

    def _return_taint(self, modname: str, fn: ast.AST) -> str | None:
        """Reason the function's return value is tainted, or ``None``."""
        local: dict[str, str] = {}
        result: str | None = None
        for node in _statements_in_order(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None:
                    continue
                reason = self.expr_taint(modname, value, local)
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            if reason is not None:
                                local[name_node.id] = reason
                            else:
                                local.pop(name_node.id, None)
            elif isinstance(node, ast.Return) and node.value is not None:
                reason = self.expr_taint(modname, node.value, local)
                if reason is not None and result is None:
                    result = reason
        return result

    # -- expression taint --------------------------------------------------
    def expr_taint(self, modname: str, expr: ast.AST,
                   local: _t.Mapping[str, str] | frozenset) -> str | None:
        """Reason ``expr`` evaluates to host state, or ``None``."""
        get_local = (local.get if isinstance(local, dict)
                     else (lambda _n: None))
        if isinstance(expr, ast.Call):
            return self._call_taint(modname, expr, local)
        if isinstance(expr, ast.Name):
            reason = get_local(expr.id)
            if reason is not None:
                return reason
            return self._name_taint(modname, expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = self.index.dotted(modname, expr)
            if dotted in TAINT_ATTRS:
                return f"reads host state via `{dotted}`"
            if dotted is not None:
                canon = self.index._canonical(dotted)
                if canon in self.tainted_globals:
                    return self.tainted_globals[canon]
            return None
        if isinstance(expr, ast.Await):
            return self.expr_taint(modname, expr.value, local)
        if isinstance(expr, ast.BinOp):
            return (self.expr_taint(modname, expr.left, local)
                    or self.expr_taint(modname, expr.right, local))
        if isinstance(expr, ast.UnaryOp):
            return self.expr_taint(modname, expr.operand, local)
        if isinstance(expr, ast.BoolOp):
            for v in expr.values:
                reason = self.expr_taint(modname, v, local)
                if reason is not None:
                    return reason
            return None
        if isinstance(expr, ast.IfExp):
            return (self.expr_taint(modname, expr.body, local)
                    or self.expr_taint(modname, expr.orelse, local))
        if isinstance(expr, ast.Subscript):
            return self.expr_taint(modname, expr.value, local)
        if isinstance(expr, ast.Starred):
            return self.expr_taint(modname, expr.value, local)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                reason = self.expr_taint(modname, elt, local)
                if reason is not None:
                    return reason
            return None
        if isinstance(expr, ast.Dict):
            for v in expr.values:
                if v is None:
                    continue
                reason = self.expr_taint(modname, v, local)
                if reason is not None:
                    return reason
            return None
        if isinstance(expr, ast.JoinedStr):
            for v in expr.values:
                if isinstance(v, ast.FormattedValue):
                    reason = self.expr_taint(modname, v.value, local)
                    if reason is not None:
                        return reason
            return None
        if isinstance(expr, ast.NamedExpr):
            return self.expr_taint(modname, expr.value, local)
        return None

    def _call_taint(self, modname: str, call: ast.Call,
                    local: _t.Mapping[str, str] | frozenset) -> str | None:
        dotted = self.index.dotted(modname, call.func)
        if _is_sanitizer(dotted):
            return None
        source = _is_source_name(dotted)
        if source is not None:
            if self._line_suppressed(modname, call):
                return None
            return source
        if dotted in _PASSTHROUGH_BUILTINS:
            for arg in call.args:
                reason = self.expr_taint(modname, arg, local)
                if reason is not None:
                    return reason
            for kw in call.keywords:
                reason = self.expr_taint(modname, kw.value, local)
                if reason is not None:
                    return reason
            return None
        qual = self.index.resolve_call(modname, call)
        if qual is not None:
            if _is_sanitizer(qual):
                return None
            if qual in self.tainted_functions:
                return (f"`{_short(qual)}()` "
                        f"{self.tainted_functions[qual]}")
        # Unknown callable: no propagation (precision over recall).
        return None

    def _name_taint(self, modname: str, name: str) -> str | None:
        target = self.index.aliases.get(modname, {}).get(
            name, f"{modname}.{name}")
        canon = self.index._canonical(target) or target
        return self.tainted_globals.get(canon)

    def _line_suppressed(self, modname: str, node: ast.AST) -> bool:
        sup = self._suppressed.get(modname, {})
        return getattr(node, "lineno", -1) in sup


def _short(qual: str) -> str:
    """Trailing ``module.func`` of a fully qualified name, for messages."""
    parts = qual.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qual


def _statements_in_order(fn: ast.AST) -> _t.Iterator[ast.AST]:
    """Own statements of a function in source order (no nested defs)."""
    stack: list[ast.AST] = list(reversed(getattr(fn, "body", [])))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        children: list[ast.stmt] = []
        for field in ("body", "orelse", "finalbody"):
            children.extend(getattr(node, field, []))
        for handler in getattr(node, "handlers", []):
            children.extend(handler.body)
        stack.extend(reversed(children))


# -- DET007: cross-module host taint reaches sim scope ---------------------

@rule
class CrossModuleHostTaint(Rule):
    """Host-tainted value flows into sim scope from another module.

    DET001 sees a ``time.time()`` written in sim code; it cannot see a
    host-scope helper that *returns* ``time.time()`` and is called from
    ``sim/``.  The taint engine traces host-state sources through
    function returns and module globals across module boundaries and
    flags the sim-scoped call/read site.  Route the value through
    ``env.now`` / a ``sim/rng.py`` stream, or pass it in explicitly via
    ``ExperimentConfig`` so the cache key stays honest.
    """

    id = "DET007"
    summary = "cross-module host-tainted value reaches sim scope"
    requires_index = True

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        index: ProjectIndex | None = getattr(self, "index", None)
        if index is None:
            return
        taint = TaintAnalysis.of(index)
        modname = module_name(mod.path)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                qual = index.resolve_call(modname, node)
                if qual is None or qual not in taint.tainted_functions:
                    continue
                home = index.module_of_symbol(qual)
                if home is None or home == modname:
                    continue
                yield self.finding(
                    mod, node,
                    f"`{_short(qual)}()` (defined in {home}) "
                    f"{taint.tainted_functions[qual]}; its return "
                    "value enters sim scope here — use `env.now` / a "
                    "sim/rng.py stream, or plumb the value through "
                    "ExperimentConfig")
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                target = index.aliases.get(modname, {}).get(node.id)
                if target is None:
                    continue  # a local/module name, not an import
                canon = index._canonical(target) or target
                if canon not in taint.tainted_globals:
                    continue
                home = index.module_of_symbol(canon)
                if home is None or home == modname:
                    continue
                yield self.finding(
                    mod, node,
                    f"`{node.id}` (global in {home}) "
                    f"{taint.tainted_globals[canon]}; reading it in "
                    "sim scope couples results to host state — plumb "
                    "the value through ExperimentConfig instead")


# -- DET008: mutable module-global written from sim code -------------------

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop",
    "popleft", "popitem", "clear", "extend", "insert", "remove",
    "discard", "sort", "reverse",
})

_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "collections.defaultdict",
    "collections.OrderedDict", "collections.deque", "collections.Counter",
})


def _mutable_globals(index: ProjectIndex, modname: str,
                     mod: ModuleUnderLint) -> set[str]:
    """Module-level names bound to mutable container literals."""
    out: set[str] = set()
    prefix = f"{modname}."
    for qual, values in index.global_values.items():
        if not qual.startswith(prefix) or "." in qual[len(prefix):]:
            continue
        for value in values:
            if isinstance(value, (ast.Dict, ast.List, ast.Set,
                                  ast.DictComp, ast.ListComp, ast.SetComp)):
                out.add(qual[len(prefix):])
            elif isinstance(value, ast.Call) \
                    and mod.resolve(value.func) in _MUTABLE_CTORS:
                out.add(qual[len(prefix):])
    return out


def _binding_names(target: ast.AST) -> _t.Iterator[str]:
    """Names a target expression *binds* (``x``, ``x, y = ...``).

    ``obj[k]`` / ``obj.attr`` targets mutate an existing object — they
    bind nothing, so they must not shadow the module global they write
    into (that write is exactly what DET008 reports).
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _bound_locals(fn: ast.AST) -> set[str]:
    """Names bound locally in a function (shadowing module globals)."""
    out: set[str] = set()
    args = fn.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs):
        out.add(a.arg)
    if args.vararg:
        out.add(args.vararg.arg)
    if args.kwarg:
        out.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                out.update(_binding_names(t))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            out.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    out.update(_binding_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            out.add(node.name)
        elif isinstance(node, ast.NamedExpr) \
                and isinstance(node.target, ast.Name):
            out.add(node.target.id)
    return out - declared_global


@rule
class MutableGlobalFromSim(Rule):
    """Module global rebound or mutated from sim-scoped code.

    A module-level dict/list/set mutated from simulation code — or a
    ``global X`` rebinding — makes run N's result depend on runs 1..N-1
    in the same process: the run is no longer a pure function of
    (config, seed), and sweep results differ between fresh and warm
    workers.  Keep per-run state on the env/config object (or an
    explicit context), and reset any process-wide registry between
    runs.  Operational switchboards that sim decisions never read may
    be suppressed with a rationale.
    """

    id = "DET008"
    summary = "mutable module-global written from sim-scoped code"
    requires_index = True

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        index: ProjectIndex | None = getattr(self, "index", None)
        if index is None:
            return
        modname = module_name(mod.path)
        mutable = _mutable_globals(index, modname, mod)
        for fn in ast.walk(mod.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: set[str] = set()
            for node in _own_nodes(fn):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            locals_ = _bound_locals(fn)
            for node in _own_nodes(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        if isinstance(t, ast.Name) and t.id in declared:
                            yield self.finding(
                                mod, node,
                                f"`global {t.id}` rebinding from sim "
                                "code makes results depend on call "
                                "history, not (config, seed); keep the "
                                "state on the env/config object or "
                                "reset it per run")
                        elif isinstance(t, ast.Subscript) \
                                and isinstance(t.value, ast.Name) \
                                and t.value.id in mutable \
                                and t.value.id not in locals_:
                            yield self.finding(
                                mod, node,
                                f"writing into module global "
                                f"`{t.value.id}[...]` from sim code "
                                "leaks state across runs; use per-run "
                                "state on the env/config object")
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _MUTATOR_METHODS \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id in mutable \
                        and node.func.value.id not in locals_:
                    yield self.finding(
                        mod, node,
                        f"`{node.func.value.id}.{node.func.attr}(...)` "
                        "mutates a module global from sim code; runs "
                        "stop being a pure function of (config, seed) "
                        "— keep the container on the env/config object")


# -- DET009: host-tainted default argument / field default -----------------

@rule
class TaintedDefault(Rule):
    """Host-tainted default argument or dataclass field default.

    ``def f(t0=time.time())`` evaluates the default **once at import
    time** — every call shares one host timestamp that differs across
    processes, so parallel sweep workers disagree while each believes
    it is deterministic.  The same applies to dataclass field defaults
    and ``field(default_factory=<host source>)``.  Default to ``None``
    and fill from ``env.now`` / config inside the function.
    """

    id = "DET009"
    summary = "host-tainted default argument or field default"
    requires_index = True

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        index: ProjectIndex | None = getattr(self, "index", None)
        if index is None:
            return
        taint = TaintAnalysis.of(index)
        modname = module_name(mod.path)
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    reason = taint.expr_taint(modname, default, frozenset())
                    if reason is not None:
                        yield self.finding(
                            mod, default,
                            f"default for `{node.name}(...)` {reason}; "
                            "defaults evaluate once at import time — "
                            "default to None and fill from env/config "
                            "inside the function")
            elif isinstance(node, ast.ClassDef) and _is_dataclass(mod, node):
                for stmt in node.body:
                    value = getattr(stmt, "value", None)
                    if value is None:
                        continue
                    reason = taint.expr_taint(modname, value, frozenset())
                    if reason is None:
                        reason = _factory_taint(mod, index, taint,
                                                modname, value)
                    if reason is not None:
                        yield self.finding(
                            mod, value,
                            f"dataclass field default in `{node.name}` "
                            f"{reason}; field defaults evaluate at "
                            "import time — use "
                            "`field(default=None)` and fill from "
                            "env/config in __post_init__")


def _is_dataclass(mod: ModuleUnderLint, node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if mod.resolve(target) in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _factory_taint(mod: ModuleUnderLint, index: ProjectIndex,
                   taint: TaintAnalysis, modname: str,
                   value: ast.AST) -> str | None:
    """Taint reason for ``field(default_factory=<host source>)``."""
    if not (isinstance(value, ast.Call)
            and mod.resolve(value.func) in ("field", "dataclasses.field")):
        return None
    for kw in value.keywords:
        if kw.arg != "default_factory":
            continue
        dotted = index.dotted(modname, kw.value)
        source = _is_source_name(dotted)
        if source is not None:
            return f"uses a default_factory that {source}"
        if dotted is not None:
            canon = index._canonical(dotted)
            if canon in taint.tainted_functions:
                return ("uses a default_factory that "
                        f"{taint.tainted_functions[canon]}")
    return None
