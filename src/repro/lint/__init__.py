"""repro.lint — "detlint", the determinism & sim-correctness analyzer.

Every result in this reproduction rests on the DES being
bit-deterministic: quiet-vs-noisy diffs measure kernel-noise effects
only because nothing else varies.  Runtime tests
(``tests/test_determinism.py``) catch a violation after the fact; this
package catches the hazard at the line that creates it, before any
experiment runs.

It is a custom AST analyzer (no third-party lint framework) that walks
``src/repro`` and enforces the project's invariants as named,
suppressible rules:

========  ==========================================================
DET001    wall-clock/entropy calls in sim-scoped modules
DET002    global ``random`` module instead of ``sim/rng.py`` streams
DET003    unordered set/dict iteration escaping into sim state
DET004    ``id()``/object identity used for ordering or keying
DET005    float accumulation (``sum``) over unordered iterables
DET006    ``os.environ`` reads inside sim-scoped code
SIM001    process generator called without ``env.process(...)``
SIM002    ``yield`` of a non-Event inside a process generator
PERF001   hot-path class missing ``__slots__``
OBS001    telemetry call not behind the enabled-gate pattern
========  ==========================================================

Entry points: ``python -m repro.lint [paths]`` and ``repro lint``;
findings can be suppressed inline (``# detlint: disable=DET003 --
reason``) or grandfathered in ``detlint-baseline.json``.  See
docs/STATIC_ANALYSIS.md for the full catalog with bad/good examples,
the scope map, and the suppression/baseline policy.
"""

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .cli import main
from .engine import (
    HOT_PATH_MODULES,
    Finding,
    LintReport,
    ModuleUnderLint,
    lint_paths,
    lint_source,
    module_scope,
)
from .report import SCHEMA_VERSION, render_json, render_text
from .rules import RULES, Rule, active_rules, rule, rule_catalog

__all__ = [
    "Finding", "LintReport", "ModuleUnderLint", "lint_paths",
    "lint_source", "module_scope", "HOT_PATH_MODULES",
    "Rule", "RULES", "rule", "active_rules", "rule_catalog",
    "Baseline", "DEFAULT_BASELINE_NAME",
    "render_text", "render_json", "SCHEMA_VERSION",
    "main",
]
