"""repro.lint — "detlint", the determinism & sim-correctness analyzer.

Every result in this reproduction rests on the DES being
bit-deterministic: quiet-vs-noisy diffs measure kernel-noise effects
only because nothing else varies.  Runtime tests
(``tests/test_determinism.py``) catch a violation after the fact; this
package catches the hazard at the line that creates it, before any
experiment runs.

It is a custom AST analyzer (no third-party lint framework) with a
two-pass engine: an index pass builds a cross-module symbol table and
call graph (:mod:`repro.lint.callgraph`), then the rule pass runs the
catalog per file with that index injected — so interprocedural rules
(the :mod:`repro.lint.taint` engine) can trace host state through
function returns, module globals, and default arguments across module
boundaries.

========  ==========================================================
DET001    wall-clock/entropy calls in sim-scoped modules
DET002    global ``random`` module instead of ``sim/rng.py`` streams
DET003    unordered set/dict iteration escaping into sim state †
DET004    ``id()``/object identity used for ordering or keying
DET005    float accumulation (``sum``) over unordered iterables †
DET006    ``os.environ`` reads inside sim-scoped code
DET007    cross-module host-tainted value reaches sim scope
DET008    mutable module-global written from sim-scoped code
DET009    host-tainted default argument / dataclass field default
SIM001    process generator called without ``env.process(...)``
SIM002    ``yield`` of a non-Event inside a process generator
PERF001   hot-path class missing ``__slots__`` †
PERF002   all-pairs rank loop outside topology precompute
OBS001    telemetry call not behind the enabled-gate pattern
ASYNC001  blocking call inside a coroutine
ASYNC002  coroutine created but never awaited or stored
ASYNC003  asyncio task handle dropped (fire-and-forget)
ASYNC004  thread-shared state accessed without a lock or queue
ASYNC005  ``ContextVar.set`` without token reset in a finally
========  ==========================================================

† mechanically fixable: ``repro lint --fix`` (``--diff`` previews the
exact byte-span patches).

Entry points: ``python -m repro.lint [paths]`` and ``repro lint``;
findings can be suppressed inline (``# detlint: disable=DET003 --
reason``) or grandfathered in ``detlint-baseline.json`` (kept tight by
``--prune-baseline`` / ``--check-baseline``).  See
docs/STATIC_ANALYSIS.md for the full catalog with bad/good examples,
the taint sources/sanitizers/sinks table, the scope map, and the
suppression/baseline policy.
"""

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .callgraph import ProjectIndex, build_index, module_name
from .cli import main
from .engine import (
    HOT_PATH_MODULES,
    Finding,
    LintReport,
    ModuleUnderLint,
    lint_paths,
    lint_source,
    module_scope,
)
from .fixes import FIXERS, FixResult, Patch, apply_patches, fix_tree
from .report import SCHEMA_VERSION, render_json, render_text
from .rules import RULES, Rule, active_rules, rule, rule_catalog
from .taint import TaintAnalysis

__all__ = [
    "Finding", "LintReport", "ModuleUnderLint", "lint_paths",
    "lint_source", "module_scope", "HOT_PATH_MODULES",
    "Rule", "RULES", "rule", "active_rules", "rule_catalog",
    "ProjectIndex", "build_index", "module_name", "TaintAnalysis",
    "Patch", "FixResult", "FIXERS", "fix_tree", "apply_patches",
    "Baseline", "DEFAULT_BASELINE_NAME",
    "render_text", "render_json", "SCHEMA_VERSION",
    "main",
]
