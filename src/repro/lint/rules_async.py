"""Async/concurrency rules (ASYNC001–ASYNC005) for the serve/obs plane.

The experiment service (PRs 7–9) mixes an asyncio event loop, a worker
pool, daemon threads (the ``repro top`` sampler, ``BackgroundServer``),
and contextvars — exactly the soup where liveness and data-race bugs
hide from per-function review.  These rules encode the concurrency
discipline the service relies on:

* **ASYNC001** — a blocking call (``time.sleep``, sync socket/file IO,
  ``subprocess``) inside a coroutine stalls the whole event loop, not
  one request.
* **ASYNC002** — a coroutine called as a bare statement is created and
  garbage-collected without ever running (the asyncio analogue of the
  SIM001 dropped-generator bug).
* **ASYNC003** — a task handle dropped on the floor: the task can be
  garbage-collected mid-flight and its exception is silently lost.
* **ASYNC004** — instance/module state touched from both a
  ``threading.Thread`` target and code outside it without a lock,
  queue, or sync primitive (the snapshot-ring / background-server
  handshake pattern).
* **ASYNC005** — ``ContextVar.set`` without a token ``reset`` in a
  ``finally``: the context leaks across requests served by the same
  task.

All five apply to **every** scope (sim, host, neutral): concurrency
hazards do not care about the determinism scope map.
"""

from __future__ import annotations

import ast
import typing as _t

from .engine import Finding, ModuleUnderLint
from .rules import Rule, rule, _own_nodes

__all__ = ["BLOCKING_CALLS"]

#: Fully qualified callables that block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system", "os.popen", "os.waitpid", "os.wait",
    "socket.create_connection", "socket.gethostbyname",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "input",
})

#: Dotted prefixes that block (any call under them).
BLOCKING_PREFIXES = ("subprocess.", "requests.")

#: Attribute method names that are synchronous file IO when called
#: inside a coroutine (``Path.read_text`` and friends).
_BLOCKING_IO_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: Constructors whose instances are safe to share across threads
#: (they synchronize internally), exempting the attribute from
#: ASYNC004.
_SYNC_PRIMITIVE_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Barrier",
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue", "collections.deque",
    "asyncio.Event", "asyncio.Queue", "asyncio.Lock",
})

_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock",
                         "threading.Condition"})

#: Attribute mutator methods (shared with DET008's notion of in-place
#: mutation, duplicated here to avoid an import cycle with taint.py).
_MUTATORS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop",
    "popleft", "popitem", "clear", "extend", "insert", "remove",
    "discard", "sort", "reverse",
})


def _iter_coroutines(mod: ModuleUnderLint) -> _t.Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


@rule
class BlockingCallInCoroutine(Rule):
    """Blocking call inside a coroutine (stalls the whole event loop).

    ``time.sleep``, ``subprocess`` calls, synchronous sockets, and
    direct file IO inside an ``async def`` block every task on the
    loop, not just the current request.  Use ``await
    asyncio.sleep(...)``, ``loop.run_in_executor`` /
    ``asyncio.to_thread`` for CPU or file work, and asyncio transports
    for sockets.
    """

    id = "ASYNC001"
    summary = "blocking call inside a coroutine"
    scopes = ("*",)

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for coro in _iter_coroutines(mod):
            for node in _own_nodes(coro):
                if not isinstance(node, ast.Call):
                    continue
                name = mod.resolve(node.func)
                hit = None
                if name in BLOCKING_CALLS:
                    hit = name
                elif name is not None and any(
                        name.startswith(p) for p in BLOCKING_PREFIXES):
                    hit = name
                elif isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _BLOCKING_IO_METHODS:
                    hit = f"<path>.{node.func.attr}"
                if hit is not None:
                    fix = ("`await asyncio.sleep(...)`"
                           if name == "time.sleep" else
                           "`await asyncio.to_thread(...)` / "
                           "`loop.run_in_executor(...)`")
                    yield self.finding(
                        mod, node,
                        f"`{hit}(...)` blocks the event loop inside "
                        f"coroutine `{coro.name}`; every task on the "
                        f"loop stalls — use {fix}")


@rule
class CoroutineNeverAwaited(Rule):
    """Coroutine called as a bare statement — it never runs.

    Calling an ``async def`` only *creates* the coroutine object; as a
    bare expression statement it is dropped and garbage-collected
    without executing (Python warns at runtime only if warnings are
    enabled and the GC runs).  ``await`` it, wrap it in
    ``asyncio.create_task(...)`` and keep the handle, or hand it to
    ``asyncio.run(...)``.
    """

    id = "ASYNC002"
    summary = "coroutine created but never awaited or stored"
    scopes = ("*",)

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        # Async defs at module level and per class (self.method calls).
        class_of: dict[ast.AST, ast.ClassDef] = {}
        for cls in ast.walk(mod.tree):
            if isinstance(cls, ast.ClassDef):
                for child in ast.walk(cls):
                    class_of.setdefault(child, cls)
        module_coros: set[str] = set()
        method_coros: dict[ast.ClassDef, set[str]] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                cls = class_of.get(node)
                if cls is None:
                    module_coros.add(node.name)
                else:
                    method_coros.setdefault(cls, set()).add(node.name)
        if not module_coros and not method_coros:
            return
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            callee = None
            if isinstance(func, ast.Name) and func.id in module_coros:
                callee = func.id
            elif isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                cls = class_of.get(node)
                if cls is not None and func.attr in method_coros.get(
                        cls, ()):
                    callee = func.attr
            if callee is not None:
                yield self.finding(
                    mod, node,
                    f"calling coroutine `{callee}(...)` as a bare "
                    "statement creates it and throws it away — it "
                    f"never runs; `await {callee}(...)` or keep a "
                    "task handle")


@rule
class DroppedTaskHandle(Rule):
    """``create_task`` / ``ensure_future`` result dropped on the floor.

    A task whose only reference is the loop's weak set can be
    garbage-collected mid-flight, and its exception is swallowed when
    it is.  Keep the handle (``self._tasks.add(t)`` with a done
    callback to discard, or ``await`` it before scope exit).
    """

    id = "ASYNC003"
    severity = "warning"
    summary = "asyncio task handle dropped (fire-and-forget)"
    scopes = ("*",)

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            name = mod.resolve(func)
            is_spawn = name in ("asyncio.create_task",
                                "asyncio.ensure_future")
            if not is_spawn and isinstance(func, ast.Attribute) \
                    and func.attr in ("create_task", "ensure_future"):
                is_spawn = True
            if is_spawn:
                yield self.finding(
                    mod, node,
                    "task handle dropped: the task may be "
                    "garbage-collected mid-flight and its exception "
                    "silently lost — store the handle (and discard it "
                    "in a done callback) or await it")


def _self_attr(node: ast.AST) -> str | None:
    """``X`` for an ``self.X`` attribute expression, else ``None``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _is_guarded(mod: ModuleUnderLint, node: ast.AST,
                lock_attrs: set[str]) -> bool:
    """True when ``node`` sits under ``with self.<lock>:``."""
    cur: ast.AST | None = node
    while cur is not None:
        cur = mod.parents.get(cur)
        if isinstance(cur, (ast.With, ast.AsyncWith)):
            for item in cur.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                attr = _self_attr(expr)
                if attr is not None and attr in lock_attrs:
                    return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


class _AttrAccess(_t.NamedTuple):
    attr: str
    node: ast.AST
    write: bool
    guarded: bool


def _method_accesses(mod: ModuleUnderLint, fn: ast.AST,
                     lock_attrs: set[str]) -> list[_AttrAccess]:
    out: list[_AttrAccess] = []
    for node in _own_nodes(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                attr = _self_attr(t)
                if attr is not None:
                    out.append(_AttrAccess(
                        attr, node, True,
                        _is_guarded(mod, node, lock_attrs)))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS:
            attr = _self_attr(node.func.value)
            if attr is not None:
                out.append(_AttrAccess(
                    attr, node, True, _is_guarded(mod, node, lock_attrs)))
        elif isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr is not None:
                out.append(_AttrAccess(
                    attr, node, False, _is_guarded(mod, node, lock_attrs)))
    return out


@rule
class UnsynchronizedSharedState(Rule):
    """Instance/module state shared between a thread and other code
    without a lock, queue, or sync primitive.

    The ``BackgroundServer`` handshake and the ``repro top`` sampler
    both run a thread next to the event loop; any attribute written in
    the thread target and read elsewhere (or vice versa) is a data
    race unless it is a sync primitive (``Event``, ``Queue``,
    ``deque``) or every access holds a shared ``threading.Lock``.
    ``__init__`` writes are exempt — they happen-before the thread
    starts.
    """

    id = "ASYNC004"
    summary = "thread-shared state accessed without a lock or queue"
    scopes = ("*",)

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        yield from self._check_classes(mod)
        yield from self._check_module_globals(mod)

    # -- instance attributes ----------------------------------------------
    def _check_classes(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for cls in ast.walk(mod.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {n.name: n for n in cls.body
                       if isinstance(n, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
            thread_roots = self._thread_target_methods(mod, cls)
            if not thread_roots:
                continue
            thread_methods = self._transitive(methods, thread_roots)
            exempt, lock_attrs = self._primitive_attrs(mod, cls)
            accesses: dict[str, list[_AttrAccess]] = {}
            for name, fn in methods.items():
                accesses[name] = _method_accesses(mod, fn, lock_attrs)
            seen: set[str] = set()
            for tname in sorted(thread_methods):
                if tname == "__init__":
                    continue
                for acc in accesses.get(tname, []):
                    if acc.attr in exempt or acc.attr in seen \
                            or acc.guarded:
                        continue
                    other = self._other_side(
                        accesses, thread_methods, acc, want_write=not
                        acc.write)
                    if other is None:
                        continue
                    other_name, other_acc = other
                    if not (acc.write or other_acc.write):
                        continue
                    seen.add(acc.attr)
                    yield self.finding(
                        mod, acc.node,
                        f"`self.{acc.attr}` is "
                        f"{'written' if acc.write else 'read'} in "
                        f"thread-target `{tname}` and "
                        f"{'written' if other_acc.write else 'read'} "
                        f"in `{other_name}` on another thread with no "
                        "lock — guard both sides with a shared "
                        "`threading.Lock` or hand the value over via "
                        "a queue/Event")

    @staticmethod
    def _other_side(accesses: dict[str, list[_AttrAccess]],
                    thread_methods: set[str], acc: _AttrAccess,
                    want_write: bool) -> tuple[str, _AttrAccess] | None:
        """An unguarded access to the same attr outside the thread
        context (prefer a write when the thread side only reads)."""
        fallback: tuple[str, _AttrAccess] | None = None
        for name, accs in sorted(accesses.items()):
            if name in thread_methods or name == "__init__":
                continue
            for other in accs:
                if other.attr != acc.attr or other.guarded:
                    continue
                if other.write or not want_write:
                    return name, other
                fallback = fallback or (name, other)
        return None if want_write else fallback

    @staticmethod
    def _transitive(methods: dict[str, ast.AST],
                    roots: set[str]) -> set[str]:
        """Thread-context methods: the targets plus every method they
        reach through ``self.x(...)`` calls."""
        out = set(roots)
        frontier = list(roots)
        while frontier:
            fn = methods.get(frontier.pop())
            if fn is None:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    attr = _self_attr(node.func)
                    if attr in methods and attr not in out:
                        out.add(attr)
                        frontier.append(attr)
        return out

    @staticmethod
    def _thread_target_methods(mod: ModuleUnderLint,
                               cls: ast.ClassDef) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            if mod.resolve(node.func) != "threading.Thread":
                continue
            for kw in node.keywords:
                if kw.arg == "target":
                    attr = _self_attr(kw.value)
                    if attr is not None:
                        out.add(attr)
        return out

    @staticmethod
    def _primitive_attrs(mod: ModuleUnderLint,
                         cls: ast.ClassDef) -> tuple[set[str], set[str]]:
        """(attrs bound to sync primitives, attrs bound to locks)."""
        exempt: set[str] = set()
        locks: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = mod.resolve(node.value.func)
            if ctor not in _SYNC_PRIMITIVE_CTORS:
                continue
            for t in node.targets:
                attr = _self_attr(t)
                if attr is not None:
                    exempt.add(attr)
                    if ctor in _LOCK_CTORS:
                        locks.add(attr)
        return exempt, locks

    # -- module globals ----------------------------------------------------
    def _check_module_globals(self, mod: ModuleUnderLint,
                              ) -> _t.Iterator[Finding]:
        """Global mutated in a module-level thread target and touched
        from a coroutine in the same module."""
        targets: set[str] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call) \
                    and mod.resolve(node.func) == "threading.Thread":
                for kw in node.keywords:
                    if kw.arg == "target" \
                            and isinstance(kw.value, ast.Name):
                        targets.add(kw.value.id)
        if not targets:
            return
        funcs = {n.name: n for n in mod.tree.body
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
        mutated: dict[str, ast.AST] = {}
        for tname in sorted(targets & set(funcs)):
            for node in _own_nodes(funcs[tname]):
                if isinstance(node, ast.Global):
                    continue
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    tgts = (node.targets if isinstance(node, ast.Assign)
                            else [node.target])
                    for t in tgts:
                        if isinstance(t, ast.Subscript) \
                                and isinstance(t.value, ast.Name):
                            mutated.setdefault(t.value.id, node)
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _MUTATORS \
                        and isinstance(node.func.value, ast.Name):
                    mutated.setdefault(node.func.value.id, node)
        if not mutated:
            return
        coro_reads: set[str] = set()
        for coro in _iter_coroutines(mod):
            for node in _own_nodes(coro):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load):
                    coro_reads.add(node.id)
        for name in sorted(set(mutated) & coro_reads):
            yield self.finding(
                mod, mutated[name],
                f"module global `{name}` is mutated in thread target "
                "and touched from a coroutine with no lock — share "
                "through a queue.Queue / deque or guard both sides "
                "with one threading.Lock")


@rule
class ContextVarNoReset(Rule):
    """``ContextVar.set`` without a token reset in a ``finally``.

    A set token that is dropped — or reset outside a ``finally`` —
    leaks the new value into whatever the task runs next: request ids
    bleed across requests served by the same worker task.  Follow the
    established pattern: ``token = var.set(v); try: ...; finally:
    var.reset(token)``.
    """

    id = "ASYNC005"
    severity = "warning"
    summary = "ContextVar.set without token reset in a finally"
    scopes = ("*",)

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        ctxvars = self._context_var_names(mod)
        if not ctxvars:
            return
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "set"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ctxvars):
                continue
            varname = node.func.value.id
            parent = mod.parents.get(node)
            if isinstance(parent, ast.Expr):
                yield self.finding(
                    mod, node,
                    f"`{varname}.set(...)` token dropped — the old "
                    "value can never be restored; keep the token and "
                    f"`{varname}.reset(token)` in a finally")
                continue
            func = mod.enclosing_function(node)
            if func is None:
                continue
            if not self._reset_in_finally(func, varname):
                yield self.finding(
                    mod, node,
                    f"`{varname}.set(...)` has no matching "
                    f"`{varname}.reset(token)` in a finally; the "
                    "context leaks into the next thing this task "
                    "runs — wrap in try/finally")

    @staticmethod
    def _context_var_names(mod: ModuleUnderLint) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call) \
                    and mod.resolve(node.value.func) in (
                        "contextvars.ContextVar", "ContextVar"):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
        return out

    @staticmethod
    def _reset_in_finally(func: ast.AST, varname: str) -> bool:
        for node in _own_nodes(func):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call) \
                            and isinstance(inner.func, ast.Attribute) \
                            and inner.func.attr == "reset" \
                            and isinstance(inner.func.value, ast.Name) \
                            and inner.func.value.id == varname:
                        return True
        return False
