"""The detlint rule catalog.

Each rule is an independent plugin: a subclass of :class:`Rule` with an
id, severity, one-line summary, applicable scopes, and a ``check``
method yielding :class:`~repro.lint.engine.Finding` objects for one
:class:`~repro.lint.engine.ModuleUnderLint`.  Registration happens via
the :func:`rule` decorator; ``active_rules()`` returns one instance of
every registered rule, and the CLI's ``--list-rules`` renders this
catalog from the classes' docstrings.

Every message is fixer-grade: it names the sanctioned alternative
(``env.now``, ``sim/rng.py`` streams, ``sorted(...)``, ``env.process``,
the telemetry gate) rather than just pointing at the hazard.  See
docs/STATIC_ANALYSIS.md for one bad/good example per rule.
"""

from __future__ import annotations

import ast
import typing as _t

from .engine import Finding, ModuleUnderLint

__all__ = ["Rule", "rule", "active_rules", "rule_catalog", "RULES"]


class Rule:
    """Base class for one named, suppressible check."""

    id: str = ""
    severity: str = "error"
    summary: str = ""
    #: Module scopes the rule applies to ("sim", "host", "neutral",
    #: or "*" for every scope).
    scopes: tuple[str, ...] = ("sim",)
    #: True when :mod:`repro.lint.fixes` has a mechanical rewrite for
    #: this rule (``repro lint --fix``).
    fixable: bool = False
    #: True when the rule reads the cross-module symbol table; such
    #: rules see a single-module index under :func:`lint_source` and
    #: the full project index under :func:`lint_paths`.
    requires_index: bool = False
    #: Injected by the engine before the rule pass (a
    #: :class:`repro.lint.callgraph.ProjectIndex`).
    index: _t.Any = None

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, mod: ModuleUnderLint, node: ast.AST,
                message: str, *, fix_node: ast.AST | None = None) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(self.id, self.severity, mod.path, line, col,
                       message, line_text=mod.line_text(line),
                       fix_node=fix_node)


#: rule id -> rule class (the plugin registry).
RULES: dict[str, type[Rule]] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Register a rule class under its id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def active_rules(ids: _t.Iterable[str] | None = None) -> list[Rule]:
    """One instance of every registered rule (or the named subset)."""
    if ids is None:
        return [cls() for _rid, cls in sorted(RULES.items())]
    return [RULES[rid]() for rid in ids]


def rule_catalog() -> list[dict[str, _t.Any]]:
    """Stable description of every rule (id, severity, summary, doc)."""
    return [{"id": rid, "severity": cls.severity, "summary": cls.summary,
             "scopes": ",".join(cls.scopes), "fixable": cls.fixable,
             "doc": (cls.__doc__ or "").strip()}
            for rid, cls in sorted(RULES.items())]


# -- shared AST helpers ----------------------------------------------------

def _is_set_expr(mod: ModuleUnderLint, node: ast.AST) -> bool:
    """True for expressions that evaluate to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return mod.resolve(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(mod, node.left)
                or _is_set_expr(mod, node.right))
    return False


def _own_nodes(func: ast.AST) -> _t.Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _is_generator_def(func: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_nodes(func))


_GATE_TOKENS = ("metrics", "tracer", "enabled", "_trace", "telemetry")


def _is_gated(mod: ModuleUnderLint, node: ast.AST) -> bool:
    """True if ``node`` sits under a telemetry-gate conditional.

    Recognizes both gate shapes established in the codebase: a direct
    conditional (``if self._metrics and ...:``, ``if tracer is not
    None:``) anywhere up the ancestor chain, and the early-return guard
    (``if not _obs.metrics_enabled(): return``) earlier in the
    enclosing function.
    """
    cur: ast.AST | None = node
    while cur is not None:
        parent = mod.parents.get(cur)
        if isinstance(parent, (ast.If, ast.IfExp, ast.While)) \
                and cur is not getattr(parent, "test", None):
            test_src = ast.unparse(parent.test)
            if any(tok in test_src for tok in _GATE_TOKENS):
                return True
        cur = parent
    func = mod.enclosing_function(node)
    if func is not None:
        for stmt in func.body:
            if getattr(stmt, "lineno", 10**9) >= getattr(node, "lineno", 0):
                break
            if isinstance(stmt, ast.If) \
                    and any(isinstance(s, (ast.Return, ast.Raise))
                            for s in stmt.body):
                test_src = ast.unparse(stmt.test)
                if any(tok in test_src for tok in _GATE_TOKENS):
                    return True
    return False


# -- determinism rules -----------------------------------------------------

#: Fully qualified callables that read the host clock or host entropy.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})


@rule
class WallClockOrEntropy(Rule):
    """Wall-clock or host-entropy source in sim-scoped code.

    Simulated time is ``env.now`` (integer nanoseconds from
    :mod:`repro.sim.timebase`); randomness comes from label-derived
    :mod:`repro.sim.rng` streams.  A ``time.time()`` or ``uuid4()``
    call inside ``sim/``, ``net/``, ``mpi/``, ``noise/``, ``faults/``,
    ``ktau/`` or ``obs/`` injects host state into results, breaking
    seed-reproducibility and the quiet-vs-noisy diffs built on it.
    Host-scoped modules (``parallel/``, ``harness/``, ``cli.py``) are
    exempt via the scope map.
    """

    id = "DET001"
    summary = "wall-clock/entropy call in sim-scoped module"

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = mod.resolve(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS or name.startswith("secrets."):
                yield self.finding(
                    mod, node,
                    f"`{name}()` reads host time/entropy; use `env.now` "
                    "(sim.timebase) for time or a `sim/rng.py` "
                    "label-derived stream for randomness, or move this "
                    "to a host-scoped module (parallel/, harness/, "
                    "cli.py)")


@rule
class GlobalRandomModule(Rule):
    """The global ``random`` module instead of seeded rng streams.

    ``random.random()`` draws from interpreter-global state whose
    sequence depends on import order and everything else that touched
    it.  Every consumer must derive its own
    ``numpy.random.Generator`` via
    ``RandomTree(seed).generator("stable/label")`` (repro/sim/rng.py)
    so streams are independent and construction-order-insensitive.
    """

    id = "DET002"
    summary = "global `random` module used instead of sim/rng.py streams"

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "random" or a.name.startswith("random."):
                        yield self.finding(
                            mod, node,
                            "stdlib `random` is interpreter-global "
                            "state; derive a stream with "
                            "`RandomTree(seed).generator(label)` from "
                            "repro.sim.rng instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        mod, node,
                        "stdlib `random` is interpreter-global state; "
                        "derive a stream with "
                        "`RandomTree(seed).generator(label)` from "
                        "repro.sim.rng instead")


#: Call names through which iteration order escapes into simulation
#: state (scheduling, message emission, event completion).
_ORDER_SINKS = frozenset({
    "schedule", "send", "isend", "irecv", "recv", "put", "emit",
    "process", "succeed", "fail", "push", "transfer", "inject",
    "append", "appendleft",
})


@rule
class UnorderedIterationEscapes(Rule):
    """Iteration over an unordered set feeding simulation state.

    ``set`` iteration order depends on element hashes — for strings it
    changes with ``PYTHONHASHSEED``, so the same seed can schedule
    events (or emit messages, or accumulate floats) in a different
    order in another process.  Wrap the set in ``sorted(...)`` before
    iterating, or keep an ordered container.  ``dict.values()`` /
    ``.keys()`` iteration is insertion-ordered and only flagged when
    the loop body schedules or emits (insertion order itself may
    derive from an unordered source).
    """

    id = "DET003"
    summary = "unordered set/dict iteration escapes into sim state"
    fixable = True

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for node in ast.walk(mod.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(mod, it):
                    yield self.finding(
                        mod, node,
                        "iterating a set is hash-order-dependent "
                        "(varies with PYTHONHASHSEED across "
                        "processes); iterate `sorted(...)` of it or "
                        "use an ordered container", fix_node=it)
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.iter, ast.Call) \
                    and isinstance(node.iter.func, ast.Attribute) \
                    and node.iter.func.attr in ("values", "keys") \
                    and not node.iter.args:
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call) \
                            and isinstance(inner.func, ast.Attribute) \
                            and inner.func.attr in _ORDER_SINKS:
                        yield self.finding(
                            mod, node,
                            f"loop over `.{node.iter.func.attr}()` "
                            f"calls `.{inner.func.attr}(...)`: "
                            "scheduling/emission order inherits dict "
                            "insertion order — iterate "
                            "`sorted(d.items())` to pin it")
                        break


@rule
class ObjectIdentityOrdering(Rule):
    """``id()`` used for ordering or keying simulation state.

    ``id(obj)`` is an allocation address: it differs every run, so any
    ordering, dict key, or tie-break built on it is nondeterministic.
    Key on a stable identifier instead — node id, rank, or the
    ``seq`` counters that every event and message already carry.
    ``__repr__``/``__str__`` debug output is exempt.
    """

    id = "DET004"
    summary = "id()/object identity used in ordering or as a key"

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) \
                        and node.func.id == "id" and len(node.args) == 1:
                    func = mod.enclosing_function(node)
                    if func is not None and func.name in ("__repr__",
                                                          "__str__"):
                        continue
                    yield self.finding(
                        mod, node,
                        "`id()` is an allocation address (differs "
                        "every run); key/order by a stable id (node "
                        "id, rank, `seq`) instead")
                for kw in node.keywords:
                    if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                            and kw.value.id == "id":
                        yield self.finding(
                            mod, node,
                            "`key=id` sorts by allocation address; "
                            "sort by a stable attribute (e.g. "
                            "`key=lambda x: x.seq`) instead")


@rule
class FloatSumOverUnordered(Rule):
    """Float accumulation over an unordered iterable.

    Float addition is not associative: ``sum()`` over a set (or a
    generator drawing from one) can give different low bits in
    different processes because the iteration order varies with
    element hashes.  Materialize an order first —
    ``sum(sorted(xs))`` — or accumulate over an ordered sequence.
    """

    id = "DET005"
    summary = "sum()/fsum() over a set expression (order-dependent floats)"
    fixable = True

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            name = mod.resolve(node.func)
            if name not in ("sum", "math.fsum"):
                continue
            arg = node.args[0]
            fix_target: ast.AST | None = None
            hazard = _is_set_expr(mod, arg)
            if hazard:
                fix_target = arg
            elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                for gen in arg.generators:
                    if _is_set_expr(mod, gen.iter):
                        hazard = True
                        fix_target = gen.iter
                        break
            if hazard:
                yield self.finding(
                    mod, node,
                    f"`{name}()` over a set accumulates floats in "
                    "hash order; wrap the set in `sorted(...)` (or "
                    "accumulate over an ordered sequence) so the "
                    "result is bit-stable", fix_node=fix_target)


@rule
class EnvironRead(Rule):
    """Host environment read inside sim-scoped code.

    ``os.environ`` / ``os.getenv`` make simulation behaviour depend on
    the launching shell.  Configuration must flow through
    ``ExperimentConfig`` / ``MachineConfig`` fields so a config object
    fully determines the run (and the result cache key stays honest).
    """

    id = "DET006"
    summary = "os.environ/os.getenv read in sim-scoped module"

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for node in ast.walk(mod.tree):
            name = None
            if isinstance(node, ast.Attribute):
                name = mod.resolve(node)
                if name != "os.environ":
                    name = None
            elif isinstance(node, ast.Call):
                name = mod.resolve(node.func)
                if name != "os.getenv":
                    name = None
            if name:
                yield self.finding(
                    mod, node,
                    f"`{name}` couples simulation behaviour to the "
                    "launching shell; plumb the value through "
                    "`ExperimentConfig`/`MachineConfig` instead")


# -- simulation-protocol rules ---------------------------------------------

@rule
class DroppedGeneratorCall(Rule):
    """Process-generator called as a statement without ``env.process``.

    Calling a generator function only *creates* the generator — as a
    bare statement the object is dropped and the process silently
    never runs (the classic DES no-op bug).  Wrap the call:
    ``env.process(worker(...))``.
    """

    id = "SIM001"
    summary = "generator called as a statement (process never spawned)"

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        # Module-level generator functions, and generator methods per
        # class.  An Attribute call only matches through `self.` within
        # the defining class, so `other.send(...)` never trips on an
        # unrelated generator that happens to share the method name.
        class_of: dict[ast.AST, ast.ClassDef] = {}
        for cls in ast.walk(mod.tree):
            if isinstance(cls, ast.ClassDef):
                for child in ast.walk(cls):
                    class_of.setdefault(child, cls)
        module_gens: set[str] = set()
        method_gens: dict[ast.ClassDef, set[str]] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and _is_generator_def(node):
                cls = class_of.get(node)
                if cls is None:
                    module_gens.add(node.name)
                else:
                    method_gens.setdefault(cls, set()).add(node.name)
        if not module_gens and not method_gens:
            return
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            callee = None
            if isinstance(func, ast.Name) and func.id in module_gens:
                callee = func.id
            elif isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "self":
                cls = class_of.get(node)
                if cls is not None and func.attr in method_gens.get(
                        cls, ()):
                    callee = func.attr
            if callee is not None:
                yield self.finding(
                    mod, node,
                    f"calling generator `{callee}(...)` as a bare "
                    "statement creates it and throws it away — the "
                    "process never runs; wrap it: "
                    f"`env.process({callee}(...))`")


@rule
class NonEventYield(Rule):
    """``yield`` of a plain value inside a registered process generator.

    A simulation process may only yield :class:`~repro.sim.Event`
    objects (``env.timeout(...)``, receive events, conditions); a bare
    ``yield`` or a yielded literal/tuple is not waitable and fails at
    dispatch.  Only generators that the module registers via
    ``env.process(...)``/``Process(...)`` are checked, so ordinary
    data-producing generators stay exempt.
    """

    id = "SIM002"
    summary = "yield of a non-Event value inside a process generator"

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        registered: set[str] = set()
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            is_spawn = ((isinstance(node.func, ast.Attribute)
                         and node.func.attr == "process")
                        or (isinstance(node.func, ast.Name)
                            and node.func.id == "Process"))
            if not is_spawn:
                continue
            for arg in node.args:
                target = arg.func if isinstance(arg, ast.Call) else arg
                if isinstance(target, ast.Name):
                    registered.add(target.id)
                elif isinstance(target, ast.Attribute):
                    registered.add(target.attr)
        if not registered:
            return
        for node in ast.walk(mod.tree):
            if not (isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                    and node.name in registered):
                continue
            for inner in _own_nodes(node):
                if not isinstance(inner, ast.Yield):
                    continue
                value = inner.value
                if value is None or isinstance(
                        value, (ast.Constant, ast.Tuple, ast.List,
                                ast.Dict, ast.Set)):
                    yield self.finding(
                        mod, inner,
                        f"process generator `{node.name}` yields a "
                        "plain value — processes may only yield Event "
                        "objects (`env.timeout(...)`, recv events, "
                        "conditions)")


# -- performance rule ------------------------------------------------------

_EXEMPT_BASE_SUFFIXES = ("Exception", "Error", "Warning")
_EXEMPT_BASES = frozenset({"Protocol", "Enum", "IntEnum", "NamedTuple",
                           "TypedDict"})


@rule
class MissingSlots(Rule):
    """Hot-path class without ``__slots__``.

    Classes in the event-dispatch hot path (``sim/core.py``,
    ``sim/events.py``, ``sim/process.py``, ``sim/resources.py``,
    ``net/message.py``) are instantiated per event/message; a
    ``__dict__`` per instance costs allocation and cache misses in the
    tightest loops.  Declare ``__slots__`` (or use
    ``@dataclass(slots=True)``).  Exception classes are exempt.
    """

    id = "PERF001"
    severity = "warning"
    summary = "hot-path class missing __slots__"
    scopes = ("sim", "host")
    fixable = True

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        if not mod.is_hot_path:
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [b for b in (mod.resolve(base)
                                      for base in node.bases) if b]
            if any(b.split(".")[-1] in _EXEMPT_BASES
                   or b.endswith(_EXEMPT_BASE_SUFFIXES)
                   for b in base_names):
                continue
            has_slots = any(
                isinstance(stmt, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets)
                for stmt in node.body)
            for deco in node.decorator_list:
                if isinstance(deco, ast.Call) \
                        and mod.resolve(deco.func) in (
                            "dataclass", "dataclasses.dataclass") \
                        and any(kw.arg == "slots"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True
                                for kw in deco.keywords):
                    has_slots = True
            if not has_slots:
                yield self.finding(
                    mod, node,
                    f"hot-path class `{node.name}` has no __slots__; "
                    "declare `__slots__ = (...)` (or "
                    "`@dataclass(slots=True)`) to avoid a per-instance "
                    "__dict__ in the event-dispatch path",
                    fix_node=node)


_RANK_COUNT_TOKENS = ("n_nodes", "n_ranks", "nodes", "ranks")
_PRECOMPUTE_HINTS = ("matrix", "precompute", "diameter", "table")


def _is_rank_count_name(name: str) -> bool:
    low = name.lower()
    return low in ("p", "world_size") or any(
        tok in low for tok in _RANK_COUNT_TOKENS)


def _is_range_over_ranks(mod: ModuleUnderLint, iter_expr: ast.AST) -> bool:
    """True for ``range(...)`` whose bound mentions a rank/node count."""
    if not (isinstance(iter_expr, ast.Call)
            and mod.resolve(iter_expr.func) == "range"):
        return False
    for arg in iter_expr.args:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name) and _is_rank_count_name(sub.id):
                return True
            if isinstance(sub, ast.Attribute) \
                    and _is_rank_count_name(sub.attr):
                return True
    return False


@rule
class AllPairsRankLoop(Rule):
    """O(n²) all-pairs loop over ranks outside the topology precompute.

    A Python loop nested ``range(n_nodes)`` × ``range(n_nodes)`` costs
    ~10¹⁰ iterations at 100k ranks — the exact cost class the
    precomputed extra-latency matrix and the vectorized
    ``extra_cost_vec`` / bulk-rank engine exist to avoid.  Express
    pair computations as numpy array operations, or route them through
    the topology's cached matrix (builders named ``*matrix*``,
    ``*precompute*``, ``*diameter*``, ``*table*`` are the sanctioned
    cache-fill exemption).
    """

    id = "PERF002"
    severity = "warning"
    summary = "all-pairs rank loop outside topology precompute"
    scopes = ("sim", "host")

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        for outer in ast.walk(mod.tree):
            if not (isinstance(outer, ast.For)
                    and _is_range_over_ranks(mod, outer.iter)):
                continue
            func = mod.enclosing_function(outer)
            fname = getattr(func, "name", "")
            if any(hint in fname.lower() for hint in _PRECOMPUTE_HINTS):
                continue
            for inner in ast.walk(outer):
                if inner is outer or not isinstance(inner, ast.For):
                    continue
                if _is_range_over_ranks(mod, inner.iter):
                    yield self.finding(
                        mod, inner,
                        "nested range loop over the rank/node count is "
                        "O(n^2) in machine size; vectorize with numpy "
                        "(extra_cost_vec / the bulk engine) or move it "
                        "into a cached *matrix*/*table* precompute "
                        "builder")
                    break


# -- observability rule ----------------------------------------------------

_TRACER_METHODS = frozenset({
    "instant", "complete", "host_span", "flow_start", "flow_finish",
    "next_flow_id",
})


@rule
class UngatedTelemetry(Rule):
    """Metrics/trace call not behind the enabled-gate pattern.

    Instrumentation must be free when telemetry is off: every
    ``registry()`` access and tracer emission in instrumented code
    sits behind ``if self._metrics:`` / ``if not
    _obs.metrics_enabled(): return`` / ``if tracer is not None:``
    (the gate pattern PR 3 established).  An ungated call pays the
    telemetry cost on every run and can even perturb results if it
    allocates differently.  The :mod:`repro.obs` package itself (the
    implementation) is exempt.
    """

    id = "OBS001"
    severity = "warning"
    summary = "metrics/trace call not behind the enabled-gate"
    scopes = ("sim", "host")

    def check(self, mod: ModuleUnderLint) -> _t.Iterator[Finding]:
        # The gate discipline is for instrumented product code; the
        # obs/lint implementation and tests/benchmarks (which exercise
        # the registry directly, on purpose) are exempt.
        if mod.path.startswith(("repro/obs/", "repro/lint/")) \
                or not mod.path.startswith("repro/"):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = mod.resolve(node.func)
            is_registry = name is not None and (
                name == "registry" or name.endswith(".registry"))
            if is_registry:
                # Read-outs (rendering/snapshotting at the end of a
                # command) are not instrumentation points; only feeding
                # the registry needs the gate.
                parent = mod.parents.get(node)
                if isinstance(parent, ast.Attribute) \
                        and parent.attr in ("snapshot", "render"):
                    is_registry = False
            is_tracer_op = (isinstance(node.func, ast.Attribute)
                            and node.func.attr in _TRACER_METHODS
                            and "trac" in ast.unparse(node.func.value))
            if is_tracer_op:
                # A function that *receives* the tracer as a parameter
                # is only ever called from a gated site — the caller
                # holds the gate (e.g. `_traced_collective`).
                func = mod.enclosing_function(node)
                if func is not None and any(
                        "trac" in a.arg for a in func.args.args):
                    is_tracer_op = False
            if (is_registry or is_tracer_op) and not _is_gated(mod, node):
                what = "registry()" if is_registry else \
                    f"tracer .{node.func.attr}(...)"
                yield self.finding(
                    mod, node,
                    f"{what} call is not behind a telemetry gate; "
                    "guard with `if self._metrics:` / `if not "
                    "_obs.metrics_enabled(): return` / `if tracer is "
                    "not None:` so the disabled path stays free")


# Pull in the rule-pack submodules for their registration side effect
# (they import ``Rule``/``rule`` from here, so this sits at the bottom
# of the module to keep the import cycle one-way at definition time).
from . import rules_async as _rules_async  # noqa: E402,F401
from . import taint as _taint  # noqa: E402,F401
