"""Cross-module symbol table and call resolution for whole-program rules.

detlint v1 analyzed one function body at a time: a ``time.time()``
wrapped in a helper in one module and *called* from ``sim/`` scope in
another was invisible.  The :class:`ProjectIndex` built here is the
first pass of the two-pass engine (:mod:`repro.lint.engine`): it maps
every analyzed file to a dotted module name, records every module-level
function, class, method, and module-global assignment under a fully
qualified name, and expands each module's import aliases — including
relative imports — so a call site anywhere in the project can be
resolved to the function definition it lands on, wherever that lives.

The index is intentionally a *static over-approximation with
conservative fallbacks*: dynamic dispatch, ``getattr``, decorators that
replace functions, and calls on values of unknown type resolve to
``None`` rather than to a wrong target, so downstream rules
(:mod:`repro.lint.taint`) err toward silence, not false positives.
"""

from __future__ import annotations

import ast
import typing as _t

from .engine import ModuleUnderLint

__all__ = ["ProjectIndex", "module_name", "build_index"]


def module_name(path: str) -> str:
    """Dotted module name for a normalized lint path.

    ``repro/sim/core.py`` -> ``repro.sim.core``;
    ``repro/sim/__init__.py`` -> ``repro.sim``; a bare ``fixture.py``
    (no package root) -> ``fixture``.
    """
    parts = path.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or "module"


def _relative_base(modname: str, level: int) -> str:
    """Package that a ``from ..x import y`` (``level`` dots) resolves
    against, for a module named ``modname``."""
    parts = modname.split(".")
    # level=1 is the module's own package; each extra dot climbs one.
    keep = len(parts) - level
    return ".".join(parts[:keep]) if keep > 0 else ""


class ProjectIndex:
    """Everything the project-wide rules need to resolve names.

    Attributes
    ----------
    modules:
        dotted module name -> :class:`ModuleUnderLint`.
    functions:
        fully qualified name (``pkg.mod.func`` or
        ``pkg.mod.Class.method``) -> function/async-function AST node.
    function_module:
        fully qualified function name -> its module's dotted name.
    classes:
        fully qualified class name -> class AST node.
    global_values:
        fully qualified module-global name -> list of value
        expressions assigned to it at module level.
    aliases:
        dotted module name -> {local name -> fully qualified target},
        with relative imports expanded (unlike the per-module
        :attr:`ModuleUnderLint.aliases`, which skips them).
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleUnderLint] = {}
        self.functions: dict[str, ast.AST] = {}
        self.function_module: dict[str, str] = {}
        self.classes: dict[str, ast.AST] = {}
        self.global_values: dict[str, list[ast.expr]] = {}
        self.aliases: dict[str, dict[str, str]] = {}
        #: child -> enclosing ClassDef qualname, per module (for
        #: ``self.method()`` resolution), keyed by dotted module name.
        self._class_of: dict[str, dict[ast.AST, str]] = {}

    # -- construction ------------------------------------------------------
    def add_module(self, mod: ModuleUnderLint) -> None:
        modname = module_name(mod.path)
        self.modules[modname] = mod
        self.aliases[modname] = self._build_aliases(mod, modname)
        class_of: dict[ast.AST, str] = {}
        for stmt in mod.tree.body:
            self._index_statement(stmt, modname, prefix=modname,
                                  class_of=class_of)
        self._class_of[modname] = class_of

    def _build_aliases(self, mod: ModuleUnderLint,
                       modname: str) -> dict[str, str]:
        out = dict(mod.aliases)  # absolute imports, already expanded
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom) and node.level > 0:
                base = _relative_base(modname, node.level)
                target = (f"{base}.{node.module}" if node.module and base
                          else (node.module or base))
                if not target:
                    continue
                for a in node.names:
                    if a.name != "*":
                        out[a.asname or a.name] = f"{target}.{a.name}"
        return out

    def _index_statement(self, stmt: ast.stmt, modname: str, prefix: str,
                         class_of: dict[ast.AST, str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}.{stmt.name}"
            self.functions[qual] = stmt
            self.function_module[qual] = modname
        elif isinstance(stmt, ast.ClassDef):
            qual = f"{prefix}.{stmt.name}"
            self.classes[qual] = stmt
            for child in ast.walk(stmt):
                class_of.setdefault(child, qual)
            for sub in stmt.body:
                self._index_statement(sub, modname, prefix=qual,
                                      class_of=class_of)
        elif isinstance(stmt, ast.Assign) and prefix == modname:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.global_values.setdefault(
                        f"{modname}.{target.id}", []).append(stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and prefix == modname \
                and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            self.global_values.setdefault(
                f"{modname}.{stmt.target.id}", []).append(stmt.value)
        elif isinstance(stmt, (ast.If, ast.Try)) and prefix == modname:
            # Module-level conditional defs (TYPE_CHECKING guards,
            # version fallbacks) still define real symbols.
            bodies = [stmt.body]
            if isinstance(stmt, ast.If):
                bodies.append(stmt.orelse)
            else:
                bodies.extend([stmt.orelse, stmt.finalbody]
                              + [h.body for h in stmt.handlers])
            for body in bodies:
                for sub in body:
                    self._index_statement(sub, modname, prefix, class_of)

    # -- resolution --------------------------------------------------------
    def dotted(self, modname: str, node: ast.AST) -> str | None:
        """Dotted name of an expression with this module's aliases
        (incl. relative imports) expanded; ``None`` if not a name."""
        if isinstance(node, ast.Name):
            return self.aliases.get(modname, {}).get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.dotted(modname, node.value)
            return None if base is None else f"{base}.{node.attr}"
        return None

    def resolve_call(self, modname: str,
                     call: ast.Call) -> str | None:
        """Fully qualified name of the function a call lands on, or
        ``None`` when the target is unknown (builtin, dynamic, method
        on a value of unknown type)."""
        func = call.func
        if isinstance(func, ast.Name):
            local = func.id
            target = self.aliases.get(modname, {}).get(local)
            if target is not None:
                return self._canonical(target)
            qual = f"{modname}.{local}"
            if qual in self.functions or qual in self.classes:
                return qual
            return None
        if isinstance(func, ast.Attribute):
            # self.method() -> method on the enclosing class.
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                cls = self._class_of.get(modname, {}).get(call)
                if cls is not None:
                    qual = f"{cls}.{func.attr}"
                    if qual in self.functions:
                        return qual
                return None
            dotted = self.dotted(modname, func)
            if dotted is not None:
                return self._canonical(dotted)
        return None

    def _canonical(self, dotted: str) -> str | None:
        """Map a dotted target onto an indexed symbol, if any.

        Handles both ``import m; m.f()`` (``m.f``) and
        ``from m import f; f()`` (alias already stores ``m.f``), plus
        re-exports through package ``__init__`` files one level deep.
        """
        if dotted in self.functions or dotted in self.classes \
                or dotted in self.global_values:
            return dotted
        # A package __init__ re-export: repro.sim.RandomTree ->
        # repro.sim.rng.RandomTree via the __init__ module's aliases.
        head, _, leaf = dotted.rpartition(".")
        if head in self.modules:
            via = self.aliases.get(head, {}).get(leaf)
            if via is not None and via != dotted:
                return self._canonical(via)
        return dotted if head else None

    def lookup_function(self, qual: str | None) -> ast.AST | None:
        if qual is None:
            return None
        return self.functions.get(qual)

    def module_of_symbol(self, qual: str) -> str | None:
        """Dotted module name that defines ``qual`` (function, class,
        or module global), or ``None``."""
        if qual in self.function_module:
            return self.function_module[qual]
        head, _, _leaf = qual.rpartition(".")
        while head:
            if head in self.modules:
                return head
            head, _, _leaf = head.rpartition(".")
        return None


def build_index(mods: _t.Iterable[ModuleUnderLint]) -> ProjectIndex:
    """Index pass: one :class:`ProjectIndex` over every parsed module."""
    index = ProjectIndex()
    for mod in mods:
        index.add_module(mod)
    return index
